//! End-to-end walkthrough of the telemetry layer: simulate a scenario,
//! export its schedule as Chrome trace-event JSON, and print where to
//! open it.
//!
//! ```text
//! cargo run --release -p madmax-bench --example trace_export [-- OUT.json]
//! ```
//!
//! The emitted file loads directly in <https://ui.perfetto.dev> (or
//! `chrome://tracing`): each stream of the simulated schedule becomes a
//! named track, every op a duration slice with its phase/stage/collective
//! attached as args, and cross-stream dependencies render as flow arrows.

use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_obs::ChromeTrace;
use madmax_parallel::{PipelineConfig, Plan, Workload};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_export.json".to_owned());

    // A 1F1B pipeline schedule is the most interesting thing to look at:
    // four stage tracks with interleaved forward/backward slices and
    // activation-transfer flows between them.
    let model = ModelId::Llama2.build();
    let system = catalog::llama_llm_system();
    let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(4, 8));

    let (report, trace, schedule) = Scenario::new(&model, &system)
        .plan(plan)
        .workload(Workload::pretrain())
        .run_with_trace()
        .expect("1F1B mapping is feasible on the LLM system");

    let chrome = ChromeTrace::from_schedule(&trace, &schedule);
    chrome.write(&out).expect("write trace JSON");

    println!(
        "simulated iteration: {:.2} ms across {} ops",
        report.iteration_time.as_ms(),
        schedule.windows.len()
    );
    println!("wrote {out} — open it at https://ui.perfetto.dev");
}
