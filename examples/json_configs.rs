//! The paper's user interface: drive MAD-Max entirely from the three JSON
//! configuration files (model architecture, distributed system, task +
//! parallelization strategy) described in Section IV-A.
//!
//! ```bash
//! cargo run --release -p madmax-bench --example json_configs
//! ```

use madmax_core::config::{ExperimentSpec, SimulationConfig};
use madmax_engine::simulate;
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{HierStrategy, Plan, Strategy, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a configuration in code once...
    let model = ModelId::DlrmB.build();
    let plan = Plan::fsdp_baseline(&model).with_strategy(
        LayerClass::Dense,
        HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
    );
    let cfg = SimulationConfig {
        model,
        system: catalog::zionex_dlrm_system(),
        experiment: ExperimentSpec {
            workload: Workload::pretrain(),
            plan,
        },
    };

    // ...persist it as the paper's three JSON files...
    let dir = std::env::temp_dir().join("madmax_quickstart_configs");
    cfg.write_split(&dir)?;
    println!(
        "wrote model.json / system.json / experiment.json to {}",
        dir.display()
    );

    // ...then reload and simulate purely from configuration, as an
    // external user would.
    let loaded = SimulationConfig::from_json_files(
        dir.join("model.json"),
        dir.join("system.json"),
        dir.join("experiment.json"),
    )?;
    let report = simulate(
        &loaded.model,
        &loaded.system,
        &loaded.experiment.plan,
        loaded.experiment.workload,
    )?;
    println!(
        "{} on {}: {:.2} MQPS, {:.2} ms/iteration, {:.1}% comm exposed",
        loaded.model.name,
        loaded.system.name,
        report.mqps(),
        report.iteration_time.as_ms(),
        report.exposed_fraction() * 100.0
    );
    Ok(())
}
