//! Quickstart: simulate one workload-system mapping through the unified
//! `Scenario` entry point and read the report.
//!
//! ```bash
//! cargo run --release -p madmax-bench --example quickstart
//! ```

use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_parallel::{Plan, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a workload from the paper's suite (Table II) and a system
    //    from the catalog (Table III).
    let model = ModelId::DlrmA.build();
    let system = catalog::zionex_dlrm_system();

    // 2. Start from the FSDP baseline mapping: sharded embedding tables,
    //    fully-sharded dense layers.
    let plan = Plan::fsdp_baseline(&model);

    // 3. Simulate one pre-training iteration. The same `Scenario` entry
    //    point executes pipelined plans too — add a `PipelineConfig` to
    //    the plan and `run()` dispatches to the stage engine.
    let report = Scenario::new(&model, &system)
        .plan(plan.clone())
        .workload(Workload::pretrain())
        .run()?;

    println!("model:                {}", model.name);
    println!("system:               {}", system.name);
    println!("plan:                 {}", plan.summary());
    println!(
        "iteration time:       {:.2} ms",
        report.iteration_time.as_ms()
    );
    println!(
        "serialized time:      {:.2} ms",
        report.serialized_time.as_ms()
    );
    println!("throughput:           {:.2} MQPS", report.mqps());
    println!("communication time:   {:.2} ms", report.comm_time.as_ms());
    println!(
        "exposed comm:         {:.2} ms ({:.1}% of comm)",
        report.exposed_comm.as_ms(),
        report.exposed_fraction() * 100.0
    );
    println!(
        "memory per device:    {:.1} GB",
        report.memory.total().as_gb()
    );

    // 4. Every collective is itemized for optimization hunting.
    for (kind, time) in &report.comm_by_collective {
        println!("  {kind:<14} {:.2} ms", time.as_ms());
    }
    Ok(())
}
