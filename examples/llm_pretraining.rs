//! LLM pre-training planning: estimate end-to-end training cost for
//! LLaMA-class models on the 2048-GPU system, compare hardware platforms,
//! and inspect the FSDP prefetch optimization (Table I, Figs. 9 and 17).
//!
//! ```bash
//! cargo run --release -p madmax-bench --example llm_pretraining
//! ```

use madmax_core::validation::gpu_hours;
use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_parallel::{Plan, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelId::Llama2.build();
    let total_tokens = 1.4e12;

    println!(
        "Planning {} pre-training on {:.1}T tokens:\n",
        model.name,
        total_tokens / 1e12
    );
    for system in [catalog::llama_llm_system(), {
        let mut h = catalog::h100_cluster(256);
        h.name = "H100 cluster (2048 GPUs)".to_owned();
        h
    }] {
        let plan = Plan::fsdp_baseline(&model);
        let report = Scenario::new(&model, &system)
            .plan(plan)
            .workload(Workload::pretrain())
            .run()?;
        let steps = total_tokens / model.tokens_per_iteration();
        let days = (report.iteration_time * steps).as_days();
        println!("{}:", system.name);
        println!(
            "  iteration:        {:.2} s ({:.0} tokens/s)",
            report.iteration_time.as_secs(),
            report.tokens_per_sec()
        );
        println!("  days to train:    {days:.1}");
        println!(
            "  aggregate cost:   {:.0} GPU-hours",
            gpu_hours(report.iteration_time, steps, system.total_devices())
        );
        println!(
            "  comm overlapped:  {:.1}%",
            report.overlap_fraction() * 100.0
        );
    }

    // The prefetch ablation of Fig. 9.
    let system = catalog::llama_llm_system();
    let mut plan = Plan::fsdp_baseline(&model);
    plan.options.fsdp_prefetch = false;
    let vanilla = Scenario::new(&model, &system).plan(plan.clone()).run()?;
    plan.options.fsdp_prefetch = true;
    let prefetch = Scenario::new(&model, &system).plan(plan).run()?;
    println!(
        "\nFSDP prefetching: {:.1}% -> {:.1}% communication overlap ({:.2}x faster iterations)",
        vanilla.overlap_fraction() * 100.0,
        prefetch.overlap_fraction() * 100.0,
        vanilla.iteration_time / prefetch.iteration_time
    );
    Ok(())
}
