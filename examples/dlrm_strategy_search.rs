//! Strategy search for a production recommendation model: reproduce the
//! paper's core workflow — start from the FSDP baseline, sweep the dense
//! layers, then run the joint search (Insights 1 and 3).
//!
//! ```bash
//! cargo run --release -p madmax-bench --example dlrm_strategy_search
//! ```

use madmax_dse::{best_point, sweep_class, Explorer};
use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{Plan, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelId::DlrmA.build();
    let system = catalog::zionex_dlrm_system();
    let baseline_plan = Plan::fsdp_baseline(&model);
    let baseline = Scenario::new(&model, &system)
        .plan(baseline_plan.clone())
        .run()?;
    println!("FSDP baseline: {:.2} MQPS\n", baseline.mqps());

    // Sweep just the dense layers (the embedding tables of a 793B-parameter
    // DLRM can only be model-parallel sharded — Insight 1).
    println!("Dense-layer strategy sweep (Fig. 11):");
    let points = sweep_class(
        &model,
        &system,
        &baseline_plan,
        LayerClass::Dense,
        &Workload::pretrain(),
    );
    for p in &points {
        match &p.outcome {
            Ok(r) => println!(
                "  {:<12} {:>6.3}x over FSDP  ({:.1} GB/device)",
                p.strategy.to_string(),
                r.samples_per_sec() / baseline.samples_per_sec(),
                r.memory.total().as_gb(),
            ),
            Err(e) => println!("  {:<12} infeasible: {e}", p.strategy.to_string()),
        }
    }
    let best = best_point(&points).expect("at least the baseline is feasible");
    println!(
        "\nBest dense strategy: {} — ordering matters because it decides which\n\
         interconnect carries activations vs weight gradients (Insight 3).\n",
        best.strategy
    );

    // Joint search over every layer class, fanned out over all cores.
    let result = Explorer::new(&model, &system)
        .workload(Workload::pretrain())
        .explore()?;
    println!(
        "Joint search: {} plans evaluated ({} OOM), best = {} at {:.2}x over FSDP",
        result.evaluated,
        result.oom,
        result.winning_strategies(),
        result.speedup()
    );
    Ok(())
}
