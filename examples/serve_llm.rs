//! Serving a 70B-class LLM through the unified engine: describe the
//! workload with `Workload::serve` (prompt prefill + token-level decode
//! with a KV-cache), read TTFT/TPOT off the report, watch the decode
//! batch trade latency for throughput, and let the unified `Explorer`
//! pick the best (pp, microbatches, decode batch) on a
//! network-constrained variant of the system — where pipelining the
//! decode stream wins. Every simulation goes through `Scenario`; serving
//! is just another workload.
//!
//! ```bash
//! cargo run --release -p madmax-bench --example serve_llm
//! ```

use madmax_dse::{Explorer, PipelineAxes, SearchSpace, ServeAxes};
use madmax_engine::Scenario;
use madmax_hw::{catalog, DeviceScaling};
use madmax_model::ModelId;
use madmax_parallel::{PipelineConfig, PipelineSchedule, Plan, ServeConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelId::Llama2.build();
    let system = catalog::llama_llm_system();

    // 1. One serve scenario: prefill a 1K-token prompt, then decode 128
    //    tokens per sequence for 256 concurrent sequences.
    let workload = Workload::serve(ServeConfig::new(1024, 128).with_decode_batch(256));
    let report = Scenario::new(&model, &system)
        .workload(workload.clone())
        .run()?;
    let stats = report.serve.expect("serve runs report TTFT/TPOT");
    println!("{} on {}, serve ({workload:?}):", model.name, system.name);
    println!("  TTFT:      {:.1} ms (prompt prefill)", stats.ttft.as_ms());
    println!("  TPOT:      {:.2} ms per output token", stats.tpot.as_ms());
    println!(
        "  output:    {:.0} tokens/s across the batch",
        report.serve_tokens_per_sec().unwrap()
    );
    println!(
        "  KV-cache:  {:.1} GB/device at max length",
        report.memory.kv_cache.as_gb()
    );

    // 2. The decode batch trades per-token latency for throughput.
    println!("\nDecode-batch sweep (prompt 1024, decode 128):");
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "batch", "TTFT", "TPOT", "out tokens/s"
    );
    for batch in [64usize, 256, 1024] {
        let w = Workload::serve(ServeConfig::new(1024, 128).with_decode_batch(batch));
        let r = Scenario::new(&model, &system).workload(w).run()?;
        let s = r.serve.unwrap();
        println!(
            "{batch:>8} {:>10.1}ms {:>10.2}ms {:>14.0}",
            s.ttft.as_ms(),
            s.tpot.as_ms(),
            r.serve_tokens_per_sec().unwrap()
        );
    }

    // 3. Pipelined decode: each decode step flows through the stages as a
    //    microbatch unit, so the same entry point compares pp=1 and pp=8.
    let piped_plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(8, 16));
    let piped = Scenario::new(&model, &system)
        .workload(workload)
        .plan(piped_plan)
        .run()?;
    let ps = piped.serve.unwrap();
    println!(
        "\npp=8 GPipe decode: TTFT {:.1} ms, TPOT {:.2} ms, {:.0} tokens/s out",
        ps.ttft.as_ms(),
        ps.tpot.as_ms(),
        piped.serve_tokens_per_sec().unwrap()
    );

    // 4. On a bandwidth-starved scale-out network the serve search picks a
    //    pipelined mapping: stages fetch parameters once and stream decode
    //    units, instead of re-gathering FSDP shards every token.
    let constrained = system.scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
    let serve_batches = ServeAxes::batches([128, 256, 512]);
    let flat_space = SearchSpace::strategies()
        .with_classes(vec![madmax_model::LayerClass::Transformer])
        .with_serve(serve_batches.clone());
    let flat_best = Explorer::new(&model, &constrained)
        .workload(Workload::serve(ServeConfig::new(1024, 128)))
        .space(flat_space.clone())
        .explore()?;
    let search = Explorer::new(&model, &constrained)
        .workload(Workload::serve(ServeConfig::new(1024, 128)))
        .space(flat_space.with_pipeline(PipelineAxes {
            stages: vec![1, 2, 4, 8],
            microbatches: vec![8, 16],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        }))
        .explore()?;
    println!("\nServe DSE with 8x slower scale-out links:");
    println!(
        "  evaluated:  {} (plan x batch) candidates ({} OOM)",
        search.evaluated, search.oom
    );
    println!(
        "  best flat:  {} @ batch {} -> {:.0} tokens/s out",
        flat_best.best_plan.summary(),
        flat_best.best.serve.as_ref().unwrap().decode_batch,
        flat_best.best.serve_tokens_per_sec().unwrap()
    );
    println!(
        "  winner:     {} @ batch {}",
        search.best_plan.summary(),
        search.best.serve.as_ref().unwrap().decode_batch
    );
    println!(
        "  throughput: {:.0} tokens/s out ({:.2}x over the best flat mapping)",
        search.best.serve_tokens_per_sec().unwrap(),
        search.best.serve_tokens_per_sec().unwrap()
            / flat_best.best.serve_tokens_per_sec().unwrap()
    );
    Ok(())
}
