//! Pipeline-parallel LLM pre-training through the unified engine: map a
//! 70B-class model onto the 2048-GPU system with an 8-deep pipeline, sweep
//! the microbatch count, and print the bubble-fraction/throughput curve for
//! both schedules — then let the unified `Explorer` pick the best
//! (pp, microbatches, schedule) on a network-constrained variant of the
//! system. Every simulation goes through `Scenario`; there is no separate
//! pipeline plumbing.
//!
//! ```bash
//! cargo run --release -p madmax-bench --example pipeline_llm
//! ```

use madmax_dse::{Explorer, SearchSpace};
use madmax_engine::Scenario;
use madmax_hw::{catalog, DeviceScaling};
use madmax_model::ModelId;
use madmax_parallel::{PipelineConfig, PipelineSchedule, Plan, Workload};
use madmax_pipeline::gpipe_bubble_fraction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelId::Llama2.build();
    let system = catalog::llama_llm_system();
    let pp = 8;

    println!("{} on {}, pp={pp}:\n", model.name, system.name);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "mb", "analytic", "GPipe", "1F1B", "GPipe tok/s", "1F1B tok/s"
    );
    for m in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut row = format!("{m:>6} {:>9.1}%", gpipe_bubble_fraction(pp, m) * 100.0);
        let mut tput = String::new();
        for schedule in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
            let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
                stages: pp,
                microbatches: m,
                schedule,
            });
            let r = Scenario::new(&model, &system)
                .plan(plan)
                .workload(Workload::pretrain())
                .run()?;
            row.push_str(&format!(
                "{:>11.1}%",
                r.bubble_fraction.unwrap_or(0.0) * 100.0
            ));
            tput.push_str(&format!(" {:>11.0}", r.tokens_per_sec()));
        }
        println!("{row}{tput}");
    }

    // The same entry point runs the flat pp=1 baseline.
    let flat = Scenario::new(&model, &system).run()?;
    println!(
        "\npp=1 FSDP baseline: {:.2} s/iteration ({:.0} tokens/s)",
        flat.iteration_time.as_secs(),
        flat.tokens_per_sec()
    );

    // On a bandwidth-starved scale-out network, the joint search trades
    // FSDP's parameter gathers for pipeline stages.
    let constrained = system.scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
    let mut space = SearchSpace::pipeline_for(&constrained);
    if let Some(axes) = space.pipeline.as_mut() {
        axes.microbatches = vec![8, 16, 32, 64];
    }
    let search = Explorer::new(&model, &constrained)
        .workload(Workload::pretrain())
        .space(space)
        .explore()?;
    println!("\nJoint (pp, mb, schedule) search with 8x slower scale-out links:");
    println!(
        "  evaluated:  {} configurations ({} OOM)",
        search.evaluated, search.oom
    );
    println!("  winner:     {}", search.best_plan.summary());
    println!(
        "  speedup:    {:.2}x over the pp=1 baseline ({:.2} s -> {:.2} s)",
        search.speedup(),
        search.baseline.iteration_time.as_secs(),
        search.best.iteration_time.as_secs()
    );
    if let Some(b) = search.best.bubble_fraction {
        println!("  bubble:     {:.1}%", b * 100.0);
    }
    Ok(())
}
