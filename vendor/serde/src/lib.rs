//! In-repo serde stub: the build container has no crates.io access, so this
//! crate provides the small slice of serde's API surface the workspace uses
//! — the `Serialize`/`Deserialize` traits (via an intermediate [`Value`]
//! tree instead of serde's visitor machinery) and their derive macros.
//!
//! `vendor/serde_json` renders [`Value`] trees to JSON text and parses them
//! back, so `#[derive(Serialize, Deserialize)]` + `serde_json::to_string` /
//! `from_str` round-trip exactly as call sites expect.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};

/// A self-describing value tree: the stub's serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (unit structs, `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A key-ordered map (externally-tagged enums use a single entry).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view accepting any of the numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Signed-integer view (floats are rejected unless integral).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f.fract() == 0.0 && (0.0..1.8e19).contains(&f) => Some(f as u64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in a map's entries.
pub fn field<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    field_opt(m, key).ok_or_else(|| Error::msg(format!("missing field `{key}`")))
}

/// Looks up a field that may be absent (the derive pairs this with
/// [`Deserialize::from_missing`] so `Option` fields default to `None`,
/// matching real serde's behavior for self-describing formats).
pub fn field_opt<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the stub data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the stub data model.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field of this type is absent from the input.
    /// Errors by default; `Option<T>` overrides it to yield `None`.
    fn from_missing(field_name: &str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field `{field_name}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! int_impl {
    ($($t:ty => $as:ident),+ $(,)?) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    #[allow(unused_comparisons)]
                    if (*self as i128) < 0 {
                        Value::Int(*self as i64)
                    } else {
                        Value::UInt(*self as u64)
                    }
                }
            }
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    v.$as()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
                }
            }
        )+
    };
}

int_impl!(
    u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64,
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::msg("expected pair"))?;
        if s.len() != 2 {
            return Err(Error::msg("expected pair of length 2"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

/// Renders a serialized key for use as a JSON map key (string-valued keys
/// only: strings, enums with unit variants, and integers).
fn key_string<K: Serialize>(k: &K) -> Result<String, Error> {
    match k.to_value() {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        _ => Err(Error::msg("map key must serialize to a string or integer")),
    }
}

fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot deserialize map key `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = key_string(k).expect("BTreeMap key serializes to a string");
            m.push((key, v.to_value()));
        }
        Value::Map(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::msg("expected map"))?;
        let mut out = BTreeMap::new();
        for (k, val) in entries {
            out.insert(key_from_str(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}
