//! Minimal `Serialize`/`Deserialize` derive macros for the in-repo serde
//! stub (`vendor/serde`). The container this repository builds in has no
//! access to crates.io, so the real serde cannot be fetched; this derive
//! implements the subset of the serde data model the workspace uses:
//!
//! - structs with named fields, tuple structs (newtype structs serialize
//!   transparently, matching serde_json's behavior), unit structs
//! - enums with unit, newtype, tuple, and struct variants, using serde's
//!   externally-tagged representation
//!
//! Generics, lifetimes, and `#[serde(...)]` field attributes other than
//! `#[serde(transparent)]` (which is the default behavior for newtype
//! structs here anyway) are not supported and fail with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the item the derive is applied to.
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        if *i < toks.len() && is_punct(&toks[*i], '#') {
            *i += 2; // '#' + bracket group
            continue;
        }
        if *i < toks.len() && ident_of(&toks[*i]).as_deref() == Some("pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
            continue;
        }
        return;
    }
}

/// Parses `name: Type` fields from a brace group's tokens.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected field name");
        i += 1;
        assert!(is_punct(&toks[i], ':'), "expected `:` after field `{name}`");
        i += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts the comma-separated fields of a paren group (tuple struct/variant).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut last_was_comma = false;
    for t in &toks {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            fields += 1;
            last_was_comma = true;
            continue;
        }
        last_was_comma = false;
    }
    if last_was_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("expected variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push((name, fields));
    }
    variants
}

fn parse_shape(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_of(&toks[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("expected item name");
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde stub derive does not support generic types ({name})");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            _ => Shape::Struct(Fields::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            _ => panic!("expected enum body for {name}"),
        },
        other => panic!("serde stub derive supports structs and enums, got `{other}`"),
    };
    (name, shape)
}

/// Derives the stub `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_shape(input);
    let body = match &shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.push((String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "{{ let mut m: Vec<(String, ::serde::Value)> = Vec::new(); {} ::serde::Value::Map(m) }}",
                pushes.join(" ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(vec![(String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(String::from(\"{v}\"), \
                             ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pushes: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push((String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{ let mut inner: Vec<(String, \
                             ::serde::Value)> = Vec::new(); {} ::serde::Value::Map(vec![\
                             (String::from(\"{v}\"), ::serde::Value::Map(inner))]) }},",
                            pushes.join(" ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_shape(input);
    let body = match &shape {
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                .collect();
            format!(
                "{{ let s = v.as_seq().ok_or_else(|| ::serde::Error::msg(\
                 \"expected sequence for {name}\"))?; \
                 if s.len() != {n} {{ return Err(::serde::Error::msg(\
                 \"wrong tuple arity for {name}\")); }} \
                 Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match ::serde::field_opt(m, \"{f}\") {{ \
                         Some(v) => ::serde::Deserialize::from_value(v)?, \
                         None => ::serde::Deserialize::from_missing(\"{f}\")?, }},"
                    )
                })
                .collect();
            format!(
                "{{ let m = v.as_map().ok_or_else(|| ::serde::Error::msg(\
                 \"expected map for {name}\"))?; Ok({name} {{ {} }}) }}",
                items.join(" ")
            )
        }
        Shape::Enum(variants) => {
            let has_unit = variants.iter().any(|(_, f)| matches!(f, Fields::Unit));
            let has_payload = variants.iter().any(|(_, f)| !matches!(f, Fields::Unit));
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(val)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let s = val.as_seq().ok_or_else(|| \
                             ::serde::Error::msg(\"expected sequence for {name}::{v}\"))?; \
                             if s.len() != {n} {{ return Err(::serde::Error::msg(\
                             \"wrong arity for {name}::{v}\")); }} Ok({name}::{v}({})) }}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: match ::serde::field_opt(m, \"{f}\") {{ \
                                     Some(v) => ::serde::Deserialize::from_value(v)?, \
                                     None => ::serde::Deserialize::from_missing(\"{f}\")?, }},"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let m = val.as_map().ok_or_else(|| \
                             ::serde::Error::msg(\"expected map for {name}::{v}\"))?; \
                             Ok({name}::{v} {{ {} }}) }}",
                            items.join(" ")
                        ))
                    }
                })
                .collect();
            let s_bind = if has_unit { "s" } else { "_s" };
            let kv_bind = if has_payload { "(k, val)" } else { "(k, _val)" };
            format!(
                "match v {{\n\
                   ::serde::Value::Str({s_bind}) => match {s_match} {{\n\
                     {unit_arms}\n\
                     _ => Err(::serde::Error::msg(\"unknown variant of {name}\")),\n\
                   }},\n\
                   ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let {kv_bind} = &entries[0];\n\
                     match k.as_str() {{\n\
                       {payload_arms}\n\
                       _ => Err(::serde::Error::msg(\"unknown variant of {name}\")),\n\
                     }}\n\
                   }},\n\
                   _ => Err(::serde::Error::msg(\"invalid value for enum {name}\")),\n\
                 }}",
                s_match = if has_unit { "s.as_str()" } else { "\"\"" },
                unit_arms = unit_arms.join("\n"),
                payload_arms = payload_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                {body}\n\
            }}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}
