//! In-repo criterion stub: the build container has no crates.io access, so
//! this crate provides the small slice of criterion's API the workspace's
//! benches use (`Criterion`, benchmark groups, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`). Each benchmark runs a short
//! timed loop and prints mean wall-clock time per iteration — no
//! statistics, plots, or baselines.

use std::time::Instant;

/// Measurement driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    last_mean_ns: f64,
}

impl Bencher {
    /// Times the closure over a short calibrated loop.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One warm-up call, then enough iterations to fill ~20 ms.
        let warm = Instant::now();
        std::hint::black_box(f());
        let once = warm.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.02 / once) as u64).clamp(1, 10_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
}

fn report(label: &str, b: &Bencher) {
    let ns = b.last_mean_ns;
    if ns >= 1e9 {
        println!("{label:<50} {:>10.3} s", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{label:<50} {:>10.3} ms", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{label:<50} {:>10.3} us", ns / 1e3);
    } else {
        println!("{label:<50} {ns:>10.1} ns");
    }
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
