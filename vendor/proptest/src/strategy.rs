//! Value-generation strategies for the proptest stub.

use std::ops::Range;

use crate::test_runner::Rng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut Rng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
        )+
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    rng.range_i64(self.start as i64, self.end as i64) as $t
                }
            }
        )+
    };
}

uint_range_strategy!(u8, u16, u32, u64, usize);
int_range_strategy!(i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut Rng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union from its arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut Rng) -> V {
        let idx = rng.range_u64(0, self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}
