//! Collection strategies for the proptest stub.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// Length specification for [`vec()`]: an exact length or a `lo..hi` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut Rng) -> Self::Value {
        let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, len)`: vectors of sampled elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
