//! Deterministic pseudo-random generation for the proptest stub.

/// Number of sampled cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A splitmix64 generator seeded from the test name and case index, so every
/// run of a property is reproducible.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds from a raw state.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds deterministically from a test identifier and case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Rng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty sample range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty sample range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }
}
