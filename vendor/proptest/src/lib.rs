//! In-repo proptest stub: the build container has no crates.io access, so
//! this crate provides the subset of proptest's API the workspace's
//! property tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, range/tuple/`prop::collection::vec` strategies —
//! backed by a deterministic splitmix64 generator instead of proptest's
//! shrinking test runner. Failures report the failing case index; re-runs
//! are reproducible because the seed is derived from the test name.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each property as a `#[test]` over [`test_runner::cases`] sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::Rng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name), case, cases, e
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} != {:?}", lhs, rhs),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}",
                lhs,
                rhs
            ));
        }
    }};
}

/// Picks uniformly among the given strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($s)),+];
        $crate::strategy::Union::new(arms)
    }};
}
