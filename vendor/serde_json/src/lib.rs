//! In-repo serde_json stub: renders the serde stub's [`serde::Value`] tree
//! to JSON text and parses JSON text back. Floats are written with Rust's
//! shortest round-trip `Display` formatting, so `f64` values survive a
//! serialize/deserialize round trip bit-exactly.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display prints the shortest string that parses back
                // to the same f64, and never uses exponent notation.
                let s = f.to_string();
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => write_delimited(items.iter().map(Item::Bare), '[', ']', out, indent),
        Value::Map(entries) => write_delimited(
            entries.iter().map(|(k, v)| Item::Keyed(k, v)),
            '{',
            '}',
            out,
            indent,
        ),
    }
}

enum Item<'a> {
    Bare(&'a Value),
    Keyed(&'a str, &'a Value),
}

fn write_delimited<'a>(
    items: impl Iterator<Item = Item<'a>>,
    open: char,
    close: char,
    out: &mut String,
    indent: Option<usize>,
) {
    out.push(open);
    let inner = indent.map(|d| d + 1);
    let mut first = true;
    let mut any = false;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        any = true;
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        match item {
            Item::Bare(v) => write_value(v, out, inner),
            Item::Keyed(k, v) => {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, inner);
            }
        }
    }
    if any {
        if let Some(d) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
    }
    out.push(close);
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when a map key does not serialize to a string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] when a map key does not serialize to a string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = s.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = s.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        s.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from a JSON document.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or schema mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<usize>("42").unwrap(), 42);
        assert_eq!(to_string(&String::from("a\"b")).unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-17, 123_456_789.123_456_79, 6.25e-12] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1.5 trailing").is_err());
    }
}
