//! Property-based invariants of the fault-injection layer
//! (`madmax-fault` + the faulty serve/goodput paths), over randomized
//! fault processes, retry policies, and request streams:
//!
//! - **Closed-form sanity**: the Young/Daly expected goodput is a
//!   fraction in `(0, 1]`, effective throughput never exceeds the
//!   fault-free throughput, and the evaluation passes the verifier's
//!   goodput-bound rule;
//! - **MTBF monotonicity**: at a fixed checkpoint interval, a longer
//!   mean time between failures never lowers goodput;
//! - **Grid-exact materialization**: fault events are deterministic in
//!   the seed, time-ordered, inside the horizon, and carry the spec's
//!   recovery/slowdown knobs;
//! - **Retry accounting**: no request retries past the policy budget,
//!   the terminal buckets (completed / rejected / failed / queued /
//!   in-flight) partition the arrivals, and availability is a fraction;
//! - **Mode equivalence under faults**: the event-driven simulator and
//!   the per-token reference stay byte-identical given the same
//!   materialized fault stream;
//! - **Ledger corruption is caught**: seeded corruptions of a genuine
//!   faulty trace (reversed spans, phantom interruptions, inflated
//!   retry counts) trip the verifier's fault-ledger rule.

use proptest::prelude::*;

use madmax_core::steady::grid_units_round;
use madmax_dse::{Explorer, FaultAxes, SearchSpace};
use madmax_engine::{FaultSpec, RetryPolicy, Scenario, SimMode};
use madmax_fault::{expected_goodput, materialize_faults, young_daly_interval, FaultKind};
use madmax_hw::catalog;
use madmax_hw::units::Seconds;
use madmax_model::ModelId;
use madmax_parallel::{LoadSpec, ServeConfig, Workload};
use madmax_serve::LoadOutcome;

/// Runs a faulty load simulation: Llama2 serving a Poisson stream with a
/// fatal-fault process materialized over a 400 s horizon.
#[allow(clippy::too_many_arguments)]
fn faulty_run(
    rate: f64,
    count: usize,
    stream_seed: u64,
    mtbf: f64,
    recovery: f64,
    fault_seed: u64,
    retry: &RetryPolicy,
    mode: SimMode,
) -> LoadOutcome {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let workload = Workload::serve(ServeConfig::new(128, 16).with_decode_batch(4));
    let scenario = Scenario::new(&model, &sys).workload_ref(&workload);
    let spec = LoadSpec::poisson(rate, count, stream_seed);
    let costs = scenario.price_load(&spec).unwrap();
    let horizon = grid_units_round(Seconds::new(400.0)).unwrap();
    let faults =
        materialize_faults(&FaultSpec::fatal(mtbf, recovery, fault_seed), horizon).unwrap();
    scenario
        .serve_load_faulty(&spec, &costs, mode, &faults, retry, None)
        .unwrap()
}

proptest! {
    /// The closed-form goodput is a genuine fraction: in `(0, 1]`,
    /// effective throughput bounded by (and reconciling with) the
    /// fault-free throughput, and clean under the verifier's
    /// goodput-bound rule.
    #[test]
    fn goodput_is_a_fraction_and_verifier_clean(
        iter_time in 0.1f64..30.0,
        write in 0.01f64..5.0,
        restart in 1.0f64..300.0,
        mtbf in 30.0f64..100_000.0,
        interval in 1.0f64..5_000.0,
    ) {
        let g = expected_goodput(iter_time, write, restart, mtbf, interval);
        prop_assert!(g.goodput_fraction > 0.0 && g.goodput_fraction <= 1.0,
            "fraction {} outside (0, 1]", g.goodput_fraction);
        prop_assert!(g.effective_throughput <= g.fault_free_throughput * (1.0 + 1e-9));
        prop_assert!(
            (g.effective_throughput - g.goodput_fraction * g.fault_free_throughput).abs()
                <= 1e-9 * g.fault_free_throughput
        );
        let report = madmax_verify::verify_goodput(&g);
        prop_assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    /// At a fixed checkpoint interval, more reliable fleets (longer
    /// MTBF) never see lower goodput.
    #[test]
    fn goodput_is_monotone_in_mtbf(
        iter_time in 0.1f64..30.0,
        write in 0.01f64..5.0,
        restart in 1.0f64..300.0,
        mtbf_lo in 30.0f64..10_000.0,
        factor in 1.0f64..100.0,
        interval in 1.0f64..5_000.0,
    ) {
        let lo = expected_goodput(iter_time, write, restart, mtbf_lo, interval);
        let hi = expected_goodput(iter_time, write, restart, mtbf_lo * factor, interval);
        prop_assert!(
            hi.goodput_fraction + 1e-12 >= lo.goodput_fraction,
            "goodput fell from {} to {} as MTBF rose {mtbf_lo} -> {}",
            lo.goodput_fraction, hi.goodput_fraction, mtbf_lo * factor
        );
    }

    /// The Young/Daly interval is finite, positive, and never shorter
    /// than the checkpoint write it amortizes.
    #[test]
    fn young_daly_interval_is_well_formed(
        write in 0.001f64..60.0,
        mtbf in 1.0f64..1_000_000.0,
    ) {
        let i = young_daly_interval(write, mtbf);
        prop_assert!(i.is_finite() && i >= write);
    }

    /// Materialized fault events are deterministic in the seed,
    /// time-ordered, inside the horizon, and carry the spec's knobs.
    #[test]
    fn fault_events_are_seeded_ordered_and_in_horizon(
        mtbf in 5.0f64..500.0,
        recovery in 0.5f64..30.0,
        seed in 0u64..u64::MAX,
        horizon_s in 50.0f64..2_000.0,
        transient in 0u8..2,
    ) {
        let mut spec = FaultSpec::fatal(mtbf, recovery, seed);
        if transient == 1 {
            spec = spec.with_transients(mtbf * 0.7, recovery, 140);
        }
        let horizon = grid_units_round(Seconds::new(horizon_s)).unwrap();
        let events = materialize_faults(&spec, horizon).unwrap();
        let again = materialize_faults(&spec, horizon).unwrap();
        prop_assert_eq!(&events, &again, "same seed must replay the same stream");
        let mut last = 0i64;
        for e in &events {
            prop_assert!(e.at >= last, "events out of order");
            prop_assert!(e.at < horizon, "event at {} past horizon {horizon}", e.at);
            prop_assert!(e.until >= e.at, "window [{}, {}] runs backwards", e.at, e.until);
            match e.kind {
                FaultKind::Fatal => {
                    prop_assert_eq!(e.slots_lost, spec.slots_lost);
                    prop_assert_eq!(e.slowdown_pct, 100);
                }
                FaultKind::Transient => {
                    prop_assert_eq!(e.slots_lost, 0);
                    prop_assert_eq!(e.slowdown_pct, spec.slowdown_pct);
                }
                FaultKind::Maintenance => {}
            }
            last = e.at;
        }
    }

    /// Under a fatal-fault stream: retries stay within the policy
    /// budget, the terminal buckets partition the arrivals, the
    /// aggregate retry/failure ledgers match the per-request records,
    /// and availability is a fraction.
    #[test]
    fn faulty_runs_conserve_requests_and_respect_the_retry_budget(
        rate in 0.05f64..0.5,
        count in 4usize..14,
        stream_seed in 0u64..u64::MAX,
        mtbf in 15.0f64..120.0,
        recovery in 1.0f64..10.0,
        fault_seed in 0u64..u64::MAX,
        max_retries in 0u32..4,
    ) {
        let retry = RetryPolicy::retries(max_retries);
        let outcome = faulty_run(
            rate, count, stream_seed, mtbf, recovery, fault_seed, &retry, SimMode::Event,
        );
        let r = &outcome.report;
        prop_assert_eq!(r.arrivals, count);
        prop_assert_eq!(
            r.completed + r.rejected + r.failed + r.queued_at_end + r.in_flight_at_end,
            r.arrivals,
            "terminal buckets must partition the arrivals"
        );
        prop_assert!((0.0..=1.0).contains(&r.availability), "availability {}", r.availability);
        let mut retries = 0u64;
        let mut failed = 0usize;
        for q in &r.requests {
            prop_assert!(
                q.retries <= max_retries,
                "request {} survived {} interruptions on a budget of {max_retries}",
                q.id, q.retries
            );
            prop_assert!(!(q.failed && q.completed), "request {} both failed and completed", q.id);
            retries += u64::from(q.retries);
            failed += usize::from(q.failed);
        }
        prop_assert_eq!(retries, r.retries);
        prop_assert_eq!(failed, r.failed);
        // The trace passes the verifier's fault-ledger rule as produced.
        let verdict = madmax_verify::verify_load(&outcome.trace);
        prop_assert!(verdict.is_clean(), "{:?}", verdict.diagnostics);
    }

    /// The event-driven mode stays byte-identical to the per-token
    /// reference when both consume the same materialized fault stream.
    #[test]
    fn event_mode_matches_per_token_under_faults(
        rate in 0.05f64..0.5,
        count in 4usize..12,
        stream_seed in 0u64..u64::MAX,
        mtbf in 15.0f64..120.0,
        fault_seed in 0u64..u64::MAX,
        max_retries in 0u32..4,
    ) {
        let retry = RetryPolicy::retries(max_retries);
        let event = faulty_run(
            rate, count, stream_seed, mtbf, 5.0, fault_seed, &retry, SimMode::Event,
        );
        let naive = faulty_run(
            rate, count, stream_seed, mtbf, 5.0, fault_seed, &retry, SimMode::PerToken,
        );
        prop_assert_eq!(&event.report, &naive.report);
        prop_assert_eq!(&event.trace.records, &naive.trace.records);
        prop_assert_eq!(&event.trace.faults, &naive.trace.faults);
    }

    /// An empty fault stream through the faulty entry point reproduces
    /// the fault-free simulator byte-for-byte: the fault plumbing is
    /// free when inactive.
    #[test]
    fn empty_fault_stream_is_byte_identical_to_fault_free(
        rate in 0.05f64..0.5,
        count in 4usize..12,
        stream_seed in 0u64..u64::MAX,
    ) {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let workload = Workload::serve(ServeConfig::new(128, 16).with_decode_batch(4));
        let scenario = Scenario::new(&model, &sys).workload_ref(&workload);
        let spec = LoadSpec::poisson(rate, count, stream_seed);
        let costs = scenario.price_load(&spec).unwrap();
        let faulty = scenario
            .serve_load_faulty(&spec, &costs, SimMode::Event, &[], &RetryPolicy::default(), None)
            .unwrap();
        let plain = scenario
            .serve_load_priced(&spec, &costs, SimMode::Event, None)
            .unwrap();
        prop_assert_eq!(&faulty.report.requests, &plain.report.requests);
        prop_assert_eq!(&faulty.trace.records, &plain.trace.records);
        prop_assert_eq!(faulty.report.makespan, plain.report.makespan);
        prop_assert!((faulty.report.availability - 1.0).abs() < f64::EPSILON);
    }
}

/// Seeded corruptions of a genuine faulty trace: each mutation breaks
/// exactly the ledger property the fault-ledger rule checks, and the
/// verifier must flag it.
#[test]
fn corrupted_fault_ledgers_are_flagged() {
    let retry = RetryPolicy::retries(3);
    let outcome = faulty_run(0.2, 12, 7, 40.0, 5.0, 3, &retry, SimMode::Event);
    assert!(
        !outcome.trace.faults.is_empty(),
        "corruption fixture needs at least one fault window"
    );
    assert!(madmax_verify::verify_load(&outcome.trace).is_clean());

    // Reverse a span: end before start.
    let mut t = outcome.trace.clone();
    let span = &mut t.faults[0];
    std::mem::swap(&mut span.start, &mut span.end);
    span.start += 1;
    assert!(
        madmax_verify::verify_load(&t).error_count() > 0,
        "reversed span not caught"
    );

    // Point a window at a request that never existed.
    let mut t = outcome.trace.clone();
    t.faults[0].interrupted.push(10_000);
    assert!(
        madmax_verify::verify_load(&t).error_count() > 0,
        "phantom interruption not caught"
    );

    // Inflate a request's retry count past the interruption ledger.
    let mut t = outcome.trace.clone();
    let victim = t.faults[0].interrupted[0] as usize;
    t.records[victim].retries += 1;
    assert!(
        madmax_verify::verify_load(&t).error_count() > 0,
        "inflated retries not caught"
    );

    // Push a span start past the run window.
    let mut t = outcome.trace.clone();
    let last = t.faults.len() - 1;
    t.faults[last].start = t.end + 1;
    t.faults[last].end = t.end + 2;
    assert!(
        madmax_verify::verify_load(&t).error_count() > 0,
        "out-of-window span not caught"
    );
}

/// Seeded corruptions of a genuine goodput evaluation: the
/// goodput-bound rule rejects effective throughput above the fault-free
/// bound and fractions outside `(0, 1]`.
#[test]
fn corrupted_goodput_reports_are_flagged() {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let good = Scenario::new(&model, &sys)
        .goodput(&FaultSpec::fatal(3600.0, 60.0, 7))
        .unwrap()
        .goodput;
    assert!(madmax_verify::verify_goodput(&good).is_clean());

    let mut inflated = good;
    inflated.effective_throughput = inflated.fault_free_throughput * 1.5;
    assert!(
        madmax_verify::verify_goodput(&inflated).error_count() > 0,
        "effective > fault-free not caught"
    );

    let mut out_of_range = good;
    out_of_range.goodput_fraction = 1.5;
    assert!(
        madmax_verify::verify_goodput(&out_of_range).error_count() > 0,
        "fraction > 1 not caught"
    );

    let mut unreconciled = good;
    unreconciled.goodput_fraction *= 0.5;
    assert!(
        madmax_verify::verify_goodput(&unreconciled).error_count() > 0,
        "fraction/effective mismatch not caught"
    );
}

/// A fixed fault seed reproduces bitwise-identical goodput rankings at
/// any worker-pool size: the goodput search is one deterministic
/// simulation plus closed-form arithmetic per candidate.
#[test]
fn goodput_search_is_deterministic_across_thread_counts() {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let axes = FaultAxes::new(FaultSpec::fatal(900.0, 60.0, 7)).with_intervals([60.0, 600.0]);
    let run = |threads: usize| {
        Explorer::new(&model, &sys)
            .space(SearchSpace::strategies())
            .threads(threads)
            .explore_goodput(&axes)
            .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.best_candidate, four.best_candidate);
    assert_eq!(one.fault_free_best, four.fault_free_best);
    assert_eq!(one.evaluated, four.evaluated);
    for (a, b) in one.candidates.iter().zip(&four.candidates) {
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.goodput_fraction.to_bits(), pb.goodput_fraction.to_bits());
            assert_eq!(
                pa.effective_throughput.to_bits(),
                pb.effective_throughput.to_bits()
            );
        }
    }
}
