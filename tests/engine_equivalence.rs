//! Equivalence suite for the unified engine API: `Scenario::run()` must be
//! byte-for-byte identical to the legacy front doors it subsumes
//! (`madmax_core::Simulation` for flat plans, `madmax_pipeline::simulate`
//! for pipelined plans) across the model zoo, and the parallel `Explorer`
//! must return the identical winner to a forced single-threaded run.
//!
//! Honest scope note: the deprecated fronts are thin shims over the same
//! extracted engine functions (`run_flat` / `run_pipelined`) that
//! `Scenario` calls, so these comparisons pin *shim stability* and the
//! dispatch path — they guard against the shims or the dispatcher
//! drifting apart in the future, not against a bug introduced while the
//! engines were extracted. Equivalence to the pre-refactor absolute
//! behavior is pinned separately by `tests/paper_validation.rs` and
//! `tests/insights.rs`, whose expected values predate this refactor and
//! still pass unchanged.
//!
//! This file intentionally exercises the deprecated entry points.
#![allow(deprecated)]

use madmax_dse::{Explorer, PipelineAxes, SearchSpace};
use madmax_engine::{EngineError, EngineScratch, Scenario};
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{HierStrategy, PipelineConfig, PipelineSchedule, Plan, Strategy, Task};

fn system_for(id: ModelId) -> madmax_hw::ClusterSpec {
    if id.is_dlrm() {
        catalog::zionex_dlrm_system()
    } else {
        catalog::llama_llm_system()
    }
}

#[test]
fn scenario_matches_flat_simulation_across_the_zoo() {
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        let plan = Plan::fsdp_baseline(&model);
        for task in [Task::Pretraining, Task::Inference] {
            let old = madmax_core::Simulation::new(&model, &sys, &plan, task.clone())
                .run()
                .unwrap();
            let new = Scenario::new(&model, &sys)
                .plan(plan.clone())
                .task(task.clone())
                .run()
                .unwrap();
            assert_eq!(old, new, "{id} {task}: reports differ");
            // Byte-for-byte: the serialized forms are identical too.
            assert_eq!(
                serde_json::to_string(&old).unwrap(),
                serde_json::to_string(&new).unwrap(),
                "{id} {task}: serialized reports differ"
            );
        }
    }
}

#[test]
fn scenario_matches_flat_trace_and_schedule() {
    let model = ModelId::DlrmATransformer.build();
    let sys = catalog::zionex_dlrm_system();
    let plan = Plan::fsdp_baseline(&model);
    let (old_r, old_t, old_s) =
        madmax_core::Simulation::new(&model, &sys, &plan, Task::Pretraining)
            .run_with_trace()
            .unwrap();
    let (new_r, new_t, new_s) = Scenario::new(&model, &sys)
        .plan(plan)
        .run_with_trace()
        .unwrap();
    assert_eq!(old_r, new_r);
    assert_eq!(old_t, new_t);
    assert_eq!(old_s, new_s);
}

#[test]
fn scenario_matches_pipeline_simulate_across_the_zoo() {
    // Every model x a pipelined plan: the unified entry point must agree
    // with the legacy pipeline front door on success AND on failure shape
    // (deep pipelines are unmappable for shallow DLRM towers).
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        for (p, m, schedule) in [
            (2usize, 8usize, PipelineSchedule::GPipe),
            (4, 16, PipelineSchedule::OneFOneB),
            (8, 32, PipelineSchedule::OneFOneB),
        ] {
            let mut plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
                stages: p,
                microbatches: m,
                schedule,
            });
            // Waive capacity so the comparison covers mapping logic, not
            // which side OOMs first.
            plan.options.ignore_memory_limits = true;
            let old = madmax_pipeline::simulate(&model, &sys, &plan, Task::Pretraining);
            let new = Scenario::new(&model, &sys).plan(plan).run();
            match (old, new) {
                (Ok(o), Ok(n)) => {
                    assert_eq!(o, n, "{id} pp={p} mb={m}: reports differ");
                    assert_eq!(
                        serde_json::to_string(&o).unwrap(),
                        serde_json::to_string(&n).unwrap(),
                        "{id} pp={p} mb={m}: serialized reports differ"
                    );
                }
                (Err(o), Err(n)) => {
                    assert_eq!(EngineError::from(o), n, "{id} pp={p} mb={m}: errors differ");
                }
                (o, n) => panic!("{id} pp={p} mb={m}: divergent outcomes {o:?} vs {n:?}"),
            }
        }
    }
}

#[test]
fn explorer_subsumes_deprecated_optimize() {
    for id in [ModelId::DlrmA, ModelId::Gpt3] {
        let model = id.build();
        let sys = system_for(id);
        let legacy = madmax_dse::optimize(
            &model,
            &sys,
            &Task::Pretraining,
            &madmax_dse::SearchOptions::default(),
        )
        .unwrap();
        let unified = Explorer::new(&model, &sys).explore().unwrap();
        assert_eq!(legacy.best_plan, unified.best_plan, "{id}");
        assert_eq!(legacy.best, unified.best, "{id}");
        assert_eq!(legacy.evaluated, unified.evaluated, "{id}");
        assert_eq!(legacy.oom, unified.oom, "{id}");
    }
}

#[test]
fn explorer_subsumes_deprecated_optimize_pipeline() {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let mut legacy_space = madmax_dse::PipelineSearchSpace::default_for(&sys);
    legacy_space.microbatches = vec![8, 16];
    let legacy =
        madmax_dse::optimize_pipeline(&model, &sys, &Task::Pretraining, &legacy_space).unwrap();

    let mut axes = PipelineAxes::default_for(&sys);
    axes.microbatches = vec![8, 16];
    let unified = Explorer::new(&model, &sys)
        .space(SearchSpace::default().with_pipeline(axes))
        .explore()
        .unwrap();
    assert_eq!(legacy.best_plan, unified.best_plan);
    assert_eq!(legacy.best, unified.best);
    assert_eq!(legacy.baseline, unified.baseline);
    assert_eq!(legacy.evaluated, unified.evaluated);
    assert_eq!(
        (legacy.oom, legacy.unmappable, legacy.invalid),
        (unified.oom, unified.unmappable, unified.invalid)
    );
}

#[test]
fn parallel_explorer_is_deterministic() {
    // The acceptance criterion: the parallel explorer returns the
    // identical winner (plan and report, bit for bit) to a forced
    // single-threaded run — for both a flat and a joint pipeline space.
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let seq = Explorer::new(&model, &sys).threads(1).explore().unwrap();
    for threads in [2usize, 4, 8] {
        let par = Explorer::new(&model, &sys)
            .threads(threads)
            .explore()
            .unwrap();
        assert_eq!(seq.best_plan, par.best_plan, "threads={threads}");
        assert_eq!(seq.best, par.best, "threads={threads}");
        assert_eq!(seq.baseline, par.baseline, "threads={threads}");
        assert_eq!(
            (seq.evaluated, seq.oom, seq.unmappable, seq.invalid),
            (par.evaluated, par.oom, par.unmappable, par.invalid),
            "threads={threads}"
        );
    }

    let llm = ModelId::Llama2.build();
    let llm_sys = catalog::llama_llm_system();
    let space = SearchSpace::default().with_pipeline(PipelineAxes {
        stages: vec![1, 2, 4, 8],
        microbatches: vec![8, 16],
        schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
    });
    let seq = Explorer::new(&llm, &llm_sys)
        .space(space.clone())
        .threads(1)
        .explore()
        .unwrap();
    let par = Explorer::new(&llm, &llm_sys)
        .space(space)
        .threads(8)
        .explore()
        .unwrap();
    assert_eq!(seq.best_plan, par.best_plan);
    assert_eq!(seq.best, par.best);
}

#[test]
fn cached_fast_path_is_byte_identical_across_the_zoo() {
    // The allocation-free evaluation path (shared CostTable + recycled
    // EngineScratch) must reproduce `Scenario::run`'s reports bit for bit
    // — success AND error shapes — for flat and pipelined plans. One
    // scratch is reused across every model and plan, so any state leaking
    // between candidates through the arena would show up here.
    let mut scratch = EngineScratch::new();
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        let base = Plan::fsdp_baseline(&model);
        let mut plans = vec![
            base.clone(),
            // A strategy variant exercising two-level assignments (OOM for
            // some models — errors must match too).
            base.clone().with_strategy(
                LayerClass::Dense,
                HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
            ),
        ];
        // A pipelined plan routes run_in through the stage engine.
        let mut piped = base.clone().with_pipeline(PipelineConfig::gpipe(4, 16));
        piped.options.ignore_memory_limits = true;
        plans.push(piped);

        for task in [Task::Pretraining, Task::Inference] {
            for plan in &plans {
                let scenario = Scenario::new(&model, &sys).task_ref(&task);
                let table = scenario.price_plans(std::slice::from_ref(plan));
                let cached = Scenario::new(&model, &sys)
                    .task_ref(&task)
                    .plan_ref(plan)
                    .costs(&table)
                    .run_in(&mut scratch);
                let uncached = Scenario::new(&model, &sys)
                    .task_ref(&task)
                    .plan_ref(plan)
                    .run();
                match (cached, uncached) {
                    (Ok(c), Ok(u)) => {
                        assert_eq!(c, u, "{id} {task} {}", plan.summary());
                        assert_eq!(
                            serde_json::to_string(&c).unwrap(),
                            serde_json::to_string(&u).unwrap(),
                            "{id} {task} {}: serialized reports differ",
                            plan.summary()
                        );
                    }
                    (Err(c), Err(u)) => {
                        assert_eq!(c, u, "{id} {task} {}: errors differ", plan.summary());
                    }
                    (c, u) => panic!("{id} {task}: divergent outcomes {c:?} vs {u:?}"),
                }
            }
        }
    }
}

#[test]
fn explorer_fast_path_matches_fresh_scenarios_at_any_thread_count() {
    // `Explorer::evaluate` (shared cost table, per-worker scratch, borrow-
    // based scenarios) must return exactly what one-off `Scenario::run`
    // calls produce, plan for plan, at 1 and N threads — including over a
    // joint space that mixes flat and pipelined candidates.
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let space = SearchSpace::strategies()
        .with_classes(vec![LayerClass::Transformer])
        .with_pipeline(PipelineAxes {
            stages: vec![1, 8],
            microbatches: vec![16],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        });
    let explorer = Explorer::new(&model, &sys).space(space);
    let plans = explorer.candidates();
    let fresh: Vec<_> = plans
        .iter()
        .map(|p| {
            Scenario::new(&model, &sys)
                .plan_ref(p)
                .task(Task::Pretraining)
                .run()
        })
        .collect();
    for threads in [1usize, 4] {
        let results = Explorer::new(&model, &sys)
            .space(
                SearchSpace::strategies()
                    .with_classes(vec![LayerClass::Transformer])
                    .with_pipeline(PipelineAxes {
                        stages: vec![1, 8],
                        microbatches: vec![16],
                        schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
                    }),
            )
            .threads(threads)
            .evaluate(&plans);
        assert_eq!(results.len(), fresh.len());
        for (i, (a, b)) in results.iter().zip(&fresh).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                (a, b) => panic!("threads={threads} plan {i}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn op_names_render_todays_exact_strings() {
    // The structured OpName must reproduce the historical string names
    // exactly, on real traces from both engines.
    let dlrm = ModelId::DlrmA.build();
    let dlrm_sys = catalog::zionex_dlrm_system();
    let trace = Scenario::new(&dlrm, &dlrm_sys).build_trace().unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "fwd.embedding_tables.lookup",
        "fwd.embedding_tables.a2a",
        "fwd.bottom_mlp.ag",
        "fwd.bottom_mlp",
        "bwd.top_mlp.ag_bwd",
        "bwd.embedding_tables.a2a_bwd",
        "bwd.embedding_tables.grad_scatter",
        "update.optimizer",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    let llm = ModelId::Gpt3.build();
    let llm_sys = catalog::llama_llm_system();
    let trace = Scenario::new(&llm, &llm_sys).build_trace().unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "fwd[0].transformer_blocks",
        "fwd[95].transformer_blocks.ag",
        "bwd[95].transformer_blocks.rs",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    let plan = Plan::fsdp_baseline(&llm).with_pipeline(PipelineConfig::gpipe(8, 16));
    let trace = Scenario::new(&llm, &llm_sys)
        .plan(plan)
        .build_trace()
        .unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "stage0.param.AllGather",
        "stage0.fwd[0]",
        "stage0.send_act[0]",
        "stage7.bwd[15]",
        "stage1.send_grad[3]",
        "stage0.grad.ReduceScatter",
        "stage0.optimizer",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
}

#[test]
fn unified_error_reports_one_shape_for_both_engines() {
    // Flat OOM and pipeline OOM both surface as EngineError::OutOfMemory;
    // unmappable pipelines surface as InvalidPlan — no more matching on
    // two simulators' error conventions.
    let model = ModelId::Gpt3.build();
    let sys = catalog::llama_llm_system();

    let flat_oom = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_strategy(
            madmax_model::LayerClass::Transformer,
            madmax_parallel::HierStrategy::flat(madmax_parallel::Strategy::Ddp),
        ))
        .run()
        .unwrap_err();
    assert!(flat_oom.is_oom());

    let unmappable = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8)))
        .run()
        .unwrap_err();
    assert!(unmappable.is_unmappable_pipeline());
    assert!(!unmappable.is_oom());
}
