//! Equivalence suite for the unified engine API.
//!
//! PR 2 pinned `Scenario` byte-for-byte against the legacy `Simulation` /
//! `PipelineSimulation` front doors, and PR 4 pinned the `Workload`
//! redesign against the legacy `Task` shims; both shim generations have
//! now been removed after their deprecation releases, and the absolute
//! behavior they pinned is carried by `tests/paper_validation.rs` /
//! `tests/insights.rs` (expected values predating every refactor, still
//! passing unchanged) plus the legacy-inference shape pin below.
//!
//! This file pins the evaluation fast paths the same way, one layer down:
//!
//! - the prefill-only serve workload ([`Workload::inference`]) is
//!   byte-for-byte the explicit prompt/batch serve configuration — the
//!   engine shape the removed `Task::Inference` mapped onto, so every
//!   historical inference figure is unchanged;
//! - the allocation-free cached paths — the flat `CostTable` *and* the
//!   pipeline `PipelineCostTable` — reproduce `Scenario::run` exactly
//!   (success and error shapes), across the model zoo, both pipeline
//!   schedules, training and serve workloads, with one shared scratch;
//! - a shared `PipelineCostTable` reused across randomized
//!   `(microbatches, schedule, decode batch)` candidates matches fresh
//!   pricing (property test);
//! - the parallel explorer returns the identical winner at any thread
//!   count.

use proptest::prelude::*;

use madmax_dse::{Explorer, PipelineAxes, SearchSpace, ServeAxes};
use madmax_engine::{EngineScratch, Scenario};
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{
    HierStrategy, PipelineConfig, PipelineSchedule, Plan, ServeConfig, Strategy, Workload,
};

fn system_for(id: ModelId) -> madmax_hw::ClusterSpec {
    if id.is_dlrm() {
        catalog::zionex_dlrm_system()
    } else {
        catalog::llama_llm_system()
    }
}

#[test]
fn legacy_inference_is_the_prefill_only_serve_workload() {
    // Workload::inference() == a prefill-only serve with the model's own
    // context/batch; an *explicit* prompt override equal to the model
    // context produces identical numbers through the effective-model
    // path. This is the engine shape the removed Task::Inference shim
    // mapped onto.
    for id in [ModelId::DlrmA, ModelId::Gpt3, ModelId::Llama2] {
        let model = id.build();
        let sys = system_for(id);
        let plan = Plan::fsdp_baseline(&model);
        let implicit = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .workload(Workload::inference())
            .run()
            .unwrap();
        let explicit = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .workload(Workload::serve(ServeConfig {
                prompt_len: Some(model.context_length),
                decode_len: 0,
                decode_batch: Some(model.global_batch),
                kv_cache: false,
            }))
            .run()
            .unwrap();
        assert_eq!(implicit, explicit, "{id}: explicit prompt/batch differ");
        assert!(implicit.serve.is_none(), "{id}: prefill-only has no stats");
        assert_eq!(
            serde_json::to_string(&implicit).unwrap(),
            serde_json::to_string(&explicit).unwrap(),
            "{id}: serialized inference reports differ"
        );
    }
}

#[test]
fn parallel_explorer_is_deterministic() {
    // The parallel explorer returns the identical winner (plan and
    // report, bit for bit) to a forced single-threaded run — for a flat,
    // a joint pipeline, and a serve space.
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let seq = Explorer::new(&model, &sys).threads(1).explore().unwrap();
    for threads in [2usize, 4, 8] {
        let par = Explorer::new(&model, &sys)
            .threads(threads)
            .explore()
            .unwrap();
        assert_eq!(seq.best_plan, par.best_plan, "threads={threads}");
        assert_eq!(seq.best, par.best, "threads={threads}");
        assert_eq!(seq.baseline, par.baseline, "threads={threads}");
        assert_eq!(
            (seq.evaluated, seq.oom, seq.unmappable, seq.invalid),
            (par.evaluated, par.oom, par.unmappable, par.invalid),
            "threads={threads}"
        );
    }

    let llm = ModelId::Llama2.build();
    let llm_sys = catalog::llama_llm_system();
    let space = SearchSpace::default().with_pipeline(PipelineAxes {
        stages: vec![1, 2, 4, 8],
        microbatches: vec![8, 16],
        schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
    });
    let seq = Explorer::new(&llm, &llm_sys)
        .space(space.clone())
        .threads(1)
        .explore()
        .unwrap();
    let par = Explorer::new(&llm, &llm_sys)
        .space(space)
        .threads(8)
        .explore()
        .unwrap();
    assert_eq!(seq.best_plan, par.best_plan);
    assert_eq!(seq.best, par.best);

    let serve_space = SearchSpace::default()
        .with_serve(ServeAxes::batches([256, 512]))
        .with_pipeline(PipelineAxes {
            stages: vec![1, 8],
            microbatches: vec![8],
            schedules: vec![PipelineSchedule::GPipe],
        });
    let workload = Workload::serve(ServeConfig::new(512, 16));
    let seq = Explorer::new(&llm, &llm_sys)
        .workload(workload.clone())
        .space(serve_space.clone())
        .threads(1)
        .explore()
        .unwrap();
    let par = Explorer::new(&llm, &llm_sys)
        .workload(workload)
        .space(serve_space)
        .threads(8)
        .explore()
        .unwrap();
    assert_eq!(seq.best_plan, par.best_plan);
    assert_eq!(seq.best_workload, par.best_workload);
    assert_eq!(seq.best, par.best);
}

#[test]
fn telemetry_instrumentation_never_perturbs_reports() {
    // Turning the telemetry layer on — evaluating through
    // `evaluate_with_telemetry` instead of `evaluate`, with a live
    // progress sink attached — must leave every report byte-identical to
    // the quiet path. The counters observe the search; they must never
    // steer it.
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug, Default)]
    struct CountingSink {
        events: AtomicU64,
    }
    impl madmax_dse::ProgressSink for CountingSink {
        fn candidate_completed(&self, _event: &madmax_dse::CandidateEvent) {
            self.events.fetch_add(1, Ordering::Relaxed);
        }
    }

    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let space = SearchSpace::strategies()
        .with_classes(vec![LayerClass::Transformer])
        .with_pipeline(PipelineAxes {
            stages: vec![1, 4],
            microbatches: vec![16],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        });
    let quiet = Explorer::new(&model, &sys).space(space.clone());
    let plans = quiet.candidates();
    let baseline_results = quiet.evaluate(&plans);

    let sink = CountingSink::default();
    let loud = Explorer::new(&model, &sys).space(space).progress(&sink);
    let (results, telemetry) = loud.evaluate_with_telemetry(&Workload::pretrain(), &plans);
    assert_eq!(results.len(), baseline_results.len());
    for (i, (a, b)) in results.iter().zip(&baseline_results).enumerate() {
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "plan {i}");
                assert_eq!(
                    serde_json::to_string(a).unwrap(),
                    serde_json::to_string(b).unwrap(),
                    "plan {i}: serialized reports differ under telemetry"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "plan {i}"),
            (a, b) => panic!("plan {i}: divergent outcomes {a:?} vs {b:?}"),
        }
    }
    assert!(telemetry.reconciles(), "telemetry: {telemetry:?}");
    assert_eq!(telemetry.candidates as usize, plans.len());
    assert_eq!(sink.events.load(Ordering::Relaxed) as usize, plans.len());
}

#[test]
fn progress_sink_preserves_thread_count_determinism() {
    // The 1-vs-N-thread determinism pin holds with a shared ProgressSink
    // attached to every run: the sink sees the same number of candidate
    // events per run regardless of thread count, and the winner stays bit
    // for bit identical.
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug, Default)]
    struct CountingSink {
        events: AtomicU64,
        finished: AtomicU64,
    }
    impl madmax_dse::ProgressSink for CountingSink {
        fn candidate_completed(&self, _event: &madmax_dse::CandidateEvent) {
            self.events.fetch_add(1, Ordering::Relaxed);
        }
        fn search_finished(&self, _telemetry: &madmax_dse::SearchTelemetry) {
            self.finished.fetch_add(1, Ordering::Relaxed);
        }
    }

    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let sink = CountingSink::default();
    let seq = Explorer::new(&model, &sys)
        .threads(1)
        .progress(&sink)
        .explore()
        .unwrap();
    let seq_events = sink.events.swap(0, Ordering::Relaxed);
    assert!(seq_events > 0);
    for threads in [2usize, 4] {
        let par = Explorer::new(&model, &sys)
            .threads(threads)
            .progress(&sink)
            .explore()
            .unwrap();
        assert_eq!(seq.best_plan, par.best_plan, "threads={threads}");
        assert_eq!(seq.best, par.best, "threads={threads}");
        assert_eq!(
            seq.telemetry.candidates, par.telemetry.candidates,
            "threads={threads}"
        );
        assert!(par.telemetry.reconciles(), "threads={threads}");
        assert_eq!(
            sink.events.swap(0, Ordering::Relaxed),
            seq_events,
            "threads={threads}: sink saw a different number of candidates"
        );
    }
    assert_eq!(sink.finished.load(Ordering::Relaxed), 3);
}

#[test]
fn cached_fast_path_is_byte_identical_across_the_zoo() {
    // The allocation-free evaluation paths (shared CostTable /
    // PipelineCostTable + recycled EngineScratch) must reproduce
    // `Scenario::run`'s reports bit for bit — success AND error shapes —
    // for flat and pipelined plans, training and serve workloads. One
    // scratch is reused across every model and plan, so any state leaking
    // between candidates through the arena or the pipeline memo would
    // show up here.
    let mut scratch = EngineScratch::new();
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        let base = Plan::fsdp_baseline(&model);
        let mut plans = vec![
            base.clone(),
            // A strategy variant exercising two-level assignments (OOM for
            // some models — errors must match too).
            base.clone().with_strategy(
                LayerClass::Dense,
                HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
            ),
        ];
        // Pipelined plans route run_in through the stage engine — both
        // schedules at one (depth, microbatch) key, so the serve memo's
        // schedule collapse is exercised against fresh runs.
        for schedule in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
            let mut piped = base.clone().with_pipeline(PipelineConfig {
                stages: 4,
                microbatches: 16,
                schedule,
            });
            piped.options.ignore_memory_limits = true;
            plans.push(piped);
        }

        for workload in [
            Workload::pretrain(),
            Workload::inference(),
            Workload::serve(ServeConfig::new(256, 8)),
            // Long enough decode for the closed-form steady-state path:
            // the cached run takes it (tables default analytic-on) while
            // `Scenario::run` always simulates in full, so this pins the
            // analytic reports byte-for-byte across the zoo.
            Workload::serve(ServeConfig::new(256, 48)),
        ] {
            for plan in &plans {
                let scenario = Scenario::new(&model, &sys).workload_ref(&workload);
                let table = scenario.price_plans(std::slice::from_ref(plan));
                let pp_table = scenario.price_pipeline_plans(std::slice::from_ref(plan));
                let cached = Scenario::new(&model, &sys)
                    .workload_ref(&workload)
                    .plan_ref(plan)
                    .costs(&table)
                    .pipeline_costs(&pp_table)
                    .run_in(&mut scratch);
                let uncached = Scenario::new(&model, &sys)
                    .workload_ref(&workload)
                    .plan_ref(plan)
                    .run();
                match (cached, uncached) {
                    (Ok(c), Ok(u)) => {
                        assert_eq!(c, u, "{id} {workload} {}", plan.summary());
                        assert_eq!(
                            serde_json::to_string(&c).unwrap(),
                            serde_json::to_string(&u).unwrap(),
                            "{id} {workload} {}: serialized reports differ",
                            plan.summary()
                        );
                    }
                    (Err(c), Err(u)) => {
                        assert_eq!(c, u, "{id} {workload} {}: errors differ", plan.summary());
                    }
                    (c, u) => panic!("{id} {workload}: divergent outcomes {c:?} vs {u:?}"),
                }
            }
        }
    }
}

#[test]
fn analytic_serve_toggle_is_report_invisible_across_the_zoo() {
    // `Scenario::analytic_serve(false)` opts serve evaluation out of the
    // closed-form steady-state decode path; flipping it must never change
    // a report, for any model in the zoo, flat or pipelined, under either
    // pipeline schedule. The analytic counters prove both sides ran the
    // path they claim: the `on` table synthesizes exactly one report per
    // evaluation whenever the model decodes and the schedule fits the
    // exact grid range (LLM-MoE's multi-thousand-second serve spans
    // exceed it and legitimately fall back), the `off` table none.
    let mut scratch = EngineScratch::new();
    let workload = Workload::serve(ServeConfig::new(256, 64));
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        let decodes = workload.decode_model(&model).is_some();
        let base = Plan::fsdp_baseline(&model);
        let mut plans = vec![base.clone()];
        for schedule in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
            let mut piped = base.clone().with_pipeline(PipelineConfig {
                stages: 4,
                microbatches: 8,
                schedule,
            });
            piped.options.ignore_memory_limits = true;
            plans.push(piped);
        }
        for plan in &plans {
            let on = Scenario::new(&model, &sys)
                .workload_ref(&workload)
                .plan_ref(plan);
            let on_table = on.price_plans(std::slice::from_ref(plan));
            let on_pp = on.price_pipeline_plans(std::slice::from_ref(plan));
            let fast = on
                .costs(&on_table)
                .pipeline_costs(&on_pp)
                .run_in(&mut scratch);
            let off = Scenario::new(&model, &sys)
                .workload_ref(&workload)
                .plan_ref(plan)
                .analytic_serve(false);
            let off_table = off.price_plans(std::slice::from_ref(plan));
            let off_pp = off.price_pipeline_plans(std::slice::from_ref(plan));
            let full = off
                .costs(&off_table)
                .pipeline_costs(&off_pp)
                .run_in(&mut scratch);
            match (fast, full) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{id} {}", plan.summary());
                    let in_range = madmax_core::steady::fits_grid_range(b.iteration_time)
                        && madmax_core::steady::fits_grid_range(b.serialized_time);
                    let synthesized = on_table.analytic_stats().hits + on_pp.analytic_stats().hits;
                    assert_eq!(
                        synthesized,
                        u64::from(decodes && in_range),
                        "{id} {}: analytic path engagement",
                        plan.summary()
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{id} {}: errors differ", plan.summary()),
                (a, b) => panic!("{id} {}: divergent outcomes {a:?} vs {b:?}", plan.summary()),
            }
            assert_eq!(
                off_table.analytic_stats().hits + off_pp.analytic_stats().hits,
                0,
                "{id} {}: opted-out table synthesized a report",
                plan.summary()
            );
        }
    }
}

#[test]
fn serve_report_memo_is_shared_across_schedules_and_scratches() {
    // The report memo lives on the `PipelineCostTable`, not the worker
    // scratch: whichever worker evaluates a memo key first saves every
    // other worker the assembly, and a serve decode stream is
    // schedule-independent, so the GPipe/1F1B pair of a joint search
    // shares one key. Evaluate the pair through one table with two
    // separate scratches (distinct workers) and watch the counters.
    let model = ModelId::Llama2.build();
    let sys = system_for(ModelId::Llama2);
    let workload = Workload::serve(ServeConfig::new(512, 64).with_decode_batch(512));
    let base = Plan::fsdp_baseline(&model);
    let plans = [
        base.clone().with_pipeline(PipelineConfig::gpipe(4, 8)),
        base.with_pipeline(PipelineConfig::one_f_one_b(4, 8)),
    ];
    let pricer = Scenario::new(&model, &sys)
        .workload_ref(&workload)
        .plan_ref(&plans[0]);
    let table = pricer.price_pipeline_plans(&plans);

    let mut scratch_a = EngineScratch::new();
    let gpipe = Scenario::new(&model, &sys)
        .workload_ref(&workload)
        .plan_ref(&plans[0])
        .pipeline_costs(&table)
        .run_in(&mut scratch_a)
        .unwrap();
    let first = table.memo_stats();
    assert_eq!((first.hits, first.misses), (0, 1), "first evaluation");

    let mut scratch_b = EngineScratch::new();
    let one_f_one_b = Scenario::new(&model, &sys)
        .workload_ref(&workload)
        .plan_ref(&plans[1])
        .pipeline_costs(&table)
        .run_in(&mut scratch_b)
        .unwrap();
    let second = table.memo_stats();
    assert_eq!(
        (second.hits, second.misses),
        (1, 1),
        "the other schedule from a different scratch is a memo hit"
    );
    assert_eq!(gpipe, one_f_one_b, "memoized report is byte-identical");

    // Re-evaluating either candidate stays a hit; the table never
    // reassembles a key it has seen.
    Scenario::new(&model, &sys)
        .workload_ref(&workload)
        .plan_ref(&plans[0])
        .pipeline_costs(&table)
        .run_in(&mut scratch_b)
        .unwrap();
    let third = table.memo_stats();
    assert_eq!((third.hits, third.misses), (2, 1), "revisit");
}

#[test]
fn shared_pipeline_table_matches_fresh_runs_across_keys() {
    // One PipelineCostTable shared across every (depth, microbatch,
    // schedule) candidate of a search — for training and serve workloads,
    // at 1 and N threads through the explorer — returns exactly what
    // one-off `Scenario::run` calls produce, plan for plan.
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    for workload in [
        Workload::pretrain(),
        Workload::serve(ServeConfig::new(512, 8).with_decode_batch(512)),
    ] {
        let mut plans = Vec::new();
        for p in [2usize, 4, 8] {
            for m in [8usize, 16] {
                for schedule in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
                    let mut plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
                        stages: p,
                        microbatches: m,
                        schedule,
                    });
                    plan.options.ignore_memory_limits = true;
                    plans.push(plan);
                }
            }
        }
        let fresh: Vec<_> = plans
            .iter()
            .map(|p| {
                Scenario::new(&model, &sys)
                    .plan_ref(p)
                    .workload_ref(&workload)
                    .run()
            })
            .collect();
        for threads in [1usize, 4] {
            let results = Explorer::new(&model, &sys)
                .workload(workload.clone())
                .threads(threads)
                .evaluate(&plans);
            assert_eq!(results.len(), fresh.len());
            for (i, (a, b)) in results.iter().zip(&fresh).enumerate() {
                match (a, b) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                    (Err(a), Err(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                    (a, b) => panic!("threads={threads} plan {i}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn explorer_fast_path_matches_fresh_scenarios_at_any_thread_count() {
    // `Explorer::evaluate` (shared cost tables, per-worker scratch,
    // borrow-based scenarios) must return exactly what one-off
    // `Scenario::run` calls produce, plan for plan, at 1 and N threads —
    // including over a joint space that mixes flat and pipelined
    // candidates.
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let space = SearchSpace::strategies()
        .with_classes(vec![LayerClass::Transformer])
        .with_pipeline(PipelineAxes {
            stages: vec![1, 8],
            microbatches: vec![16],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        });
    let explorer = Explorer::new(&model, &sys).space(space);
    let plans = explorer.candidates();
    let fresh: Vec<_> = plans
        .iter()
        .map(|p| {
            Scenario::new(&model, &sys)
                .plan_ref(p)
                .workload(Workload::pretrain())
                .run()
        })
        .collect();
    for threads in [1usize, 4] {
        let results = Explorer::new(&model, &sys)
            .space(
                SearchSpace::strategies()
                    .with_classes(vec![LayerClass::Transformer])
                    .with_pipeline(PipelineAxes {
                        stages: vec![1, 8],
                        microbatches: vec![16],
                        schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
                    }),
            )
            .threads(threads)
            .evaluate(&plans);
        assert_eq!(results.len(), fresh.len());
        for (i, (a, b)) in results.iter().zip(&fresh).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                (a, b) => panic!("threads={threads} plan {i}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn op_names_render_todays_exact_strings() {
    // The structured OpName must reproduce the historical string names
    // exactly, on real traces from both engines — plus the serve trace's
    // decode names.
    let dlrm = ModelId::DlrmA.build();
    let dlrm_sys = catalog::zionex_dlrm_system();
    let trace = Scenario::new(&dlrm, &dlrm_sys).build_trace().unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "fwd.embedding_tables.lookup",
        "fwd.embedding_tables.a2a",
        "fwd.bottom_mlp.ag",
        "fwd.bottom_mlp",
        "bwd.top_mlp.ag_bwd",
        "bwd.embedding_tables.a2a_bwd",
        "bwd.embedding_tables.grad_scatter",
        "update.optimizer",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    let llm = ModelId::Gpt3.build();
    let llm_sys = catalog::llama_llm_system();
    let trace = Scenario::new(&llm, &llm_sys).build_trace().unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "fwd[0].transformer_blocks",
        "fwd[95].transformer_blocks.ag",
        "bwd[95].transformer_blocks.rs",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    let plan = Plan::fsdp_baseline(&llm).with_pipeline(PipelineConfig::gpipe(8, 16));
    let trace = Scenario::new(&llm, &llm_sys)
        .plan(plan.clone())
        .build_trace()
        .unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "stage0.param.AllGather",
        "stage0.fwd[0]",
        "stage0.send_act[0]",
        "stage7.bwd[15]",
        "stage1.send_grad[3]",
        "stage0.grad.ReduceScatter",
        "stage0.optimizer",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    // Serve traces: flat decode names and pipelined decode-stream names.
    let serve = Workload::serve(ServeConfig::new(512, 2));
    let trace = Scenario::new(&llm, &llm_sys)
        .workload(serve.clone())
        .build_trace()
        .unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "dec[0].word_embedding.lookup",
        "dec[0][0].transformer_blocks",
        "dec[1][95].transformer_blocks",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
    let trace = Scenario::new(&llm, &llm_sys)
        .workload(serve)
        .plan(plan)
        .build_trace()
        .unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in ["stage0.dec[0]", "stage7.dec[31]", "stage0.send_tok[31]"] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
}

#[test]
fn unified_error_reports_one_shape_for_both_engines() {
    // Flat OOM and pipeline OOM both surface as EngineError::OutOfMemory;
    // unmappable pipelines surface as InvalidPlan — no more matching on
    // two simulators' error conventions.
    let model = ModelId::Gpt3.build();
    let sys = catalog::llama_llm_system();

    let flat_oom = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_strategy(
            madmax_model::LayerClass::Transformer,
            madmax_parallel::HierStrategy::flat(madmax_parallel::Strategy::Ddp),
        ))
        .run()
        .unwrap_err();
    assert!(flat_oom.is_oom());

    let unmappable = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8)))
        .run()
        .unwrap_err();
    assert!(unmappable.is_unmappable_pipeline());
    assert!(!unmappable.is_oom());
}

proptest! {
    /// One shared `PipelineCostTable` reused across randomized
    /// `(microbatches, schedule, decode batch)` candidates matches fresh
    /// (uncached) pricing bit for bit — through one recycled scratch, so
    /// the memo can never serve a stale report.
    #[test]
    fn shared_pipeline_table_matches_fresh_pricing(
        m_idx in 0usize..4,
        schedule_tag in 0usize..2,
        batch_idx in 0usize..3,
        depth_idx in 0usize..3,
        decode_len in 1usize..6,
    ) {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let microbatches = [2usize, 4, 8, 16][m_idx];
        let decode_batch = [64usize, 256, 512][batch_idx];
        let stages = [2usize, 4, 8][depth_idx];
        let schedule = [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB][schedule_tag];
        let workload = Workload::serve(
            ServeConfig::new(256, decode_len).with_decode_batch(decode_batch),
        );
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
            stages,
            microbatches,
            schedule,
        });
        // The shared table also covers the sibling schedule's candidate,
        // so the (depth, assignment, m) entry is genuinely reused.
        let sibling = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
            stages,
            microbatches,
            schedule: match schedule {
                PipelineSchedule::GPipe => PipelineSchedule::OneFOneB,
                PipelineSchedule::OneFOneB => PipelineSchedule::GPipe,
            },
        });
        let scenario = Scenario::new(&model, &sys).workload_ref(&workload);
        let table = scenario.price_pipeline_plans(&[sibling.clone(), plan.clone()]);
        let mut scratch = EngineScratch::new();
        for candidate in [&sibling, &plan, &sibling] {
            let cached = Scenario::new(&model, &sys)
                .workload_ref(&workload)
                .plan_ref(candidate)
                .pipeline_costs(&table)
                .run_in(&mut scratch);
            let fresh = Scenario::new(&model, &sys)
                .workload_ref(&workload)
                .plan_ref(candidate)
                .run();
            match (cached, fresh) {
                (Ok(c), Ok(u)) => prop_assert_eq!(c, u),
                (Err(c), Err(u)) => prop_assert_eq!(c, u),
                (c, u) => prop_assert!(false, "divergent outcomes {:?} vs {:?}", c, u),
            }
        }
    }
}

#[test]
fn absent_fault_spec_leaves_the_load_path_byte_identical() {
    // The fault-aware entry point with an empty event stream must be a
    // pure pass-through: same report, same trace records, in both
    // simulation modes. This is the no-`FaultSpec` byte-identity
    // guarantee — fault plumbing costs nothing when inactive.
    use madmax_engine::{RetryPolicy, SimMode};
    use madmax_parallel::LoadSpec;

    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let workload = Workload::serve(ServeConfig::new(256, 32).with_decode_batch(8));
    let scenario = Scenario::new(&model, &sys).workload_ref(&workload);
    for spec in [
        LoadSpec::poisson(0.1, 16, 7),
        LoadSpec::bursty(0.3, 15.0, 5.0, 16, 7),
    ] {
        let costs = scenario.price_load(&spec).unwrap();
        for mode in [SimMode::Event, SimMode::PerToken] {
            let plain = scenario
                .serve_load_priced(&spec, &costs, mode, None)
                .unwrap();
            let faulty = scenario
                .serve_load_faulty(&spec, &costs, mode, &[], &RetryPolicy::default(), None)
                .unwrap();
            assert_eq!(plain.report.requests, faulty.report.requests);
            assert_eq!(plain.report.makespan, faulty.report.makespan);
            assert_eq!(plain.report.ttft, faulty.report.ttft);
            assert_eq!(plain.trace.records, faulty.trace.records);
            assert_eq!(plain.trace.runs, faulty.trace.runs);
            assert!(faulty.trace.faults.is_empty());
        }
    }
}
