//! Equivalence suite for the unified engine API.
//!
//! PR 2 pinned `Scenario` byte-for-byte against the legacy `Simulation` /
//! `PipelineSimulation` front doors; those shims have now been removed
//! after their deprecation release, and the absolute behavior they pinned
//! is carried by `tests/paper_validation.rs` / `tests/insights.rs`
//! (expected values predating both refactors, still passing unchanged).
//!
//! This file pins the `Workload` redesign the same way, one layer down:
//!
//! - `Scenario::workload(Workload::from(task))` is byte-for-byte the
//!   deprecated `Scenario::task(task)` shim for every legacy variant —
//!   in particular `Task::Inference` maps to a prefill-only serve
//!   workload with an identical engine path, so every existing inference
//!   figure/result is unchanged;
//! - the allocation-free cached path reproduces `Scenario::run` exactly
//!   (now including serve workloads with decode phases);
//! - the parallel explorer returns the identical winner at any thread
//!   count.
//!
//! This file intentionally exercises the deprecated `task()` shims.
#![allow(deprecated)]

use madmax_dse::{Explorer, PipelineAxes, SearchSpace, ServeAxes};
use madmax_engine::{EngineScratch, Scenario};
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{
    HierStrategy, PipelineConfig, PipelineSchedule, Plan, ServeConfig, Strategy, Task, Workload,
};

fn system_for(id: ModelId) -> madmax_hw::ClusterSpec {
    if id.is_dlrm() {
        catalog::zionex_dlrm_system()
    } else {
        catalog::llama_llm_system()
    }
}

#[test]
fn workload_from_task_is_byte_identical_across_the_zoo() {
    // The acceptance pin: Scenario::workload(Workload::from(task)) must
    // reproduce the deprecated Scenario::task(task) shim — and with it
    // every existing figure — byte for byte, for every legacy variant.
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        let plan = Plan::fsdp_baseline(&model);
        for task in [
            Task::Pretraining,
            Task::Inference,
            Task::finetune_only(LayerClass::Embedding),
        ] {
            let old = Scenario::new(&model, &sys)
                .plan(plan.clone())
                .task(task.clone())
                .run()
                .unwrap();
            let new = Scenario::new(&model, &sys)
                .plan(plan.clone())
                .workload(Workload::from(task.clone()))
                .run()
                .unwrap();
            assert_eq!(old, new, "{id} {task}: reports differ");
            // Byte-for-byte: the serialized forms are identical too.
            assert_eq!(
                serde_json::to_string(&old).unwrap(),
                serde_json::to_string(&new).unwrap(),
                "{id} {task}: serialized reports differ"
            );
        }
    }
}

#[test]
fn legacy_inference_is_the_prefill_only_serve_workload() {
    // Task::Inference == Workload::inference() == a prefill-only serve
    // with the model's own context/batch; an *explicit* prompt override
    // equal to the model context produces identical numbers through the
    // effective-model path.
    for id in [ModelId::DlrmA, ModelId::Gpt3, ModelId::Llama2] {
        let model = id.build();
        let sys = system_for(id);
        let plan = Plan::fsdp_baseline(&model);
        let legacy = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .task(Task::Inference)
            .run()
            .unwrap();
        let mapped = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .workload(Workload::from(Task::Inference))
            .run()
            .unwrap();
        let explicit = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .workload(Workload::serve(ServeConfig {
                prompt_len: Some(model.context_length),
                decode_len: 0,
                decode_batch: Some(model.global_batch),
                kv_cache: false,
            }))
            .run()
            .unwrap();
        assert_eq!(legacy, mapped, "{id}");
        assert_eq!(legacy, explicit, "{id}: explicit prompt/batch differ");
        assert!(legacy.serve.is_none(), "{id}: prefill-only has no stats");
        assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            serde_json::to_string(&mapped).unwrap(),
            "{id}: serialized inference reports differ"
        );
    }
}

#[test]
fn workload_trace_and_schedule_match_the_task_shim() {
    let model = ModelId::DlrmATransformer.build();
    let sys = catalog::zionex_dlrm_system();
    let plan = Plan::fsdp_baseline(&model);
    let (old_r, old_t, old_s) = Scenario::new(&model, &sys)
        .plan(plan.clone())
        .task(Task::Pretraining)
        .run_with_trace()
        .unwrap();
    let (new_r, new_t, new_s) = Scenario::new(&model, &sys)
        .plan(plan)
        .workload(Workload::pretrain())
        .run_with_trace()
        .unwrap();
    assert_eq!(old_r, new_r);
    assert_eq!(old_t, new_t);
    assert_eq!(old_s, new_s);
}

#[test]
fn parallel_explorer_is_deterministic() {
    // The parallel explorer returns the identical winner (plan and
    // report, bit for bit) to a forced single-threaded run — for a flat,
    // a joint pipeline, and a serve space.
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let seq = Explorer::new(&model, &sys).threads(1).explore().unwrap();
    for threads in [2usize, 4, 8] {
        let par = Explorer::new(&model, &sys)
            .threads(threads)
            .explore()
            .unwrap();
        assert_eq!(seq.best_plan, par.best_plan, "threads={threads}");
        assert_eq!(seq.best, par.best, "threads={threads}");
        assert_eq!(seq.baseline, par.baseline, "threads={threads}");
        assert_eq!(
            (seq.evaluated, seq.oom, seq.unmappable, seq.invalid),
            (par.evaluated, par.oom, par.unmappable, par.invalid),
            "threads={threads}"
        );
    }

    let llm = ModelId::Llama2.build();
    let llm_sys = catalog::llama_llm_system();
    let space = SearchSpace::default().with_pipeline(PipelineAxes {
        stages: vec![1, 2, 4, 8],
        microbatches: vec![8, 16],
        schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
    });
    let seq = Explorer::new(&llm, &llm_sys)
        .space(space.clone())
        .threads(1)
        .explore()
        .unwrap();
    let par = Explorer::new(&llm, &llm_sys)
        .space(space)
        .threads(8)
        .explore()
        .unwrap();
    assert_eq!(seq.best_plan, par.best_plan);
    assert_eq!(seq.best, par.best);

    let serve_space = SearchSpace::default()
        .with_serve(ServeAxes::batches([256, 512]))
        .with_pipeline(PipelineAxes {
            stages: vec![1, 8],
            microbatches: vec![8],
            schedules: vec![PipelineSchedule::GPipe],
        });
    let workload = Workload::serve(ServeConfig::new(512, 16));
    let seq = Explorer::new(&llm, &llm_sys)
        .workload(workload.clone())
        .space(serve_space.clone())
        .threads(1)
        .explore()
        .unwrap();
    let par = Explorer::new(&llm, &llm_sys)
        .workload(workload)
        .space(serve_space)
        .threads(8)
        .explore()
        .unwrap();
    assert_eq!(seq.best_plan, par.best_plan);
    assert_eq!(seq.best_workload, par.best_workload);
    assert_eq!(seq.best, par.best);
}

#[test]
fn cached_fast_path_is_byte_identical_across_the_zoo() {
    // The allocation-free evaluation path (shared CostTable + recycled
    // EngineScratch) must reproduce `Scenario::run`'s reports bit for bit
    // — success AND error shapes — for flat and pipelined plans, training
    // and serve workloads. One scratch is reused across every model and
    // plan, so any state leaking between candidates through the arena
    // would show up here.
    let mut scratch = EngineScratch::new();
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        let base = Plan::fsdp_baseline(&model);
        let mut plans = vec![
            base.clone(),
            // A strategy variant exercising two-level assignments (OOM for
            // some models — errors must match too).
            base.clone().with_strategy(
                LayerClass::Dense,
                HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
            ),
        ];
        // A pipelined plan routes run_in through the stage engine.
        let mut piped = base.clone().with_pipeline(PipelineConfig::gpipe(4, 16));
        piped.options.ignore_memory_limits = true;
        plans.push(piped);

        for workload in [
            Workload::pretrain(),
            Workload::inference(),
            Workload::serve(ServeConfig::new(256, 8)),
        ] {
            for plan in &plans {
                let scenario = Scenario::new(&model, &sys).workload_ref(&workload);
                let table = scenario.price_plans(std::slice::from_ref(plan));
                let cached = Scenario::new(&model, &sys)
                    .workload_ref(&workload)
                    .plan_ref(plan)
                    .costs(&table)
                    .run_in(&mut scratch);
                let uncached = Scenario::new(&model, &sys)
                    .workload_ref(&workload)
                    .plan_ref(plan)
                    .run();
                match (cached, uncached) {
                    (Ok(c), Ok(u)) => {
                        assert_eq!(c, u, "{id} {workload} {}", plan.summary());
                        assert_eq!(
                            serde_json::to_string(&c).unwrap(),
                            serde_json::to_string(&u).unwrap(),
                            "{id} {workload} {}: serialized reports differ",
                            plan.summary()
                        );
                    }
                    (Err(c), Err(u)) => {
                        assert_eq!(c, u, "{id} {workload} {}: errors differ", plan.summary());
                    }
                    (c, u) => panic!("{id} {workload}: divergent outcomes {c:?} vs {u:?}"),
                }
            }
        }
    }
}

#[test]
fn explorer_fast_path_matches_fresh_scenarios_at_any_thread_count() {
    // `Explorer::evaluate` (shared cost table, per-worker scratch, borrow-
    // based scenarios) must return exactly what one-off `Scenario::run`
    // calls produce, plan for plan, at 1 and N threads — including over a
    // joint space that mixes flat and pipelined candidates.
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let space = SearchSpace::strategies()
        .with_classes(vec![LayerClass::Transformer])
        .with_pipeline(PipelineAxes {
            stages: vec![1, 8],
            microbatches: vec![16],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        });
    let explorer = Explorer::new(&model, &sys).space(space);
    let plans = explorer.candidates();
    let fresh: Vec<_> = plans
        .iter()
        .map(|p| {
            Scenario::new(&model, &sys)
                .plan_ref(p)
                .workload(Workload::pretrain())
                .run()
        })
        .collect();
    for threads in [1usize, 4] {
        let results = Explorer::new(&model, &sys)
            .space(
                SearchSpace::strategies()
                    .with_classes(vec![LayerClass::Transformer])
                    .with_pipeline(PipelineAxes {
                        stages: vec![1, 8],
                        microbatches: vec![16],
                        schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
                    }),
            )
            .threads(threads)
            .evaluate(&plans);
        assert_eq!(results.len(), fresh.len());
        for (i, (a, b)) in results.iter().zip(&fresh).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "threads={threads} plan {i}"),
                (a, b) => panic!("threads={threads} plan {i}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn op_names_render_todays_exact_strings() {
    // The structured OpName must reproduce the historical string names
    // exactly, on real traces from both engines — plus the serve trace's
    // decode names.
    let dlrm = ModelId::DlrmA.build();
    let dlrm_sys = catalog::zionex_dlrm_system();
    let trace = Scenario::new(&dlrm, &dlrm_sys).build_trace().unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "fwd.embedding_tables.lookup",
        "fwd.embedding_tables.a2a",
        "fwd.bottom_mlp.ag",
        "fwd.bottom_mlp",
        "bwd.top_mlp.ag_bwd",
        "bwd.embedding_tables.a2a_bwd",
        "bwd.embedding_tables.grad_scatter",
        "update.optimizer",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    let llm = ModelId::Gpt3.build();
    let llm_sys = catalog::llama_llm_system();
    let trace = Scenario::new(&llm, &llm_sys).build_trace().unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "fwd[0].transformer_blocks",
        "fwd[95].transformer_blocks.ag",
        "bwd[95].transformer_blocks.rs",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    let plan = Plan::fsdp_baseline(&llm).with_pipeline(PipelineConfig::gpipe(8, 16));
    let trace = Scenario::new(&llm, &llm_sys)
        .plan(plan.clone())
        .build_trace()
        .unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "stage0.param.AllGather",
        "stage0.fwd[0]",
        "stage0.send_act[0]",
        "stage7.bwd[15]",
        "stage1.send_grad[3]",
        "stage0.grad.ReduceScatter",
        "stage0.optimizer",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }

    // Serve traces: flat decode names and pipelined decode-stream names.
    let serve = Workload::serve(ServeConfig::new(512, 2));
    let trace = Scenario::new(&llm, &llm_sys)
        .workload(serve.clone())
        .build_trace()
        .unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in [
        "dec[0].word_embedding.lookup",
        "dec[0][0].transformer_blocks",
        "dec[1][95].transformer_blocks",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
    let trace = Scenario::new(&llm, &llm_sys)
        .workload(serve)
        .plan(plan)
        .build_trace()
        .unwrap();
    let names: Vec<String> = trace.ops().iter().map(|o| o.name.to_string()).collect();
    for expected in ["stage0.dec[0]", "stage7.dec[31]", "stage0.send_tok[31]"] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
}

#[test]
fn unified_error_reports_one_shape_for_both_engines() {
    // Flat OOM and pipeline OOM both surface as EngineError::OutOfMemory;
    // unmappable pipelines surface as InvalidPlan — no more matching on
    // two simulators' error conventions.
    let model = ModelId::Gpt3.build();
    let sys = catalog::llama_llm_system();

    let flat_oom = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_strategy(
            madmax_model::LayerClass::Transformer,
            madmax_parallel::HierStrategy::flat(madmax_parallel::Strategy::Ddp),
        ))
        .run()
        .unwrap_err();
    assert!(flat_oom.is_oom());

    let unmappable = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8)))
        .run()
        .unwrap_err();
    assert!(unmappable.is_unmappable_pipeline());
    assert!(!unmappable.is_oom());
}
