//! Property-based tests of the pipeline-parallelism subsystem: stream
//! exclusivity, the analytic GPipe bubble fraction, the 1F1B-vs-GPipe
//! makespan ordering, and end-to-end pipelined simulation invariants.

use proptest::prelude::*;

use madmax_core::{schedule, IterationReport, StreamId};
use madmax_engine::simulate;
use madmax_hw::units::Seconds;
use madmax_model::ModelId;
use madmax_parallel::{MemoryBreakdown, PipelineConfig, PipelineSchedule, Plan, Workload};
use madmax_pipeline::gpipe_bubble_fraction;
use madmax_pipeline::schedule::{build_pipeline_trace, uniform_costs};

/// Random heterogeneous stage costs: per-stage forward/backward compute and
/// inter-stage transfer durations.
fn heterogeneous_costs(
    p: usize,
    fwd: &[f64],
    bwd: &[f64],
    send: &[f64],
) -> Vec<madmax_pipeline::StageCosts> {
    let mut costs = uniform_costs(p, Seconds::ZERO, Seconds::ZERO, Seconds::ZERO);
    for (s, c) in costs.iter_mut().enumerate() {
        c.fwd_compute = Seconds::new(fwd[s % fwd.len()]);
        c.bwd_compute = Seconds::new(bwd[s % bwd.len()]);
        if s + 1 < p {
            c.send_fwd = Seconds::new(send[s % send.len()]);
        }
        if s > 0 {
            c.send_bwd = Seconds::new(send[(s + 1) % send.len()]);
        }
    }
    costs
}

proptest! {
    // Invariant (a): within every stream of a pipelined trace, scheduled
    // ops never overlap — each stage's compute and comm queues execute
    // strictly in order.
    #[test]
    fn stage_streams_never_overlap_themselves(
        p in 2usize..7,
        m in 1usize..12,
        fwd in prop::collection::vec(0.05f64..4.0, 8),
        bwd in prop::collection::vec(0.05f64..8.0, 8),
        send in prop::collection::vec(0.0f64..0.8, 8),
        schedule_pick in 0usize..2,
    ) {
        let sched_kind = if schedule_pick == 0 {
            PipelineSchedule::GPipe
        } else {
            PipelineSchedule::OneFOneB
        };
        let costs = heterogeneous_costs(p, &fwd, &bwd, &send);
        let cfg = PipelineConfig { stages: p, microbatches: m, schedule: sched_kind };
        let trace = build_pipeline_trace(&costs, &cfg, true);
        let sched = schedule(&trace);

        for s in 0..p as u16 {
            for stream in [
                StreamId::StageCompute(s),
                StreamId::StageComm(s),
                StreamId::StageGradComm(s),
            ] {
                let mut last_finish: Option<Seconds> = None;
                for (id, op) in trace.stream_ops(stream) {
                    let w = sched.windows[id.0];
                    prop_assert!(w.finish >= w.start, "{}: negative window", op.name);
                    if let Some(lf) = last_finish {
                        prop_assert!(
                            w.start >= lf,
                            "{stream:?}: op {} starts {:.6} before predecessor ends {:.6}",
                            op.name, w.start.as_secs(), lf.as_secs()
                        );
                    }
                    last_finish = Some(w.finish);
                }
            }
        }
        // And causality holds across the stage handshakes.
        for (i, op) in trace.ops().iter().enumerate() {
            for d in &op.deps {
                prop_assert!(sched.windows[d.0].finish <= sched.windows[i].start);
            }
        }
    }

    // Invariant (b): for uniform stages and free transfers, the measured
    // GPipe bubble fraction equals the analytic (p-1)/(m+p-1).
    #[test]
    fn gpipe_bubble_matches_analytic_for_uniform_stages(
        p in 2usize..9,
        m in 1usize..33,
        tf in 0.2f64..3.0,
        tb in 0.2f64..6.0,
    ) {
        let costs = uniform_costs(p, Seconds::new(tf), Seconds::new(tb), Seconds::ZERO);
        let cfg = PipelineConfig::gpipe(p, m);
        let trace = build_pipeline_trace(&costs, &cfg, true);
        let sched = schedule(&trace);
        let model = ModelId::DlrmB.build();
        let report =
            IterationReport::from_schedule(&trace, &sched, &model, MemoryBreakdown::default());
        let measured = report.bubble_fraction.expect("pipelined trace reports bubble");
        let analytic = gpipe_bubble_fraction(p, m);
        prop_assert!(
            (measured - analytic).abs() < 1e-6,
            "p={p} m={m}: measured {measured} vs analytic {analytic}"
        );
    }

    // Invariant (c): 1F1B never finishes later than GPipe for the same
    // (p, m) — it reorders the same work. Exact in the analytic setting
    // (balanced stages, free transfers), the same regime as invariant (b).
    #[test]
    fn one_f_one_b_makespan_at_most_gpipe(
        p in 2usize..9,
        m in 1usize..20,
        tf in 0.1f64..4.0,
        tb in 0.1f64..8.0,
    ) {
        let costs = uniform_costs(p, Seconds::new(tf), Seconds::new(tb), Seconds::ZERO);
        let gpipe = schedule(&build_pipeline_trace(
            &costs,
            &PipelineConfig::gpipe(p, m),
            true,
        ))
        .makespan;
        let one_f_one_b = schedule(&build_pipeline_trace(
            &costs,
            &PipelineConfig::one_f_one_b(p, m),
            true,
        ))
        .makespan;
        prop_assert!(
            one_f_one_b <= gpipe + Seconds::new(1e-9),
            "p={p} m={m}: 1F1B {:.6} > GPipe {:.6}",
            one_f_one_b.as_secs(),
            gpipe.as_secs()
        );
    }

    // In the realistic regime — near-balanced stages (the DP partitioner's
    // output) and transfers much cheaper than compute — 1F1B tracks GPipe's
    // makespan to within a few percent. Its strict 1B1F alternation places
    // one P2P round trip on the steady-state critical path, so it is not
    // *exactly* at-most-GPipe once transfers cost anything; the payoff is
    // the p/m-fold activation-memory reduction checked in madmax-pipeline's
    // memory tests.
    #[test]
    fn one_f_one_b_tracks_gpipe_with_realistic_transfers(
        p in 2usize..7,
        m in 1usize..16,
        fwd in prop::collection::vec(0.9f64..1.1, 8),
        bwd in prop::collection::vec(1.8f64..2.2, 8),
        send in prop::collection::vec(0.0f64..0.05, 8),
    ) {
        let costs = heterogeneous_costs(p, &fwd, &bwd, &send);
        let gpipe = schedule(&build_pipeline_trace(
            &costs,
            &PipelineConfig::gpipe(p, m),
            true,
        ))
        .makespan;
        let one_f_one_b = schedule(&build_pipeline_trace(
            &costs,
            &PipelineConfig::one_f_one_b(p, m),
            true,
        ))
        .makespan;
        prop_assert!(
            one_f_one_b.as_secs() <= gpipe.as_secs() * 1.05,
            "p={p} m={m}: 1F1B {:.6} strays >5% past GPipe {:.6}",
            one_f_one_b.as_secs(),
            gpipe.as_secs()
        );
    }

    // End-to-end: a pipelined LLM simulation is self-consistent for any
    // valid (p, m, schedule) drawn from the real system's divisors.
    #[test]
    fn pipelined_simulation_invariants(
        p_pick in 0usize..3,
        m in 2usize..17,
        schedule_pick in 0usize..2,
    ) {
        let p = [2usize, 4, 8][p_pick];
        let sched_kind = if schedule_pick == 0 {
            PipelineSchedule::GPipe
        } else {
            PipelineSchedule::OneFOneB
        };
        let model = ModelId::Llama2.build();
        let sys = madmax_hw::catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
            stages: p,
            microbatches: m,
            schedule: sched_kind,
        });
        let r = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
        let bubble = r.bubble_fraction.expect("bubble reported");
        prop_assert!((0.0..1.0).contains(&bubble), "bubble {bubble}");
        // The fill/drain overhead can never beat the analytic floor.
        prop_assert!(
            bubble >= gpipe_bubble_fraction(p, m) - 1e-9,
            "p={p} m={m}: bubble {bubble} below analytic floor {}",
            gpipe_bubble_fraction(p, m)
        );
        prop_assert!(r.serialized_time >= r.iteration_time);
        prop_assert!(r.iteration_time.as_secs() > 0.0);
        prop_assert!(r.tokens_per_sec() > 0.0);
    }
}

#[test]
fn joint_pipeline_search_beats_flat_baseline_for_deep_llm() {
    // The ISSUE's acceptance criterion: the joint (pp, microbatch, schedule)
    // search must find a pipelined plan whose makespan beats the pp=1
    // baseline for a deep LLM workload on a network-constrained system.
    use madmax_dse::{Explorer, SearchSpace};
    use madmax_hw::DeviceScaling;

    let model = ModelId::Gpt3.build();
    let sys =
        madmax_hw::catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
    let mut space = SearchSpace::pipeline_for(&sys);
    space.pipeline.as_mut().unwrap().microbatches = vec![8, 16, 32];
    let r = Explorer::new(&model, &sys).space(space).explore().unwrap();
    assert!(r.pipeline_won(), "winner: {}", r.best_plan.summary());
    assert!(
        r.best.iteration_time < r.baseline.iteration_time,
        "pipelined best {:.3}s vs baseline {:.3}s",
        r.best.iteration_time.as_secs(),
        r.baseline.iteration_time.as_secs()
    );
    assert!(r.speedup() > 1.05, "speedup {:.3}", r.speedup());
    let bubble = r
        .best
        .bubble_fraction
        .expect("pipelined winner reports bubble");
    assert!(bubble < 0.5, "winning bubble {bubble}");
}
