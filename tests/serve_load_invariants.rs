//! Property-based invariants of the continuous-batching load simulator
//! (`madmax-serve`), over randomized Poisson request streams:
//!
//! - **Request conservation**: at the horizon every arrival is in
//!   exactly one terminal bucket — completed, rejected, still queued, or
//!   still in flight — and the output-token ledger matches the
//!   per-request records;
//! - **TTFT lower bound**: no request sees its first token earlier than
//!   its own prefill latency as priced by the [`StepCostModel`]
//!   (queueing and batching can only add to it);
//! - **Rate monotonicity** (single decode slot): with one in-flight
//!   slot the simulator is a FIFO single server, so compressing the
//!   same seeded arrival sequence to a higher rate can only push TTFT
//!   percentiles up;
//! - **Mode equivalence**: the event-driven series-jump mode produces a
//!   [`LoadReport`] and per-request records byte-identical to the naive
//!   per-token reference — the speedup is purely wall-clock.
//!
//! [`StepCostModel`]: madmax_serve::StepCostModel
//! [`LoadReport`]: madmax_serve::LoadReport

use proptest::prelude::*;

use madmax_engine::{Scenario, SimMode};
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_parallel::{LoadSpec, ServeConfig, Workload};
use madmax_serve::{LoadOutcome, StepCostModel};

/// A randomized but always-valid Poisson load spec: `paged = 0` leaves
/// the KV budget unbounded, anything else pages it down to a tight
/// evictable budget.
fn spec_of(rate: f64, count: usize, seed: u64, paged: usize) -> LoadSpec {
    let spec = LoadSpec::poisson(rate, count, seed);
    if paged > 0 {
        spec.with_kv_blocks(96 * paged as u64).with_eviction(true)
    } else {
        spec
    }
}

/// Prices `spec` once and simulates it in `mode`; pricing is the
/// expensive part, so callers reuse the returned model across modes.
fn run(spec: &LoadSpec, serve: ServeConfig, mode: SimMode) -> (LoadOutcome, StepCostModel) {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys).workload(Workload::serve(serve));
    let costs = scenario.price_load(spec).unwrap();
    let outcome = scenario
        .serve_load_priced(spec, &costs, mode, None)
        .unwrap();
    (outcome, costs)
}

proptest! {
    /// Every arrival lands in exactly one terminal bucket, and the
    /// aggregate token/eviction ledgers match the per-request records.
    #[test]
    fn requests_are_conserved(
        rate in 0.01f64..0.5,
        count in 3usize..14,
        seed in 0u64..u64::MAX,
        prompt in 32usize..384,
        decode in 4usize..32,
        batch in 1usize..6,
        paged in 0usize..3,
    ) {
        let spec = spec_of(rate, count, seed, paged);
        let serve = ServeConfig::new(prompt, decode).with_decode_batch(batch);
        let (outcome, _) = run(&spec, serve, SimMode::Event);
        let r = &outcome.report;
        prop_assert_eq!(r.arrivals, spec.arrivals.count());
        prop_assert_eq!(
            r.completed + r.rejected + r.queued_at_end + r.in_flight_at_end,
            r.arrivals,
            "terminal buckets must partition the {} arrivals",
            r.arrivals
        );
        prop_assert_eq!(r.requests.len(), r.arrivals);
        let completed = r.requests.iter().filter(|q| q.completed).count();
        let rejected = r.requests.iter().filter(|q| q.rejected).count();
        prop_assert_eq!(completed, r.completed);
        prop_assert_eq!(rejected, r.rejected);
        let tokens: u64 = r.requests.iter().map(|q| q.output_tokens).sum();
        prop_assert_eq!(tokens, r.output_tokens);
        let evictions: u64 = r.requests.iter().map(|q| u64::from(q.evictions)).sum();
        prop_assert_eq!(evictions, r.evictions);
    }

    /// TTFT is bounded below by the request's own priced prefill
    /// latency: admission queueing and in-flight batching only delay
    /// the first token, never accelerate it.
    #[test]
    fn ttft_never_beats_the_prefill(
        rate in 0.01f64..0.5,
        count in 3usize..14,
        seed in 0u64..u64::MAX,
        prompt in 32usize..384,
        decode in 4usize..32,
        batch in 1usize..6,
        paged in 0usize..3,
    ) {
        let spec = spec_of(rate, count, seed, paged);
        let serve = ServeConfig::new(prompt, decode).with_decode_batch(batch);
        let (outcome, costs) = run(&spec, serve, SimMode::Event);
        for rec in &outcome.trace.records {
            let Some(first_token) = rec.first_token else { continue };
            let prefill = costs.prefill_units(rec.prompt_len as u64).unwrap();
            prop_assert!(
                first_token - rec.arrival >= prefill,
                "request {}: TTFT {} < prefill {} grid units",
                rec.id,
                first_token - rec.arrival,
                prefill
            );
        }
    }

    /// With a single decode slot the simulator degenerates to a FIFO
    /// single server over fixed service demands, so re-running the same
    /// seeded arrival sequence compressed to a strictly higher rate can
    /// only raise the TTFT percentiles. (Wider decode batches reorder
    /// work across slots, where this pointwise argument no longer
    /// holds — the bound is decode_batch = 1 by design.)
    #[test]
    fn ttft_percentiles_are_monotone_in_rate(
        rate_lo in 0.005f64..0.05,
        factor in 4.0f64..64.0,
        count in 4usize..12,
        seed in 0u64..u64::MAX,
        prompt in 32usize..256,
        decode in 4usize..24,
    ) {
        let serve = ServeConfig::new(prompt, decode).with_decode_batch(1);
        let lo_spec = LoadSpec::poisson(rate_lo, count, seed);
        let hi_spec = LoadSpec::poisson(rate_lo * factor, count, seed);
        let (lo, _) = run(&lo_spec, serve, SimMode::Event);
        let (hi, _) = run(&hi_spec, serve, SimMode::Event);
        // A horizonless Poisson run admits every request, so both sides
        // must have produced first tokens.
        prop_assert!(lo.report.ttft.is_some() && hi.report.ttft.is_some());
        let (lo, hi) = (lo.report.ttft.unwrap(), hi.report.ttft.unwrap());
        prop_assert_eq!(lo.count, hi.count);
        // Grid rounding of the scaled arrival times can move a sample
        // by a unit (~4 ps); queueing deltas dominate by orders of
        // magnitude, so compare with a hair of slack.
        const SLACK: f64 = 1e-9;
        for (name, l, h) in [
            ("p50", lo.p50, hi.p50),
            ("p95", lo.p95, hi.p95),
            ("p99", lo.p99, hi.p99),
            ("mean", lo.mean, hi.mean),
            ("max", lo.max, hi.max),
        ] {
            prop_assert!(
                h.as_secs() + SLACK >= l.as_secs(),
                "TTFT {} fell from {:.6}s to {:.6}s as the rate rose",
                name,
                l.as_secs(),
                h.as_secs()
            );
        }
    }

    /// The event-driven mode (closed-form series jumps between events)
    /// is a pure wall-clock optimization: its report and per-request
    /// records are byte-identical to the naive per-token reference.
    #[test]
    fn event_mode_matches_per_token_reference(
        rate in 0.01f64..0.5,
        count in 3usize..14,
        seed in 0u64..u64::MAX,
        prompt in 32usize..384,
        decode in 4usize..32,
        batch in 1usize..6,
        paged in 0usize..3,
    ) {
        let spec = spec_of(rate, count, seed, paged);
        let serve = ServeConfig::new(prompt, decode).with_decode_batch(batch);
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let scenario = Scenario::new(&model, &sys).workload(Workload::serve(serve));
        let costs = scenario.price_load(&spec).unwrap();
        let event = scenario
            .serve_load_priced(&spec, &costs, SimMode::Event, None)
            .unwrap();
        let naive = scenario
            .serve_load_priced(&spec, &costs, SimMode::PerToken, None)
            .unwrap();
        prop_assert_eq!(&event.report, &naive.report);
        prop_assert_eq!(&event.trace.records, &naive.trace.records);
    }
}
