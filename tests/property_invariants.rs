//! Property-based tests (proptest) on the core data structures and model
//! invariants: units arithmetic, collective cost monotonicity, sharding
//! math, Pareto frontier correctness, and simulator causality.

use proptest::prelude::*;

use madmax_core::{schedule, CollectiveModel, FlatWorstLink, HierarchicalNccl};
use madmax_core::{OpKind, Phase, StreamId, Trace, TraceOp};
use madmax_dse::{pareto_frontier, ParetoPoint};
use madmax_hw::units::{ByteCount, BytesPerSec, Seconds};
use madmax_hw::{catalog, CommLevel};
use madmax_model::LayerClass;
use madmax_parallel::comm::CommPosition;
use madmax_parallel::{
    CollectiveKind, CommReq, CommScope, HierStrategy, Strategy as PStrategy, Urgency,
};

fn any_collective() -> impl Strategy<Value = CollectiveKind> {
    prop_oneof![
        Just(CollectiveKind::AllReduce),
        Just(CollectiveKind::AllGather),
        Just(CollectiveKind::ReduceScatter),
        Just(CollectiveKind::AllToAll),
    ]
}

fn any_scope() -> impl Strategy<Value = CommScope> {
    prop_oneof![
        Just(CommScope::Global),
        Just(CommScope::Level(CommLevel::IntraNode)),
        Just(CommScope::Level(CommLevel::InterNode)),
    ]
}

fn req(kind: CollectiveKind, scope: CommScope, group: usize, bytes: f64) -> CommReq {
    CommReq {
        collective: kind,
        scope,
        group_size: group,
        payload: ByteCount::new(bytes),
        urgency: Urgency::Blocking,
        position: CommPosition::AfterCompute,
        label: "prop".to_owned(),
    }
}

proptest! {
    #[test]
    fn units_division_matches_f64(bytes in 1.0f64..1e13, bw in 1e6f64..1e13) {
        let t = ByteCount::new(bytes) / BytesPerSec::new(bw);
        prop_assert!((t.as_secs() - bytes / bw).abs() <= 1e-12 * (bytes / bw));
    }

    #[test]
    fn seconds_ordering_is_consistent(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (sa, sb) = (Seconds::new(a), Seconds::new(b));
        prop_assert_eq!(sa < sb, a < b);
        prop_assert_eq!(sa.max(sb).as_secs(), a.max(b));
        prop_assert!(((sa + sb).as_secs() - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn collective_cost_monotone_in_payload(
        kind in any_collective(),
        scope in any_scope(),
        group in 2usize..256,
        s1 in 1.0f64..1e9,
        s2 in 1.0f64..1e9,
    ) {
        let sys = catalog::zionex_dlrm_system();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        for model in [&HierarchicalNccl as &dyn CollectiveModel, &FlatWorstLink] {
            let t_lo = model.time(&req(kind, scope, group, lo), &sys);
            let t_hi = model.time(&req(kind, scope, group, hi), &sys);
            prop_assert!(t_lo <= t_hi, "{}: payload monotonicity", model.name());
        }
    }

    #[test]
    fn hierarchical_never_slower_than_flat_worst_link(
        kind in any_collective(),
        group in 2usize..256,
        bytes in 1.0f64..1e9,
    ) {
        // On a multi-node system the hierarchical decomposition can only
        // help (it routes part of the traffic over NVLink).
        let sys = catalog::zionex_dlrm_system();
        let r = req(kind, CommScope::Global, group, bytes);
        let hier = HierarchicalNccl.time(&r, &sys);
        let flat = FlatWorstLink.time(&r, &sys);
        prop_assert!(hier <= flat + Seconds::new(1e-12));
    }

    #[test]
    fn allreduce_costs_twice_allgather(
        scope in any_scope(),
        group in 2usize..256,
        bytes in 1.0f64..1e9,
    ) {
        let sys = catalog::zionex_dlrm_system();
        let ar = HierarchicalNccl.time(&req(CollectiveKind::AllReduce, scope, group, bytes), &sys);
        let ag = HierarchicalNccl.time(&req(CollectiveKind::AllGather, scope, group, bytes), &sys);
        prop_assert!((ar.as_secs() / ag.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shard_factor_is_product_of_sharding_levels(
        intra_idx in 0usize..4,
        inter_idx in 0usize..4,
    ) {
        const S: [PStrategy; 4] = [PStrategy::Ddp, PStrategy::Fsdp, PStrategy::Tp, PStrategy::Shard];
        let sys = catalog::zionex_dlrm_system();
        let (intra, inter) = (S[intra_idx], S[inter_idx]);
        let h = HierStrategy::two_level(intra, inter);
        let mut expect = 1.0;
        if intra.shards_params() { expect *= 8.0; }
        if inter.shards_params() { expect *= 16.0; }
        prop_assert_eq!(h.param_shard_factor(&sys), expect);
        // Flat strategies shard by the whole machine or not at all.
        let f = HierStrategy::flat(intra);
        let flat_expect = if intra.shards_params() { 128.0 } else { 1.0 };
        prop_assert_eq!(f.param_shard_factor(&sys), flat_expect);
    }

    #[test]
    fn pareto_frontier_is_sound_and_complete(
        points in prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..60)
    ) {
        let pts: Vec<ParetoPoint<usize>> = points
            .iter()
            .enumerate()
            .map(|(i, &(c, v))| ParetoPoint::new(c, v, i))
            .collect();
        let frontier = pareto_frontier(&pts);
        prop_assert!(!frontier.is_empty());
        // Sound: no frontier point dominates another frontier point.
        for a in &frontier {
            for b in &frontier {
                if a.payload != b.payload {
                    prop_assert!(!a.dominates(b), "frontier contains dominated point");
                }
            }
        }
        // Complete: every input point is dominated by or equal to some
        // frontier point.
        for p in &pts {
            let covered = frontier.iter().any(|f| {
                f.dominates(p) || (f.cost == p.cost && f.value == p.value)
            });
            prop_assert!(covered);
        }
        // Frontier is sorted by cost with strictly increasing value.
        for w in frontier.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost);
            prop_assert!(w[0].value < w[1].value);
        }
    }

    #[test]
    fn scheduler_is_causal_and_work_conserving(
        durations in prop::collection::vec(0.0f64..10.0, 1..40),
        // Stream assignment and sparse dependencies derived from the data.
        streams in prop::collection::vec(0u8..3, 40),
        dep_gaps in prop::collection::vec(1usize..5, 40),
    ) {
        let mut trace = Trace::new();
        for (i, &d) in durations.iter().enumerate() {
            let stream = match streams[i % streams.len()] % 3 {
                0 => StreamId::Compute,
                1 => StreamId::Comm,
                _ => StreamId::GradComm,
            };
            let deps = if i == 0 {
                vec![]
            } else {
                let gap = dep_gaps[i % dep_gaps.len()];
                if gap <= i { vec![madmax_core::OpId(i - gap)] } else { vec![] }
            };
            trace.push(TraceOp {
                name: format!("op{i}").into(),
                stream,
                kind: OpKind::Gemm { class: LayerClass::Dense },
                phase: Phase::Forward,
                duration: Seconds::new(d),
                deps: deps.into(),
            });
        }
        let sched = schedule(&trace);
        // Causality: deps finish before dependents start.
        for (i, op) in trace.ops().iter().enumerate() {
            for d in &op.deps {
                prop_assert!(sched.windows[d.0].finish <= sched.windows[i].start);
            }
        }
        // Makespan bounds: at least the longest op and per-stream sums; at
        // most the serialized total.
        let serialized = trace.serialized_time();
        prop_assert!(sched.makespan <= serialized + Seconds::new(1e-9));
        for stream in [StreamId::Compute, StreamId::Comm, StreamId::GradComm] {
            let stream_sum: Seconds =
                trace.stream_ops(stream).map(|(_, o)| o.duration).sum();
            prop_assert!(sched.makespan + Seconds::new(1e-9) >= stream_sum);
        }
    }

    // The dense stream-slot scheduler must agree exactly with a reference
    // ordered-map implementation on randomized multi-stream traces that
    // mix the flat streams with several pipeline stages' stream triples.
    #[test]
    fn dense_stream_scheduler_matches_btreemap_reference(
        durations in prop::collection::vec(0.0f64..10.0, 1..60),
        streams in prop::collection::vec(0u8..9, 60),
        dep_gaps in prop::collection::vec(1usize..6, 60),
    ) {
        let mut trace = Trace::new();
        for (i, &d) in durations.iter().enumerate() {
            let stream = match streams[i % streams.len()] % 9 {
                0 => StreamId::Compute,
                1 => StreamId::Comm,
                2 => StreamId::GradComm,
                3 => StreamId::StageCompute(0),
                4 => StreamId::StageComm(0),
                5 => StreamId::StageGradComm(0),
                6 => StreamId::StageCompute(1),
                7 => StreamId::StageComm(1),
                _ => StreamId::StageGradComm(2),
            };
            let gap = dep_gaps[i % dep_gaps.len()];
            let deps = if gap <= i { vec![madmax_core::OpId(i - gap)] } else { vec![] };
            trace.push(TraceOp {
                name: format!("op{i}").into(),
                stream,
                kind: OpKind::Gemm { class: LayerClass::Dense },
                phase: Phase::Forward,
                duration: Seconds::new(d),
                deps: deps.into(),
            });
        }

        // Reference list scheduler keyed by an ordered map, exactly the
        // pre-dense-table implementation.
        let mut stream_avail: std::collections::BTreeMap<StreamId, Seconds> =
            std::collections::BTreeMap::new();
        let mut ref_windows: Vec<(Seconds, Seconds)> = Vec::with_capacity(trace.len());
        let mut ref_makespan = Seconds::ZERO;
        for op in trace.ops() {
            let avail = stream_avail.get(&op.stream).copied().unwrap_or(Seconds::ZERO);
            let deps_done = op
                .deps
                .iter()
                .map(|d| ref_windows[d.0].1)
                .fold(Seconds::ZERO, Seconds::max);
            let start = avail.max(deps_done);
            let finish = start + op.duration;
            stream_avail.insert(op.stream, finish);
            ref_makespan = ref_makespan.max(finish);
            ref_windows.push((start, finish));
        }

        let sched = schedule(&trace);
        prop_assert_eq!(sched.makespan, ref_makespan);
        prop_assert_eq!(sched.windows.len(), ref_windows.len());
        for (w, (start, finish)) in sched.windows.iter().zip(&ref_windows) {
            prop_assert_eq!(w.start, *start);
            prop_assert_eq!(w.finish, *finish);
        }
    }

    #[test]
    fn memory_model_monotone_in_shard_factor(nodes in 2usize..64) {
        // More sharding never increases the parameter footprint.
        use madmax_parallel::{memory_per_device, Plan, Workload};
        let model = madmax_model::ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system().with_num_nodes(nodes);
        let fsdp = Plan::fsdp_baseline(&model);
        let ddp = fsdp.clone().with_strategy(
            LayerClass::Dense,
            HierStrategy::flat(PStrategy::Ddp),
        );
        let m_fsdp = memory_per_device(&model, &sys, &fsdp, &Workload::pretrain());
        let m_ddp = memory_per_device(&model, &sys, &ddp, &Workload::pretrain());
        prop_assert!(m_fsdp.params <= m_ddp.params);
        prop_assert!(m_fsdp.optimizer <= m_ddp.optimizer);
    }
}
