//! Cross-crate end-to-end tests: JSON config round trips driving the full
//! pipeline, determinism, and consistency between the simulator's views.

use madmax_core::config::{ExperimentSpec, SimulationConfig};
use madmax_core::StreamId;
use madmax_engine::{simulate, Scenario};
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{HierStrategy, Plan, Strategy, Workload};

#[test]
fn json_round_trip_preserves_simulation_results() {
    for id in [ModelId::DlrmA, ModelId::Gpt3, ModelId::LlmMoe] {
        let model = id.build();
        let system = if id.is_dlrm() {
            catalog::zionex_dlrm_system()
        } else {
            catalog::llama_llm_system()
        };
        let plan = Plan::fsdp_baseline(&model);
        let direct = simulate(&model, &system, &plan, Workload::pretrain()).unwrap();

        let cfg = SimulationConfig {
            model,
            system,
            experiment: ExperimentSpec {
                workload: Workload::pretrain(),
                plan,
            },
        };
        let json = cfg.to_json().unwrap();
        let loaded = SimulationConfig::from_json(&json).unwrap();
        let reloaded = simulate(
            &loaded.model,
            &loaded.system,
            &loaded.experiment.plan,
            loaded.experiment.workload,
        )
        .unwrap();
        assert_eq!(direct, reloaded, "{id}: config round trip changed results");
    }
}

#[test]
fn simulation_is_deterministic() {
    let model = ModelId::DlrmATransformer.build();
    let sys = catalog::zionex_dlrm_system();
    let plan = Plan::fsdp_baseline(&model);
    let a = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
    let b = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn schedule_respects_dependencies_and_stream_order() {
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let plan = Plan::fsdp_baseline(&model);
    let (_, trace, sched) = Scenario::new(&model, &sys)
        .plan(plan)
        .run_with_trace()
        .unwrap();

    // Every dependency finishes before its dependent starts.
    for (i, op) in trace.ops().iter().enumerate() {
        for dep in &op.deps {
            assert!(
                sched.windows[dep.0].finish <= sched.windows[i].start,
                "{} starts before {} finishes",
                op.name,
                trace.ops()[dep.0].name
            );
        }
        // Durations are non-negative and windows are consistent.
        assert!(sched.windows[i].finish >= sched.windows[i].start);
    }

    // Within each stream, ops run in issue order without overlap.
    for stream in [StreamId::Compute, StreamId::Comm, StreamId::GradComm] {
        let mut last_finish = None;
        for (id, _) in trace.stream_ops(stream) {
            let w = sched.windows[id.0];
            if let Some(lf) = last_finish {
                assert!(w.start >= lf, "stream {stream:?} overlaps itself");
            }
            last_finish = Some(w.finish);
        }
    }
}

#[test]
fn accounting_identities_hold_across_suite() {
    for id in ModelId::ALL {
        let model = id.build();
        let sys = if id.is_dlrm() {
            catalog::zionex_dlrm_system()
        } else {
            catalog::llama_llm_system()
        };
        let plan = Plan::fsdp_baseline(&model);
        for task in [Workload::pretrain(), Workload::inference()] {
            let r = simulate(&model, &sys, &plan, task).unwrap();
            // Serialized >= overlapped; exposed <= total comm; category sums
            // match totals.
            assert!(r.serialized_time >= r.iteration_time, "{id}");
            assert!(
                r.exposed_comm <= r.comm_time + madmax_hw::Seconds::from_us(1.0),
                "{id}"
            );
            let comm_sum: madmax_hw::Seconds = r.comm_by_collective.values().copied().sum();
            assert!(
                (comm_sum.as_secs() - r.comm_time.as_secs()).abs() < 1e-9,
                "{id}"
            );
            let serial_sum = r.compute_time() + r.comm_time;
            assert!(
                (serial_sum.as_secs() - r.serialized_time.as_secs()).abs() < 1e-9,
                "{id}: {} vs {}",
                serial_sum,
                r.serialized_time
            );
            assert!(r.samples_per_sec() > 0.0);
        }
    }
}

#[test]
fn more_nodes_increase_throughput_but_sublinearly_for_dlrm() {
    let model = ModelId::DlrmA.build();
    let mut throughputs = Vec::new();
    for nodes in [4usize, 8, 16] {
        let sys = catalog::zionex_dlrm_system().with_num_nodes(nodes);
        let mut scaled = model.clone();
        scaled.global_batch = 512 * sys.total_devices();
        let mut plan = Plan::fsdp_baseline(&scaled);
        plan.options.ignore_memory_limits = true; // isolate network scaling
        let r = simulate(&scaled, &sys, &plan, Workload::pretrain()).unwrap();
        throughputs.push(r.samples_per_sec());
    }
    assert!(throughputs[1] > throughputs[0]);
    assert!(throughputs[2] > throughputs[1]);
    // Scaling efficiency below 100%: All2All spans slower links as nodes
    // grow.
    let eff = throughputs[2] / throughputs[0] / 4.0;
    assert!(eff < 1.0, "efficiency {eff:.2}");
}

#[test]
fn collective_dtype_halves_fsdp_traffic() {
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let mut plan = Plan::fsdp_baseline(&model);
    plan.options.collective_dtype = madmax_hw::DType::Bf16;
    let bf16 = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
    plan.options.collective_dtype = madmax_hw::DType::Fp32;
    let fp32 = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
    // FSDP AllGather/ReduceScatter payloads double at fp32 on the wire;
    // All2All (activation) payloads are unchanged.
    let ag16 = bf16.comm_by_collective[&madmax_parallel::CollectiveKind::AllGather];
    let ag32 = fp32.comm_by_collective[&madmax_parallel::CollectiveKind::AllGather];
    assert!((ag32.as_secs() / ag16.as_secs() - 2.0).abs() < 0.01);
    let a2a16 = bf16.comm_by_collective[&madmax_parallel::CollectiveKind::AllToAll];
    let a2a32 = fp32.comm_by_collective[&madmax_parallel::CollectiveKind::AllToAll];
    assert!((a2a32.as_secs() - a2a16.as_secs()).abs() < 1e-12);
}

#[test]
fn single_node_dlrm_has_no_internode_bottleneck() {
    let model = ModelId::DlrmB.build();
    let one = catalog::zionex_dlrm_system().with_num_nodes(1);
    let sixteen = catalog::zionex_dlrm_system();
    let mut m1 = model.clone();
    m1.global_batch = 2048 * 8;
    let mut plan = Plan::fsdp_baseline(&m1);
    plan.options.ignore_memory_limits = true;
    let r1 = simulate(&m1, &one, &plan, Workload::pretrain()).unwrap();
    let r16 = simulate(
        &model,
        &sixteen,
        &Plan::fsdp_baseline(&model),
        Workload::pretrain(),
    )
    .unwrap();
    // Same per-device batch, but the single node exchanges embeddings over
    // NVLink only: faster per-iteration comm.
    assert!(r1.comm_time < r16.comm_time);
}

#[test]
fn moe_expert_parallelism_creates_blocking_a2a() {
    let model = ModelId::LlmMoe.build();
    let sys = catalog::llama_llm_system();
    let plan = Plan::fsdp_baseline(&model)
        .with_strategy(LayerClass::Moe, HierStrategy::flat(Strategy::Shard));
    let r = simulate(&model, &sys, &plan, Workload::pretrain()).unwrap();
    let a2a = r.comm_by_collective[&madmax_parallel::CollectiveKind::AllToAll];
    assert!(a2a.as_secs() > 0.0);
    // MoE A2A is on the critical path: some of it must be exposed.
    let exposed_a2a = r.exposed_by_collective[&madmax_parallel::CollectiveKind::AllToAll];
    assert!(exposed_a2a.as_secs() > 0.0);
}
