//! Schedule-integrity invariants over the verification corpus.
//!
//! Every scenario of [`madmax_bench::verify_corpus`] — the model zoo,
//! GPipe/1F1B training pipelines, inference, fine-tuning, flat and
//! pipelined serving, and the obs golden-trace scenarios — must pass the
//! full `madmax-verify` rule set with zero errors, and the critical-path
//! lower bound must never exceed the scheduled makespan. Conversely,
//! seeded random corruptions of those same traces and schedules (dropped
//! dependencies, swapped stream windows, negated durations, reordered
//! decode steps) must each be flagged with the expected rule.

use madmax_bench::{verify_corpus, VerifyScenario};
use madmax_core::{Deps, OpId, OpName, PassDir, Schedule, Trace, TraceOp};
use madmax_engine::Scenario;
use madmax_verify::{RuleId, Verifier};

/// Tiny xorshift generator so the "random" corruption targets are
/// reproducible across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A pseudo-random index into `0..n`.
    fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice set");
        (self.next() % n as u64) as usize
    }
}

fn scenario(name: &str) -> VerifyScenario {
    verify_corpus()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name} missing from the corpus"))
}

fn run(sc: &VerifyScenario) -> (Trace, Schedule) {
    let (_, trace, sched) = Scenario::new(&sc.model, &sc.system)
        .plan(sc.plan.clone())
        .workload(sc.workload.clone())
        .run_with_trace()
        .expect("corpus scenario must be feasible");
    (trace, sched)
}

fn verifier(sc: &VerifyScenario) -> Verifier {
    Verifier::for_plan(&sc.plan, &sc.workload)
}

/// Rebuilds a trace with a per-op mutation applied (the op arena has no
/// mutable accessor, by design).
fn rebuild(trace: &Trace, mut f: impl FnMut(usize, &mut TraceOp)) -> Trace {
    let mut out = Trace::new();
    for (i, op) in trace.ops().iter().enumerate() {
        let mut op = op.clone();
        f(i, &mut op);
        out.push(op);
    }
    out
}

fn drop_deps(op: &mut TraceOp, drop: impl Fn(OpId) -> bool) {
    let kept: Vec<OpId> = op.deps.iter().copied().filter(|&d| !drop(d)).collect();
    op.deps = Deps::from(kept);
}

#[test]
fn corpus_is_diagnostic_clean_and_critical_path_bounds_makespan() {
    for sc in verify_corpus() {
        let (trace, sched) = run(&sc);
        let report = verifier(&sc).verify(&trace, &sched);
        assert_eq!(
            report.error_count(),
            0,
            "{}: engine schedule drew errors:\n{report}",
            sc.name
        );
        let cp = report
            .critical_path
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no critical path computed", sc.name));
        let makespan = sched.makespan.as_secs();
        assert!(
            cp.lower_bound.as_secs() <= makespan + 1e-9 * makespan.max(1.0),
            "{}: critical path {} exceeds makespan {}",
            sc.name,
            cp.lower_bound,
            sched.makespan
        );
        assert!(cp.ops >= 1, "{}: empty critical path", sc.name);
    }
}

#[test]
fn dropped_pipeline_handoff_dep_is_flagged() {
    let sc = scenario("golden/pipeline-1f1b");
    let (trace, _) = run(&sc);
    let targets: Vec<usize> = trace
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, o)| {
            matches!(
                o.name,
                OpName::StagePass {
                    stage: 1..,
                    dir: PassDir::Fwd,
                    ..
                }
            )
        })
        .map(|(i, _)| i)
        .collect();
    assert!(!targets.is_empty(), "no downstream-stage forward passes");

    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for _ in 0..3 {
        let victim = targets[rng.pick(targets.len())];
        let corrupt = rebuild(&trace, |i, op| {
            if i == victim {
                // Sever the activation handoff from the previous stage.
                drop_deps(op, |d| {
                    matches!(trace.ops()[d.0].name, OpName::StageSendAct { .. })
                });
            }
        });
        let report = verifier(&sc).verify_trace(&corrupt);
        assert!(
            report.has(RuleId::StageAdjacency),
            "dropped handoff on op {victim} not flagged:\n{report}"
        );
    }
}

#[test]
fn dropped_decode_chain_dep_is_flagged() {
    let sc = scenario("serve/flat-llama2");
    let (trace, _) = run(&sc);
    let max_step = trace
        .ops()
        .iter()
        .filter_map(|o| match o.name {
            OpName::DecodeFlat { step, .. } => Some(step),
            _ => None,
        })
        .max()
        .expect("flat serve trace has decode steps");
    assert!(max_step >= 1, "need at least two decode steps");

    let mut rng = Rng(0x853c_49e6_748f_ea9b);
    for _ in 0..3 {
        let t = 1 + rng.pick(max_step as usize) as u32;
        // Sever every link from step t back to step t - 1.
        let corrupt = rebuild(&trace, |_, op| {
            if matches!(op.name, OpName::DecodeFlat { step, .. } if step == t) {
                drop_deps(op, |d| {
                    matches!(trace.ops()[d.0].name,
                        OpName::DecodeFlat { step, .. } if step + 1 == t)
                });
            }
        });
        let report = verifier(&sc).verify_trace(&corrupt);
        assert!(
            report.has(RuleId::DecodeChain),
            "unchained decode step {t} not flagged:\n{report}"
        );
    }
}

#[test]
fn swapped_same_stream_windows_are_flagged() {
    let sc = scenario("golden/flat");
    let (trace, sched) = run(&sc);
    // Dependent pairs on one stream whose windows are strictly ordered:
    // swapping their windows reverses the dependency in time.
    let pairs: Vec<(usize, usize)> = trace
        .ops()
        .iter()
        .enumerate()
        .flat_map(|(j, op)| op.deps.iter().map(move |d| (d.0, j)).collect::<Vec<_>>())
        .filter(|&(i, j)| {
            trace.ops()[i].stream == trace.ops()[j].stream
                && trace.ops()[i].duration.as_secs() > 0.0
                && sched.windows[j].start >= sched.windows[i].finish
        })
        .collect();
    assert!(!pairs.is_empty(), "no same-stream dependent pairs");

    let mut rng = Rng(0xda94_2042_e4dd_58b5);
    for _ in 0..3 {
        let (i, j) = pairs[rng.pick(pairs.len())];
        let mut corrupt = sched.clone();
        corrupt.windows.swap(i, j);
        let report = verifier(&sc).verify(&trace, &corrupt);
        assert!(
            report.has(RuleId::Causality),
            "swapped windows of ops {i} and {j} not flagged:\n{report}"
        );
    }
}

#[test]
fn negated_duration_is_flagged() {
    let sc = scenario("golden/flat");
    let (trace, sched) = run(&sc);
    let targets: Vec<usize> = trace
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, o)| o.duration.as_secs() > 0.0)
        .map(|(i, _)| i)
        .collect();

    let mut rng = Rng(0xc0ff_ee00_dead_beef);
    for _ in 0..3 {
        let victim = targets[rng.pick(targets.len())];
        let corrupt = rebuild(&trace, |i, op| {
            if i == victim {
                op.duration = madmax_hw::units::Seconds::new(-op.duration.as_secs());
            }
        });
        let report = verifier(&sc).verify(&corrupt, &sched);
        assert!(
            report.has(RuleId::Duration),
            "negated duration on op {victim} not flagged:\n{report}"
        );
    }
}

/// The decode-stream unit index of a pipelined serve op (compute,
/// blocking collective, or token send), if it has one.
fn decode_unit(name: &OpName) -> Option<u32> {
    match *name {
        OpName::StagePass {
            dir: PassDir::Dec,
            mb,
            ..
        } => Some(mb),
        OpName::StagePassColl {
            dir: PassDir::Dec,
            mb,
            ..
        } => Some(mb),
        OpName::StageSendTok { mb, .. } => Some(mb),
        _ => None,
    }
}

#[test]
fn compressed_steady_decode_tokens_are_flagged() {
    use madmax_hw::units::Seconds;
    use madmax_verify::Severity;

    let sc = scenario("serve/steady-1f1b-llama2");
    let (trace, sched) = run(&sc);
    let m = sc.plan.pipeline.expect("pipelined scenario").microbatches;
    let decode_len = trace
        .ops()
        .iter()
        .filter_map(|o| decode_unit(&o.name))
        .max()
        .expect("pipelined serve trace has decode units") as usize
        / m
        + 1;
    assert!(decode_len >= 24, "decode too short for the steady window");
    let mut completion = vec![0.0f64; decode_len];
    for (i, op) in trace.ops().iter().enumerate() {
        if let Some(mb) = decode_unit(&op.name) {
            let t = mb as usize / m;
            completion[t] = completion[t].max(sched.windows[i].finish.as_secs());
        }
    }
    // Shifts every op of decode tokens >= t by `delta` seconds.
    let shift = |t: usize, delta: f64| {
        let mut corrupt = sched.clone();
        let mut makespan = 0.0f64;
        for (i, op) in trace.ops().iter().enumerate() {
            if decode_unit(&op.name).is_some_and(|mb| mb as usize / m >= t) {
                corrupt.windows[i].start = Seconds::new(corrupt.windows[i].start.as_secs() + delta);
                corrupt.windows[i].finish =
                    Seconds::new(corrupt.windows[i].finish.as_secs() + delta);
            }
            makespan = makespan.max(corrupt.windows[i].finish.as_secs());
        }
        corrupt.makespan = Seconds::new(makespan);
        corrupt
    };

    let lo = decode_len - (decode_len / 4).max(2);
    let mut rng = Rng(0x1234_5678_9abc_def1);
    for _ in 0..3 {
        let t = lo + rng.pick(decode_len - lo);
        let gap = completion[t] - completion[t - 1];
        // Compress the inter-token gap at t well below the analytic
        // period: impossibly fast for the stage costs.
        let fast = shift(t, -0.3 * gap);
        let report = verifier(&sc).verify(&trace, &fast);
        assert!(
            report
                .of(RuleId::SteadyPeriod)
                .any(|d| d.severity == Severity::Error),
            "compressed steady gap at token {t} not flagged:\n{report}"
        );
        // Stretch it instead: legal but leaving throughput on the table.
        let slow = shift(t, 3.0 * gap);
        let report = verifier(&sc).verify(&trace, &slow);
        assert!(
            report
                .of(RuleId::SteadyPeriod)
                .any(|d| d.severity == Severity::Warn),
            "stretched steady gap at token {t} not flagged:\n{report}"
        );
        assert!(
            report.is_clean(),
            "stretching a suffix must stay legal:\n{report}"
        );
    }
}

#[test]
fn reordered_decode_steps_are_flagged() {
    let sc = scenario("serve/flat-llama2");
    let (trace, _) = run(&sc);
    let max_step = trace
        .ops()
        .iter()
        .filter_map(|o| match o.name {
            OpName::DecodeFlat { step, .. } => Some(step),
            _ => None,
        })
        .max()
        .expect("flat serve trace has decode steps");
    assert!(max_step >= 2, "need three decode steps to reorder");

    let mut rng = Rng(0x2545_f491_4f6c_dd1d);
    for _ in 0..3 {
        // Relabel two non-adjacent steps as each other: the step indices
        // along some dependency edge now decrease.
        let a = rng.pick(max_step as usize - 1) as u32;
        let b = a + 2 + rng.pick((max_step - a - 1) as usize) as u32;
        let corrupt = rebuild(&trace, |_, op| {
            if let OpName::DecodeFlat { step, inst, label } = op.name {
                if step == a {
                    op.name = OpName::DecodeFlat {
                        step: b,
                        inst,
                        label,
                    };
                } else if step == b {
                    op.name = OpName::DecodeFlat {
                        step: a,
                        inst,
                        label,
                    };
                }
            }
        });
        let report = verifier(&sc).verify_trace(&corrupt);
        assert!(
            report.has(RuleId::DecodeChain),
            "reordered decode steps {a} and {b} not flagged:\n{report}"
        );
    }
}
