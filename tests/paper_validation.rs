//! Integration tests pinning the reproduction to the paper's published
//! validation points (Table I) and headline abstract claims.

use madmax_core::validation::{self, reference};
use madmax_dse::Explorer;
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_parallel::Workload;

#[test]
fn table_i_all_rows_above_80_percent_accuracy() {
    let rows = validation::table_i().unwrap();
    assert_eq!(rows.len(), 6);
    for row in &rows {
        assert!(
            row.accuracy() > 80.0,
            "{}: measured {:.2} vs predicted {:.2} ({:.1}%)",
            row.metric,
            row.measured,
            row.predicted,
            row.accuracy()
        );
    }
}

#[test]
fn dlrm_a_serialized_time_within_paper_band() {
    let r = validation::dlrm_a_production_report().unwrap();
    // Measured 67.40 ms, paper model 65.30 ms; we require the same ballpark.
    let ms = r.serialized_time.as_ms();
    assert!((55.0..80.0).contains(&ms), "serialized {ms:.2} ms");
    // Exposure: measured 82.37%, paper model 75.46%.
    let exposed = r.exposed_fraction() * 100.0;
    assert!((70.0..97.0).contains(&exposed), "exposed {exposed:.1}%");
}

#[test]
fn dlrm_throughputs_match_mudigere_et_al() {
    let a = validation::dlrm_a_production_report().unwrap();
    let b = validation::dlrm_b_production_report().unwrap();
    assert!((a.mqps() - reference::DLRM_A_MQPS).abs() / reference::DLRM_A_MQPS < 0.2);
    assert!((b.mqps() - reference::DLRM_B_MQPS).abs() / reference::DLRM_B_MQPS < 0.2);
    // DLRM-B sustains higher MQPS than DLRM-A, as measured.
    assert!(b.mqps() > a.mqps());
}

#[test]
fn llama_cost_projections_track_touvron_et_al() {
    let (model, r) = validation::llama_70b_report().unwrap();
    let steps = reference::LLAMA_TOTAL_TOKENS / model.tokens_per_iteration();
    let days = (r.iteration_time * steps).as_days();
    assert!(
        (days - reference::LLAMA_DAYS_1_4T_TOKENS).abs() / reference::LLAMA_DAYS_1_4T_TOKENS < 0.15,
        "days {days:.2}"
    );
    let hours = validation::gpu_hours(r.iteration_time, reference::LLAMA_70B_STEPS, 2048);
    assert!(
        (hours - reference::LLAMA_70B_GPU_HOURS_306K).abs() / reference::LLAMA_70B_GPU_HOURS_306K
            < 0.15,
        "gpu hours {hours:.0}"
    );
}

#[test]
fn abstract_claim_exposed_communication_share() {
    // Abstract: 14-32% of *all* GPU hours are exposed communication — a
    // fleet-wide weighted share.
    let c = madmax_fleet::characterize(&madmax_fleet::default_fleet()).unwrap();
    let mut fleet_exposed = 0.0;
    let mut total_weight = 0.0;
    for (fam, agg) in &c.families {
        assert!(
            (0.02..0.45).contains(&agg.cycles.exposed_comm),
            "{fam} exposed-comm share {:.2}",
            agg.cycles.exposed_comm
        );
        fleet_exposed += agg.cycles.exposed_comm * agg.weight;
        total_weight += agg.weight;
    }
    fleet_exposed /= total_weight;
    assert!(
        (0.14..=0.32).contains(&fleet_exposed),
        "fleet-wide exposed-comm share {fleet_exposed:.3} outside the paper's 14-32% band"
    );
}

#[test]
fn abstract_claim_pretraining_gains_exist_for_dlrms() {
    // Abstract: up to 2.24x pre-training throughput improvement. Our suite
    // maximum must be >= 2x and the suite average positive.
    let mut speedups = Vec::new();
    for id in ModelId::ALL {
        let model = id.build();
        let sys = if id.is_dlrm() {
            catalog::zionex_dlrm_system()
        } else {
            catalog::llama_llm_system()
        };
        let r = Explorer::new(&model, &sys).explore().unwrap();
        speedups.push(r.speedup());
    }
    let max = speedups.iter().copied().fold(0.0, f64::max);
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(max >= 2.0, "max speedup {max:.2}");
    assert!(avg > 1.2, "average speedup {avg:.2}");
}

#[test]
fn abstract_claim_inference_gains_larger_than_training() {
    // Abstract: up to 5.27x for inference scenarios — inference admits
    // replication strategies that training cannot afford, so the best
    // inference speedup should exceed the best training speedup for MoE
    // variants.
    let model = ModelId::DlrmAMoe.build();
    let sys = catalog::zionex_dlrm_system();
    let train = Explorer::new(&model, &sys).explore().unwrap();
    let infer = Explorer::new(&model, &sys)
        .workload(Workload::inference())
        .explore()
        .unwrap();
    assert!(infer.speedup() >= 1.0);
    assert!(train.speedup() >= 1.0);
    // Inference unlocks strictly more feasible plans than pre-training.
    assert!(infer.oom <= train.oom);
}
