//! Integration tests asserting the *shape* of the paper's ten evaluation
//! insights (Section VI): who wins, orderings, and crossovers — not
//! absolute numbers.

use madmax_dse::{best_point, scaling_study, sweep_class, Explorer, ScalingAxis, SearchSpace};
use madmax_engine::{simulate, Scenario};
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{HierStrategy, Plan, Strategy, Workload};

fn zionex() -> madmax_hw::ClusterSpec {
    catalog::zionex_dlrm_system()
}

fn llm_sys() -> madmax_hw::ClusterSpec {
    catalog::llama_llm_system()
}

#[test]
fn insight1_dlrm_embeddings_force_sharding_and_tp_ddp_wins_dense() {
    let model = ModelId::DlrmA.build();
    let sys = zionex();
    // Replicating or FSDP-sharding trillion-parameter-scale tables is not
    // viable: DDP replication of 3.17 TB per device is absurd and must OOM.
    let plan = Plan::fsdp_baseline(&model)
        .with_strategy(LayerClass::Embedding, HierStrategy::flat(Strategy::Ddp));
    assert!(simulate(&model, &sys, &plan, Workload::pretrain()).is_err_and(|e| e.is_oom()));

    // With embeddings pinned to sharding, the dense sweep puts (TP, DDP)
    // on top and flat DDP out of memory (Fig. 11).
    let base = Plan::fsdp_baseline(&model);
    let points = sweep_class(
        &model,
        &sys,
        &base,
        LayerClass::Dense,
        &Workload::pretrain(),
    );
    let best = best_point(&points).unwrap();
    assert_eq!(
        best.strategy,
        HierStrategy::two_level(Strategy::Tp, Strategy::Ddp)
    );
    assert!(points
        .iter()
        .find(|p| p.strategy == HierStrategy::flat(Strategy::Ddp))
        .unwrap()
        .is_oom());
}

#[test]
fn insight2_llm_word_embeddings_replicate_but_compute_layers_cannot() {
    let model = ModelId::Gpt3.build();
    let sys = llm_sys();
    // GPT-3 word embeddings (<2 GB) replicate fine via DDP.
    let plan = Plan::fsdp_baseline(&model)
        .with_strategy(LayerClass::Embedding, HierStrategy::flat(Strategy::Ddp));
    assert!(simulate(&model, &sys, &plan, Workload::pretrain()).is_ok());

    // Any replication of the transformer stack across nodes OOMs.
    for strat in [
        HierStrategy::flat(Strategy::Ddp),
        HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        HierStrategy::two_level(Strategy::Fsdp, Strategy::Ddp),
    ] {
        let plan = Plan::fsdp_baseline(&model).with_strategy(LayerClass::Transformer, strat);
        assert!(
            simulate(&model, &sys, &plan, Workload::pretrain()).is_err_and(|e| e.is_oom()),
            "{strat} should OOM"
        );
    }

    // And the FSDP baseline is competitive: nothing in the constrained
    // search beats it by more than a few percent.
    let r = Explorer::new(&model, &sys).explore().unwrap();
    assert!(
        r.speedup() < 1.10,
        "GPT-3 constrained speedup {:.3}",
        r.speedup()
    );
}

#[test]
fn insight3_hierarchy_ordering_matters() {
    let model = ModelId::DlrmA.build();
    let sys = zionex();
    let base = Plan::fsdp_baseline(&model);
    let tp_ddp = base.clone().with_strategy(
        LayerClass::Dense,
        HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
    );
    let ddp_tp = base.clone().with_strategy(
        LayerClass::Dense,
        HierStrategy::two_level(Strategy::Ddp, Strategy::Tp),
    );
    let a = simulate(&model, &sys, &tp_ddp, Workload::pretrain()).unwrap();
    let b = simulate(&model, &sys, &ddp_tp, Workload::pretrain()).unwrap();
    // (TP, DDP) reduces activations over NVLink; (DDP, TP) pushes them over
    // RoCE and is much slower.
    assert!(a.iteration_time < b.iteration_time);
    assert!(
        b.iteration_time / a.iteration_time > 1.5,
        "ordering gap too small"
    );
    // Memory-wise the opposite ordering shards more (16 nodes vs 8 local).
    assert!(b.memory.total() < a.memory.total());
}

#[test]
fn insight4_variants_move_the_optimum() {
    let sys = zionex();
    // MoE's expert parallelism introduces blocking All2All but beats
    // FSDP-gathered experts decisively.
    let moe = ModelId::DlrmAMoe.build();
    let r = Explorer::new(&moe, &sys).explore().unwrap();
    let moe_strategy = r.best_plan.strategy_for(LayerClass::Moe);
    assert!(
        matches!(moe_strategy, HierStrategy::Flat(Strategy::Shard))
            || matches!(
                moe_strategy,
                HierStrategy::TwoLevel {
                    intra: Strategy::Shard,
                    ..
                }
            ),
        "expert parallelism should win, got {moe_strategy}"
    );
    assert!(r.speedup() > 1.5);
}

#[test]
fn insight5_task_diversity() {
    let model = ModelId::DlrmA.build();
    let sys = zionex();
    let ddp_dense = Plan::fsdp_baseline(&model)
        .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
    // DDP dense: infeasible for pre-training, fine for inference and
    // embedding-only fine-tuning.
    assert!(simulate(&model, &sys, &ddp_dense, Workload::pretrain()).is_err());
    assert!(simulate(&model, &sys, &ddp_dense, Workload::inference()).is_ok());
    assert!(simulate(
        &model,
        &sys,
        &ddp_dense,
        Workload::finetune_only(LayerClass::Embedding)
    )
    .is_ok());

    // Fine-tuning only the embeddings resembles inference in its
    // throughput-optimal dense-strategy *ordering* (the costly MLP weight
    // and input gradient work is omitted), unlike pre-training where DDP
    // is not even feasible.
    let base = Plan::fsdp_baseline(&model);
    let ranking = |task: &Workload| -> Vec<String> {
        let mut pts: Vec<_> = sweep_class(&model, &sys, &base, LayerClass::Dense, task)
            .into_iter()
            .filter_map(|p| p.throughput().map(|t| (p.strategy.to_string(), t)))
            .collect();
        pts.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        pts.into_iter().map(|(s, _)| s).take(3).collect()
    };
    let ft_rank = ranking(&Workload::finetune_only(LayerClass::Embedding));
    let inf_rank = ranking(&Workload::inference());
    assert_eq!(ft_rank[0], inf_rank[0], "top strategies should match");
    // DDP is in the feasible set for both, but not for pre-training.
    assert!(ft_rank.contains(&"(DDP)".to_owned()) || inf_rank.contains(&"(DDP)".to_owned()));
}

#[test]
fn insight6_context_length_diminishing_returns() {
    let sys = llm_sys();
    let base = ModelId::Llama2.build();
    let mut speedups = Vec::new();
    for ctx in [2048usize, 4096, 8192] {
        let model = if ctx == 4096 {
            base.clone()
        } else {
            base.with_context_length(ctx)
        };
        let r = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().unconstrained())
            .explore()
            .unwrap();
        speedups.push(r.speedup());
    }
    assert!(
        speedups[2] <= speedups[0] + 1e-9,
        "gains must not grow with context: {speedups:?}"
    );
}

#[test]
fn insight8_gpu_generations_and_superpod() {
    let model = ModelId::DlrmA.build();
    let plan = Plan::fsdp_baseline(&model);
    let a100 = simulate(&model, &zionex(), &plan, Workload::pretrain()).unwrap();
    let h100 = simulate(
        &model,
        &catalog::h100_cluster(16),
        &plan,
        Workload::pretrain(),
    )
    .unwrap();
    let superpod = simulate(
        &model,
        &catalog::h100_superpod_cluster(16),
        &plan,
        Workload::pretrain(),
    )
    .unwrap();
    assert!(h100.iteration_time < a100.iteration_time);
    assert!(superpod.iteration_time < h100.iteration_time);
    // The SuperPOD's inter-node upgrade directly accelerates the blocking
    // All2All: a substantial (>1.2x) step beyond the H100 alone.
    assert!(h100.iteration_time / superpod.iteration_time > 1.2);
}

#[test]
fn insight9_commodity_platforms_simulate_and_improve() {
    let model = ModelId::DlrmA.build();
    for sys in [
        catalog::mi250x_cluster(),
        catalog::mi300x_cluster(),
        catalog::gaudi2_cluster(),
    ] {
        let r = Explorer::new(&model, &sys).explore().unwrap();
        assert!(r.speedup() >= 1.0, "{}: {:.2}", sys.name, r.speedup());
        // Larger-HBM platforms admit replication-heavy plans: fewer OOM
        // rejections than on 40 GB A100s.
        if sys.device.hbm_capacity.as_gb() >= 96.0 {
            let zionex_sys = zionex();
            let a100 = Explorer::new(&model, &zionex_sys).explore().unwrap();
            assert!(r.oom <= a100.oom, "{}: {} vs {}", sys.name, r.oom, a100.oom);
        }
    }
}

#[test]
fn insight10_joint_scaling_beats_individual() {
    let model = ModelId::DlrmA.build();
    let points = scaling_study(&model, &zionex(), &Workload::pretrain(), 10.0).unwrap();
    let all = points
        .iter()
        .find(|p| p.axis == ScalingAxis::All)
        .unwrap()
        .speedup;
    for p in points.iter().filter(|p| p.axis != ScalingAxis::All) {
        assert!(
            p.speedup < 10.0,
            "{}: single-axis {:.2} must be sub-linear",
            p.axis,
            p.speedup
        );
        assert!(p.speedup <= all, "{} exceeds all-axes", p.axis);
    }
    assert!(
        all >= 9.5,
        "joint scaling should approach/exceed the factor, got {all:.2}"
    );
}

#[test]
fn fsdp_prefetch_matches_fig9_band() {
    // With prefetching, LLaMA-70B FSDP overlap lands in the 90+% band of
    // the production observation (98% observed / 93% paper model).
    let model = ModelId::Llama2.build();
    let plan = Plan::fsdp_baseline(&model);
    let llm = llm_sys();
    let r = Scenario::new(&model, &llm)
        .plan(plan.clone())
        .run()
        .unwrap();
    assert!(
        r.overlap_fraction() > 0.85,
        "prefetch overlap {:.1}%",
        r.overlap_fraction() * 100.0
    );
    let mut vanilla = plan;
    vanilla.options.fsdp_prefetch = false;
    let v = Scenario::new(&model, &llm).plan(vanilla).run().unwrap();
    assert!(v.overlap_fraction() < r.overlap_fraction());
}
