//! Property-based invariants of serve-mode workloads (prefill +
//! token-level decode), over randomized `ServeConfig`s:
//!
//! - decode traces contain no backward/gradient/optimizer work, in both
//!   engines;
//! - the KV-cache footprint grows monotonically with generated tokens
//!   and participates in the OOM feasibility check;
//! - prefill outweighs any single decode step (compute *and* reported
//!   TTFT vs TPOT);
//! - pipelining the decode stream pays off: the decode bubble shrinks as
//!   the decode batch (microbatch groups in flight) grows;
//! - the closed-form steady-state decode path (`madmax_core::steady`)
//!   produces reports byte-identical to full simulation, across
//!   randomized depths, microbatch counts, decode lengths (spanning the
//!   fallback boundary at `MIN_ANALYTIC_DECODE`), batches, and KV
//!   settings, in both engines.

use proptest::prelude::*;

use madmax_core::{OpKind, Phase, StreamId};
use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_hw::units::{ByteCount, Seconds};
use madmax_model::ModelId;
use madmax_parallel::{
    check_memory, memory_per_device, CollectiveKind, PipelineConfig, Plan, PlanError, ServeConfig,
    Workload,
};

proptest! {
    #[test]
    fn decode_traces_have_no_backward_or_gradient_ops(
        prompt in 16usize..1024,
        decode in 1usize..8,
        batch in 64usize..512,
        kv in 0usize..2,
    ) {
        let cfg = ServeConfig {
            prompt_len: Some(prompt),
            decode_len: decode,
            decode_batch: Some(batch),
            kv_cache: kv == 1,
        };
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let workload = Workload::serve(cfg);
        // Flat engine.
        let flat = Scenario::new(&model, &sys)
            .workload(workload.clone())
            .build_trace()
            .unwrap();
        // Pipelined engine (decode step as the microbatch unit).
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(4, 4));
        let piped = Scenario::new(&model, &sys)
            .workload(workload)
            .plan(plan)
            .build_trace()
            .unwrap();
        for trace in [&flat, &piped] {
            for op in trace.ops() {
                prop_assert!(
                    matches!(op.phase, Phase::Forward | Phase::Decode),
                    "serve op in phase {:?}",
                    op.phase
                );
                prop_assert!(op.kind != OpKind::Optimizer, "optimizer in serve trace");
                prop_assert!(
                    !matches!(
                        op.kind,
                        OpKind::Collective { kind: CollectiveKind::ReduceScatter }
                    ),
                    "gradient reduce-scatter in serve trace"
                );
                prop_assert!(
                    !matches!(op.stream, StreamId::GradComm | StreamId::StageGradComm(_)),
                    "gradient stream in serve trace"
                );
            }
            prop_assert!(trace.ops().iter().any(|o| o.phase == Phase::Decode));
        }
    }

    #[test]
    fn kv_cache_grows_monotonically_with_generated_tokens(
        prompt in 16usize..2048,
        d1 in 0usize..512,
        extra in 1usize..512,
        batch in 64usize..1024,
    ) {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let kv = |decode: usize| {
            let cfg = ServeConfig {
                prompt_len: Some(prompt),
                decode_len: decode,
                decode_batch: Some(batch),
                kv_cache: true,
            };
            memory_per_device(&model, &sys, &plan, &Workload::serve(cfg)).kv_cache
        };
        let shorter = kv(d1);
        let longer = kv(d1 + extra);
        prop_assert!(shorter > ByteCount::ZERO, "prompt tokens are cached");
        prop_assert!(longer > shorter, "{longer:?} vs {shorter:?}");
        // Linear in the token count: (prompt + d) scales the cache exactly.
        let expected = shorter.value() / (prompt + d1) as f64 * (prompt + d1 + extra) as f64;
        prop_assert!((longer.value() / expected - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prefill_outweighs_any_single_decode_step(
        prompt in 16usize..1024,
        decode in 1usize..8,
        batch in 64usize..512,
        kv in 0usize..2,
    ) {
        let cfg = ServeConfig {
            prompt_len: Some(prompt),
            decode_len: decode,
            decode_batch: Some(batch),
            kv_cache: kv == 1,
        };
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let workload = Workload::serve(cfg);
        let r = Scenario::new(&model, &sys)
            .workload(workload.clone())
            .run()
            .unwrap();
        let stats = r.serve.unwrap();
        prop_assert!(
            stats.ttft >= stats.tpot,
            "TTFT {:?} < TPOT {:?}",
            stats.ttft,
            stats.tpot
        );
        // Duration-level: the prefill's compute-stream time beats every
        // single decode step's compute-stream time (a decode step is a
        // 1-token pass; the prefill covers the whole prompt).
        let trace = Scenario::new(&model, &sys)
            .workload(workload)
            .build_trace()
            .unwrap();
        let prefill_compute: Seconds = trace
            .ops()
            .iter()
            .filter(|o| o.phase == Phase::Forward && o.stream == StreamId::Compute)
            .map(|o| o.duration)
            .sum();
        for step in 0..cfg.decode_len as u32 {
            let step_compute: Seconds = trace
                .ops()
                .iter()
                .filter(|o| {
                    matches!(
                        &o.name,
                        madmax_core::OpName::DecodeFlat { step: s, .. } if *s == step
                    ) && o.stream == StreamId::Compute
                })
                .map(|o| o.duration)
                .sum();
            prop_assert!(
                prefill_compute >= step_compute,
                "step {step}: {step_compute:?} exceeds prefill {prefill_compute:?}"
            );
        }
    }

    #[test]
    fn analytic_steady_state_reports_are_byte_identical(
        depth_idx in 0usize..3,
        groups_idx in 0usize..3,
        sched_idx in 0usize..2,
        decode in 24usize..96,
        per_group in 16usize..64,
        kv in 0usize..2,
    ) {
        use madmax_core::sim::EngineScratch;
        use madmax_core::steady::MIN_ANALYTIC_DECODE;

        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let p = [2usize, 4, 8][depth_idx];
        let m = [4usize, 8, 16][groups_idx];
        let pipe = if sched_idx == 0 {
            PipelineConfig::gpipe(p, m)
        } else {
            PipelineConfig::one_f_one_b(p, m)
        };
        let cfg = ServeConfig {
            prompt_len: Some(256),
            decode_len: decode,
            decode_batch: Some(per_group * m),
            kv_cache: kv == 1,
        };
        let workload = Workload::serve(cfg);
        let expect_analytic = u64::from(decode >= MIN_ANALYTIC_DECODE);

        // Flat engine: analytic-on vs analytic-off tables must agree
        // byte for byte, and the analytic counter must reflect whether
        // the closed form ran (the fallback boundary is exact).
        let flat_plan = Plan::fsdp_baseline(&model);
        let mut scratch = EngineScratch::new();
        let on = Scenario::new(&model, &sys)
            .workload(workload.clone())
            .plan(flat_plan.clone());
        let table_on = on.price_plans(std::slice::from_ref(&flat_plan));
        let fast = on.costs(&table_on).run_in(&mut scratch).unwrap();
        prop_assert_eq!(table_on.analytic_stats().hits, expect_analytic);
        let off = Scenario::new(&model, &sys)
            .workload(workload.clone())
            .plan(flat_plan.clone())
            .analytic_serve(false);
        let table_off = off.price_plans(std::slice::from_ref(&flat_plan));
        let full = off.costs(&table_off).run_in(&mut scratch).unwrap();
        prop_assert_eq!(table_off.analytic_stats().hits, 0);
        prop_assert_eq!(fast, full);

        // Pipelined engine: same contract per (depth, schedule, groups).
        let piped_plan = Plan::fsdp_baseline(&model).with_pipeline(pipe);
        let on = Scenario::new(&model, &sys)
            .workload(workload.clone())
            .plan(piped_plan.clone());
        let table_on = on.price_pipeline_plans(std::slice::from_ref(&piped_plan));
        let fast = on.pipeline_costs(&table_on).run_in(&mut scratch).unwrap();
        prop_assert_eq!(table_on.analytic_stats().hits, expect_analytic);
        let off = Scenario::new(&model, &sys)
            .workload(workload)
            .plan(piped_plan.clone())
            .analytic_serve(false);
        let table_off = off.price_pipeline_plans(std::slice::from_ref(&piped_plan));
        let full = off.pipeline_costs(&table_off).run_in(&mut scratch).unwrap();
        prop_assert_eq!(table_off.analytic_stats().hits, 0);
        prop_assert_eq!(fast, full);
    }

    #[test]
    fn pipelined_decode_bubble_shrinks_as_the_decode_batch_grows(
        prompt in 64usize..1024,
        decode in 4usize..12,
        kv in 0usize..2,
    ) {
        // Growing the serving batch with a fixed per-group size puts more
        // microbatch groups in flight, hiding the autoregressive
        // round-trip: the decode bubble (stage idle share) shrinks.
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let per_group = 64usize;
        let bubble = |groups: usize| {
            let cfg = ServeConfig {
                prompt_len: Some(prompt),
                decode_len: decode,
                decode_batch: Some(per_group * groups),
                kv_cache: kv == 1,
            };
            let plan = Plan::fsdp_baseline(&model)
                .with_pipeline(PipelineConfig::gpipe(4, groups));
            Scenario::new(&model, &sys)
                .workload(Workload::serve(cfg))
                .plan(plan)
                .run()
                .unwrap()
                .bubble_fraction
                .unwrap()
        };
        let small = bubble(2);
        let large = bubble(8);
        prop_assert!(
            large < small + 1e-9,
            "bubble grew with the decode batch: {small} -> {large}"
        );
    }
}

#[test]
fn kv_cache_is_part_of_the_oom_check() {
    // A mapping that fits without the KV-cache can OOM once the cache is
    // modeled: same plan, same batch, only `kv_cache` flipped.
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let plan = Plan::fsdp_baseline(&model);
    // An absurdly long decode stream at a large serving batch: the cache
    // alone exceeds usable HBM.
    let base = ServeConfig {
        prompt_len: Some(2048),
        decode_len: 4_000_000,
        decode_batch: Some(model.global_batch * 8),
        kv_cache: true,
    };
    let with_kv = check_memory(&model, &sys, &plan, &Workload::serve(base));
    assert!(
        matches!(with_kv, Err(PlanError::OutOfMemory { .. })),
        "{with_kv:?}"
    );
    let without = check_memory(
        &model,
        &sys,
        &plan,
        &Workload::serve(ServeConfig {
            kv_cache: false,
            ..base
        }),
    )
    .unwrap();
    assert_eq!(without.kv_cache, ByteCount::ZERO);
    // And the engines surface it as the unified OOM error.
    let err = Scenario::new(&model, &sys)
        .workload(Workload::serve(base))
        .run()
        .unwrap_err();
    assert!(err.is_oom(), "{err}");
}
