//! Load-trace rules: request-lifecycle causality and paged-KV residency
//! over the continuous-batching simulator's [`LoadTrace`] ledger.
//!
//! Like every other pass in this crate, the checks are
//! producer-independent: they re-derive the invariants from the integer
//! ledger alone, trusting neither simulation mode. Because both modes
//! must produce byte-identical request-visible timestamps, a rule firing
//! here means the simulator (not just one code path) broke its contract.

use madmax_serve::LoadTrace;

use crate::diag::{Diagnostic, Location, RuleId, VerifyReport};

/// Verifies a load trace: request-lifecycle causality
/// ([`RuleId::RequestLifecycle`]), paged-KV residency
/// ([`RuleId::PagedKvResidency`]), and fault-ledger consistency
/// ([`RuleId::FaultLedger`]).
pub fn verify_load(trace: &LoadTrace) -> VerifyReport {
    let mut out = VerifyReport::new();
    check_records(trace, &mut out);
    check_serialization(trace, &mut out);
    check_residency(trace, &mut out);
    check_faults(trace, &mut out);
    out
}

fn lifecycle_error(out: &mut VerifyReport, id: u32, message: String) {
    out.push(Diagnostic::error(
        RuleId::RequestLifecycle,
        Location::Request(id),
        message,
    ));
}

fn residency_error(out: &mut VerifyReport, location: Location, message: String) {
    out.push(Diagnostic::error(
        RuleId::PagedKvResidency,
        location,
        message,
    ));
}

fn fault_error(out: &mut VerifyReport, location: Location, message: String) {
    out.push(Diagnostic::error(RuleId::FaultLedger, location, message));
}

/// Per-record causality: arrival ≤ admission (prefill start) < first
/// token ≤ completion; rejected XOR executed; completed requests decode
/// exactly `decode_len` tokens; eviction counts match resumed prefills.
fn check_records(trace: &LoadTrace, out: &mut VerifyReport) {
    // Decode steps and resumed prefills per request, one pass each.
    let n = trace.records.len();
    let mut steps = vec![0i64; n];
    for run in &trace.runs {
        for p in &run.participants {
            match steps.get_mut(p.request as usize) {
                Some(s) => *s += run.steps,
                None => residency_error(
                    out,
                    Location::Request(p.request),
                    format!("decode run references unknown request {}", p.request),
                ),
            }
        }
    }
    let mut resumed = vec![0u32; n];
    let mut first = vec![None; n];
    for p in &trace.prefills {
        let Some(idx) = trace
            .records
            .get(p.request as usize)
            .map(|_| p.request as usize)
        else {
            lifecycle_error(
                out,
                p.request,
                format!("prefill references unknown request {}", p.request),
            );
            continue;
        };
        if p.resumed {
            resumed[idx] += 1;
        } else if first[idx].is_none() {
            first[idx] = Some(p);
        }
    }

    for (i, r) in trace.records.iter().enumerate() {
        let id = r.id;
        if id as usize != i {
            lifecycle_error(out, id, format!("record {i} carries id {id}"));
        }
        if r.rejected.is_some() && (r.admitted.is_some() || r.completion.is_some()) {
            lifecycle_error(out, id, "request both rejected and executed".to_owned());
        }
        match (r.admitted, r.first_token, r.completion) {
            (Some(adm), ft, comp) => {
                if adm < r.arrival {
                    lifecycle_error(
                        out,
                        id,
                        format!("admitted at {adm} before arrival at {}", r.arrival),
                    );
                }
                match ft {
                    Some(ft) => {
                        if ft <= adm {
                            lifecycle_error(
                                out,
                                id,
                                format!("first token at {ft} not after prefill start {adm}"),
                            );
                        }
                        if let Some(comp) = comp {
                            if comp < ft {
                                lifecycle_error(
                                    out,
                                    id,
                                    format!("completion at {comp} before first token at {ft}"),
                                );
                            }
                        }
                    }
                    None => {
                        if comp.is_some() {
                            lifecycle_error(out, id, "completed without a first token".to_owned());
                        }
                    }
                }
                // The first (non-resumed) prefill is the admission.
                match first[i] {
                    Some(p) => {
                        if p.start != adm {
                            lifecycle_error(
                                out,
                                id,
                                format!(
                                    "first prefill starts at {} but admission is {adm}",
                                    p.start
                                ),
                            );
                        }
                    }
                    None => lifecycle_error(
                        out,
                        id,
                        "admitted request has no initial prefill run".to_owned(),
                    ),
                }
            }
            (None, ft, comp) => {
                if ft.is_some() || comp.is_some() {
                    lifecycle_error(out, id, "request ran without admission".to_owned());
                }
            }
        }
        if r.completion.is_some() && steps[i] != r.decode_len as i64 {
            lifecycle_error(
                out,
                id,
                format!(
                    "completed with {} decode steps, requested {}",
                    steps[i], r.decode_len
                ),
            );
        }
        // Every eviction and every fault retry re-admits through a
        // resumed prefill. A request still waiting at the end of the run
        // may not have re-admitted yet, so only settled requests
        // (completed or failed) must reconcile exactly.
        let resumptions = r.evictions + r.retries;
        let settled = r.completion.is_some() || r.failed.is_some();
        if (settled && resumed[i] != resumptions) || resumed[i] > resumptions {
            lifecycle_error(
                out,
                id,
                format!(
                    "{} evictions + {} retries recorded but {} resumed prefills traced",
                    r.evictions, r.retries, resumed[i]
                ),
            );
        }
    }
}

/// The engine executes one thing at a time: prefill and decode-run
/// intervals are well-formed, mutually non-overlapping, and inside the
/// run's `[0, end]` window.
fn check_serialization(trace: &LoadTrace, out: &mut VerifyReport) {
    let mut spans: Vec<(i64, i64, u32)> = trace
        .prefills
        .iter()
        .map(|p| (p.start, p.end, p.request))
        .chain(trace.runs.iter().map(|r| {
            let anchor = r.participants.first().map_or(u32::MAX, |p| p.request);
            (r.start, r.end, anchor)
        }))
        .collect();
    spans.sort_unstable();
    let mut prev_end = i64::MIN;
    let mut prev_req = u32::MAX;
    for (start, end, req) in spans {
        if end <= start {
            lifecycle_error(
                out,
                req,
                format!("empty or negative execution span [{start}, {end}]"),
            );
        }
        if start < 0 || end > trace.end {
            lifecycle_error(
                out,
                req,
                format!(
                    "execution span [{start}, {end}] escapes the run window [0, {}]",
                    trace.end
                ),
            );
        }
        if start < prev_end {
            lifecycle_error(
                out,
                req,
                format!(
                    "execution span starting at {start} overlaps the span of \
                     request {prev_req} ending at {prev_end}"
                ),
            );
        }
        prev_end = end;
        prev_req = req;
    }
}

/// Fault-ledger consistency: fault spans are well-formed and in
/// application order; every interruption a span records reconciles with
/// its victim's retry/failure accounting (interruptions = retries +
/// failed); retries respect the policy ceiling; failed requests were
/// admitted and never completed; and decode runs fully inside a
/// capacity-loss window respect the degraded slot count.
fn check_faults(trace: &LoadTrace, out: &mut VerifyReport) {
    let n = trace.records.len();
    let mut interruptions = vec![0u32; n];
    let mut prev_start = i64::MIN;
    for s in &trace.faults {
        if s.end < s.start || s.start < 0 {
            fault_error(
                out,
                Location::Global,
                format!("malformed fault span [{}, {}]", s.start, s.end),
            );
        }
        if s.start > trace.end {
            fault_error(
                out,
                Location::Global,
                format!(
                    "fault span starts at {} beyond the run window [0, {}]",
                    s.start, trace.end
                ),
            );
        }
        if s.start < prev_start {
            fault_error(
                out,
                Location::Global,
                format!(
                    "fault spans out of application order: a span starting at {} \
                     follows one starting at {prev_start}",
                    s.start
                ),
            );
        }
        prev_start = s.start;
        for &r in &s.interrupted {
            match interruptions.get_mut(r as usize) {
                Some(c) => *c += 1,
                None => fault_error(
                    out,
                    Location::Request(r),
                    format!("fault span interrupts unknown request {r}"),
                ),
            }
        }
    }
    for (i, rec) in trace.records.iter().enumerate() {
        let expected = rec.retries + u32::from(rec.failed.is_some());
        if interruptions[i] != expected {
            fault_error(
                out,
                Location::Request(rec.id),
                format!(
                    "{} recorded interruptions but retries ({}) + failed ({}) = {expected}",
                    interruptions[i],
                    rec.retries,
                    u32::from(rec.failed.is_some())
                ),
            );
        }
        if let Some(limit) = trace.retry_limit {
            if rec.retries > limit {
                fault_error(
                    out,
                    Location::Request(rec.id),
                    format!("{} retries exceed the policy ceiling {limit}", rec.retries),
                );
            }
        }
        if let Some(failed_at) = rec.failed {
            if rec.admitted.is_none() {
                fault_error(
                    out,
                    Location::Request(rec.id),
                    "request failed without ever being admitted".to_owned(),
                );
            }
            if rec.completion.is_some() {
                fault_error(
                    out,
                    Location::Request(rec.id),
                    format!("request completed yet marked failed at {failed_at}"),
                );
            }
        }
    }
    // Degraded capacity: a decode run wholly inside slots-lost windows
    // must fit the reduced slot count.
    if trace.slots > 0 {
        for run in &trace.runs {
            let lost: usize = trace
                .faults
                .iter()
                .filter(|s| s.slots_lost > 0 && s.start <= run.start && run.end <= s.end)
                .map(|s| s.slots_lost)
                .sum();
            if lost > 0 && run.participants.len() > trace.slots.saturating_sub(lost) {
                fault_error(
                    out,
                    Location::Global,
                    format!(
                        "decode run in [{}, {}] batches {} requests while {lost} of {} \
                         slots are lost",
                        run.start,
                        run.end,
                        run.participants.len(),
                        trace.slots
                    ),
                );
            }
        }
    }
}

/// Paged-KV residency: spans well-formed; every decode participant's
/// blocks are resident for the whole run; occupancy never exceeds the
/// paged budget.
fn check_residency(trace: &LoadTrace, out: &mut VerifyReport) {
    let n = trace.records.len();
    let mut by_request: Vec<Vec<(i64, Option<i64>)>> = vec![Vec::new(); n];
    for s in &trace.residency {
        if let Some(end) = s.end {
            if end < s.start {
                residency_error(
                    out,
                    Location::Request(s.request),
                    format!(
                        "residency span ends at {end} before it starts at {}",
                        s.start
                    ),
                );
            }
        }
        match by_request.get_mut(s.request as usize) {
            Some(list) => list.push((s.start, s.end)),
            None => residency_error(
                out,
                Location::Request(s.request),
                format!("residency span references unknown request {}", s.request),
            ),
        }
    }
    for run in &trace.runs {
        for p in &run.participants {
            let covered = by_request.get(p.request as usize).is_some_and(|spans| {
                spans
                    .iter()
                    .any(|&(s, e)| s <= run.start && e.is_none_or(|e| e >= run.end))
            });
            if !covered {
                residency_error(
                    out,
                    Location::Request(p.request),
                    format!(
                        "request decodes in [{}, {}] without resident KV blocks",
                        run.start, run.end
                    ),
                );
            }
        }
        if let Some(total) = trace.total_blocks {
            if run.blocks_held > total {
                residency_error(
                    out,
                    Location::Global,
                    format!(
                        "decode run ending at {} holds {} blocks of a {total}-block budget",
                        run.end, run.blocks_held
                    ),
                );
            }
        }
    }
    if let Some(total) = trace.total_blocks {
        if trace.peak_blocks > total {
            residency_error(
                out,
                Location::Global,
                format!(
                    "peak occupancy {} blocks exceeds the {total}-block budget",
                    trace.peak_blocks
                ),
            );
        }
    }
}
