//! Trace well-formedness: dependency shape, stream/name/kind agreement,
//! phase consistency, decode chaining, and the structural pipeline rules
//! (adjacent-stage handoffs) that need no schedule.

use madmax_core::{OpKind, OpName, PassDir, Phase, StreamId, Trace, TraceOp};
use madmax_parallel::{PipelineConfig, Workload};

use crate::diag::{Diagnostic, Location, RuleId, VerifyReport};

/// The pipeline stage an op belongs to according to its *name* (its
/// stream may disagree — that is what [`RuleId::StreamMismatch`] checks).
fn name_stage(name: &OpName) -> Option<u16> {
    match name {
        OpName::StageParam { stage, .. }
        | OpName::StagePass { stage, .. }
        | OpName::StagePassColl { stage, .. }
        | OpName::StageSendAct { stage, .. }
        | OpName::StageSendTok { stage, .. }
        | OpName::StageSendGrad { stage, .. }
        | OpName::StageGrad { stage, .. }
        | OpName::StageOptimizer { stage } => Some(*stage),
        _ => None,
    }
}

/// The stream an op's name prescribes (`None` when any stream is fine,
/// e.g. [`OpName::Custom`]).
fn expected_stream(name: &OpName) -> Option<StreamId> {
    match name {
        OpName::StagePass { stage, .. } | OpName::StageOptimizer { stage } => {
            Some(StreamId::StageCompute(*stage))
        }
        OpName::StageParam { stage, .. }
        | OpName::StagePassColl { stage, .. }
        | OpName::StageSendAct { stage, .. }
        | OpName::StageSendTok { stage, .. } => Some(StreamId::StageComm(*stage)),
        OpName::StageSendGrad { stage, .. } | OpName::StageGrad { stage, .. } => {
            Some(StreamId::StageGradComm(*stage))
        }
        _ => None,
    }
}

/// The decode-stream unit index of a pipelined decode op, from its name.
fn decode_unit(name: &OpName) -> Option<u32> {
    match name {
        OpName::StagePass {
            dir: PassDir::Dec,
            mb,
            ..
        }
        | OpName::StagePassColl {
            dir: PassDir::Dec,
            mb,
            ..
        }
        | OpName::StageSendTok { mb, .. } => Some(*mb),
        _ => None,
    }
}

/// The pass direction an op's name carries, if any.
fn name_dir(name: &OpName) -> Option<PassDir> {
    match name {
        OpName::Flat { dir, .. } => Some(*dir),
        OpName::DecodeFlat { .. } | OpName::StageSendTok { .. } => Some(PassDir::Dec),
        OpName::StagePass { dir, .. } | OpName::StagePassColl { dir, .. } => Some(*dir),
        OpName::StageSendAct { .. } => Some(PassDir::Fwd),
        OpName::StageSendGrad { .. } => Some(PassDir::Bwd),
        _ => None,
    }
}

fn op_loc(i: usize) -> Location {
    Location::Op(madmax_core::OpId(i))
}

/// Checks dependency shape, stream/kind agreement, and phase consistency
/// for every op, then the decode chain and the structural pipeline rules.
pub(crate) fn check_trace(
    trace: &Trace,
    workload: Option<&Workload>,
    pipeline: Option<&PipelineConfig>,
    out: &mut VerifyReport,
) {
    let ops = trace.ops();

    let has_decode = ops.iter().any(|o| o.phase == Phase::Decode);
    // A serve trace (explicit workload, or inferred from decode ops) must
    // be free of backward/update work.
    let is_serve = workload.map_or(has_decode, |w| !w.has_backward());
    let is_training = workload.is_some_and(Workload::has_backward);

    for (i, op) in ops.iter().enumerate() {
        check_deps(i, op, out);
        check_streams(i, op, out);
        check_phases(i, op, is_serve, is_training, out);
    }

    check_decode_chain(trace, pipeline, out);
    check_stage_structure(trace, out);
}

fn check_deps(i: usize, op: &TraceOp, out: &mut VerifyReport) {
    let deps = op.deps.as_slice();
    for d in deps {
        if d.0 >= i {
            out.push(Diagnostic::error(
                RuleId::DepOrder,
                op_loc(i),
                format!(
                    "op {} ({}) depends on op {} at or after itself",
                    i, op.name, d.0
                ),
            ));
        }
    }
    if deps.windows(2).any(|w| w[0] >= w[1]) {
        out.push(Diagnostic::error(
            RuleId::DepSorted,
            op_loc(i),
            format!(
                "op {} ({}) has an unsorted or duplicated dependency list",
                i, op.name
            ),
        ));
    }
}

fn check_streams(i: usize, op: &TraceOp, out: &mut VerifyReport) {
    if let Some(want) = expected_stream(&op.name) {
        if op.stream != want {
            out.push(Diagnostic::error(
                RuleId::StreamMismatch,
                op_loc(i),
                format!(
                    "op {} ({}) runs on {:?} but its name prescribes {want:?}",
                    i, op.name, op.stream
                ),
            ));
        }
    } else if name_stage(&op.name).is_none()
        && !matches!(op.name, OpName::Custom(_))
        && op.stream.stage().is_some()
    {
        out.push(Diagnostic::error(
            RuleId::StreamMismatch,
            op_loc(i),
            format!(
                "flat-trace op {} ({}) runs on stage stream {:?}",
                i, op.name, op.stream
            ),
        ));
    }
    let comm_kind = matches!(op.kind, OpKind::Collective { .. });
    if comm_kind != op.stream.is_comm() {
        out.push(Diagnostic::error(
            RuleId::StreamMismatch,
            op_loc(i),
            format!(
                "op {} ({}) of kind {:?} occupies the wrong stream class {:?}",
                i, op.name, op.kind, op.stream
            ),
        ));
    }
}

fn check_phases(i: usize, op: &TraceOp, is_serve: bool, is_training: bool, out: &mut VerifyReport) {
    if op.kind == OpKind::Optimizer && op.phase != Phase::Update {
        out.push(Diagnostic::error(
            RuleId::PhaseMismatch,
            op_loc(i),
            format!("optimizer op {} ({}) outside the update phase", i, op.name),
        ));
    }
    if is_serve {
        let backward_phase = matches!(op.phase, Phase::Backward | Phase::Update);
        let backward_name = name_dir(&op.name) == Some(PassDir::Bwd);
        if backward_phase || backward_name {
            out.push(Diagnostic::error(
                RuleId::PhaseMismatch,
                op_loc(i),
                format!(
                    "serve trace contains backward/update op {} ({})",
                    i, op.name
                ),
            ));
        }
    }
    if is_training && (op.phase == Phase::Decode || name_dir(&op.name) == Some(PassDir::Dec)) {
        out.push(Diagnostic::error(
            RuleId::PhaseMismatch,
            op_loc(i),
            format!("training trace contains decode op {} ({})", i, op.name),
        ));
    }
}

/// Decode steps must be autoregressive: step/unit indices never decrease
/// along a dependency edge, and every step is chained on the previous
/// token (flat traces by explicit step; pipelined traces by decode unit,
/// when the microbatch grouping is known).
fn check_decode_chain(trace: &Trace, pipeline: Option<&PipelineConfig>, out: &mut VerifyReport) {
    let ops = trace.ops();

    // Step/unit monotonicity along edges.
    for (i, op) in ops.iter().enumerate() {
        let self_step = match &op.name {
            OpName::DecodeFlat { step, .. } => Some(u64::from(*step)),
            n => decode_unit(n).map(u64::from),
        };
        let Some(self_step) = self_step else { continue };
        for d in op.deps.as_slice() {
            let dep = &ops[d.0];
            let dep_step = match &dep.name {
                OpName::DecodeFlat { step, .. } => Some(u64::from(*step)),
                n => decode_unit(n).map(u64::from),
            };
            if dep_step.is_some_and(|s| s > self_step) {
                out.push(Diagnostic::error(
                    RuleId::DecodeChain,
                    op_loc(i),
                    format!(
                        "decode op {} ({}) depends on a later token ({})",
                        i, op.name, dep.name
                    ),
                ));
            }
        }
    }

    // Flat chain: each step t >= 1 links back to step t - 1.
    let max_step = ops
        .iter()
        .filter_map(|o| match o.name {
            OpName::DecodeFlat { step, .. } => Some(step),
            _ => None,
        })
        .max();
    if let Some(max_step) = max_step {
        for t in 1..=max_step {
            let chained = ops.iter().any(|o| {
                matches!(o.name, OpName::DecodeFlat { step, .. } if step == t)
                    && o.deps.as_slice().iter().any(|d| {
                        matches!(ops[d.0].name, OpName::DecodeFlat { step, .. } if step + 1 == t)
                    })
            });
            if !chained {
                out.push(Diagnostic::error(
                    RuleId::DecodeChain,
                    Location::Global,
                    format!("decode step {t} is not chained on step {}", t - 1),
                ));
            }
        }
    }

    // Pipelined chain: stage 0's unit u waits for the same group's
    // previous token (unit u - m) once the first wave is through.
    let Some(m) = pipeline.map(|c| c.microbatches as u32).filter(|&m| m > 0) else {
        return;
    };
    for (i, op) in ops.iter().enumerate() {
        let OpName::StagePass {
            stage: 0,
            dir: PassDir::Dec,
            mb: unit,
        } = op.name
        else {
            continue;
        };
        if unit < m {
            continue;
        }
        let chained = op.deps.as_slice().iter().any(|d| {
            ops[d.0].phase == Phase::Decode && decode_unit(&ops[d.0].name) == Some(unit - m)
        });
        if !chained {
            out.push(Diagnostic::error(
                RuleId::DecodeChain,
                op_loc(i),
                format!(
                    "decode unit {unit} on stage 0 is not chained on the group's previous \
                     token (unit {})",
                    unit - m
                ),
            ));
        }
    }
}

/// Structural pipeline rules that need no schedule: cross-stage edges run
/// through P2P sends between adjacent stages (or the autoregressive
/// feedback from the last stage to stage 0), and every handoff the
/// schedule shape requires is present.
fn check_stage_structure(trace: &Trace, out: &mut VerifyReport) {
    let ops = trace.ops();
    let Some(max_stage) = ops.iter().filter_map(|o| name_stage(&o.name)).max() else {
        return;
    };

    for (i, op) in ops.iter().enumerate() {
        let Some(si) = name_stage(&op.name) else {
            continue;
        };
        for d in op.deps.as_slice() {
            let dep = &ops[d.0];
            let Some(sd) = name_stage(&dep.name) else {
                continue;
            };
            if sd == si {
                continue;
            }
            let fwd_handoff = matches!(
                dep.name,
                OpName::StageSendAct { .. } | OpName::StageSendTok { .. }
            ) && si == sd + 1;
            let bwd_handoff = matches!(dep.name, OpName::StageSendGrad { .. }) && sd == si + 1;
            let feedback = op.phase == Phase::Decode && si == 0 && sd == max_stage;
            if !(fwd_handoff || bwd_handoff || feedback) {
                out.push(Diagnostic::error(
                    RuleId::StageAdjacency,
                    op_loc(i),
                    format!(
                        "op {} ({}) at stage {si} depends on op {} ({}) at stage {sd} \
                         without an adjacent-stage P2P handoff",
                        i, op.name, d.0, dep.name
                    ),
                ));
            }
        }

        // Required handoffs.
        if let OpName::StagePass { stage, dir, mb } = op.name {
            let missing = match dir {
                PassDir::Fwd if stage > 0 => !op.deps.as_slice().iter().any(|d| {
                    matches!(ops[d.0].name,
                        OpName::StageSendAct { stage: s, mb: j } if s + 1 == stage && j == mb)
                }),
                PassDir::Bwd if stage < max_stage => !op.deps.as_slice().iter().any(|d| {
                    matches!(ops[d.0].name,
                        OpName::StageSendGrad { stage: s, mb: j } if s == stage + 1 && j == mb)
                }),
                PassDir::Dec if stage > 0 => !op.deps.as_slice().iter().any(|d| {
                    matches!(ops[d.0].name,
                        OpName::StageSendTok { stage: s, mb: j } if s + 1 == stage && j == mb)
                }),
                _ => false,
            };
            if missing {
                out.push(Diagnostic::error(
                    RuleId::StageAdjacency,
                    op_loc(i),
                    format!(
                        "op {} ({}) is missing its cross-stage handoff dependency",
                        i, op.name
                    ),
                ));
            }
        }
    }
}
