//! Plan lints: pure static checks on a [`Plan`] against a model, cluster,
//! and workload — no cost table, no partitioner, no memory model. A
//! search front-end can run these to reject a candidate before paying for
//! pricing.

use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, Workload};

use crate::diag::{Diagnostic, Location, RuleId, VerifyReport};

/// Whether `p` pipeline stages can split `cluster` into equal stage
/// groups along the node hierarchy (the same divisibility the stage
/// engine enforces when deriving stage sub-clusters).
fn stages_divide_cluster(cluster: &ClusterSpec, p: usize) -> bool {
    if p <= 1 {
        return true;
    }
    (cluster.num_nodes >= p && cluster.num_nodes.is_multiple_of(p))
        || (cluster.num_nodes == 1
            && cluster.devices_per_node >= p
            && cluster.devices_per_node.is_multiple_of(p))
}

/// Lints `plan` statically against the model, cluster, and workload.
///
/// Emits [`RuleId::PlanDegree`] when a strategy is disallowed for its
/// layer class or the pipeline depth cannot divide the cluster,
/// [`RuleId::PlanPipeline`] for depth/microbatch bounds, and
/// [`RuleId::PlanServe`] for serve-config sanity. Advisory findings
/// (microbatches above the batch, a modeled-but-unused KV-cache) are
/// warnings; everything else is an error.
pub fn lint_plan(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> VerifyReport {
    let mut out = VerifyReport::new();

    if let Err(e) = plan.validate_strategies(model) {
        out.push(Diagnostic::error(
            RuleId::PlanDegree,
            Location::Global,
            e.to_string(),
        ));
    }

    if let Some(cfg) = plan.pipeline.filter(|c| c.is_pipelined()) {
        let p = cfg.stages;
        let m = cfg.microbatches;
        if !stages_divide_cluster(cluster, p) {
            out.push(Diagnostic::error(
                RuleId::PlanDegree,
                Location::Global,
                format!(
                    "{} nodes x {} devices cannot be split into {p} equal stage groups",
                    cluster.num_nodes, cluster.devices_per_node
                ),
            ));
        }
        if m == 0 {
            out.push(Diagnostic::error(
                RuleId::PlanPipeline,
                Location::Global,
                "zero microbatches",
            ));
        }
        let instances: usize = model.groups.iter().map(|g| g.repeat).sum();
        if p > instances {
            out.push(Diagnostic::error(
                RuleId::PlanPipeline,
                Location::Global,
                format!("model has {instances} layer instances but {p} stages were requested"),
            ));
        }
        let batch = workload.effective_model(model).global_batch;
        if m > batch {
            out.push(Diagnostic::warn(
                RuleId::PlanPipeline,
                Location::Global,
                format!("{m} microbatches exceed the effective batch of {batch}"),
            ));
        }
    }

    if let Some(cfg) = workload.serve_config() {
        if cfg.prompt_len == Some(0) {
            out.push(Diagnostic::error(
                RuleId::PlanServe,
                Location::Global,
                "zero-length prompt",
            ));
        }
        if cfg.decode_batch == Some(0) {
            out.push(Diagnostic::error(
                RuleId::PlanServe,
                Location::Global,
                "zero-sequence decode batch",
            ));
        }
        if cfg.kv_cache && cfg.decode_len == 0 {
            out.push(Diagnostic::warn(
                RuleId::PlanServe,
                Location::Global,
                "KV-cache modeled but no decode steps run",
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};
    use madmax_parallel::{HierStrategy, PipelineConfig, ServeConfig, Strategy};

    #[test]
    fn baseline_plans_lint_clean() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let r = lint_plan(&model, &sys, &plan, &Workload::pretrain());
        assert!(r.is_clean() && r.diagnostics.is_empty(), "{r}");
        let piped = plan.with_pipeline(PipelineConfig::gpipe(8, 16));
        let r = lint_plan(&model, &sys, &piped, &Workload::pretrain());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn disallowed_strategy_flagged() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Embedding, HierStrategy::flat(Strategy::Tp));
        let r = lint_plan(&model, &sys, &plan, &Workload::pretrain());
        assert!(r.has(RuleId::PlanDegree), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn indivisible_pipeline_depth_flagged() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system(); // 256 nodes
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(7, 8));
        let r = lint_plan(&model, &sys, &plan, &Workload::pretrain());
        assert!(r.has(RuleId::PlanDegree), "{r}");
    }

    #[test]
    fn pipeline_bounds_flagged() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let deep = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(4096, 8));
        let r = lint_plan(&model, &sys, &deep, &Workload::pretrain());
        assert!(r.has(RuleId::PlanPipeline), "{r}");
        let wide = Plan::fsdp_baseline(&model)
            .with_pipeline(PipelineConfig::gpipe(8, 10 * model.global_batch));
        let r = lint_plan(&model, &sys, &wide, &Workload::pretrain());
        assert!(
            r.has(RuleId::PlanPipeline) && r.is_clean(),
            "warn only: {r}"
        );
    }

    #[test]
    fn serve_config_sanity() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let bad = Workload::serve(ServeConfig {
            prompt_len: Some(0),
            decode_len: 4,
            decode_batch: Some(0),
            kv_cache: true,
        });
        let r = lint_plan(&model, &sys, &plan, &bad);
        assert_eq!(r.of(RuleId::PlanServe).count(), 2, "{r}");
        assert!(!r.is_clean());
        let unused_kv = Workload::serve(ServeConfig {
            prompt_len: Some(128),
            decode_len: 0,
            decode_batch: None,
            kv_cache: true,
        });
        let r = lint_plan(&model, &sys, &plan, &unused_kv);
        assert!(r.has(RuleId::PlanServe) && r.is_clean(), "{r}");
    }
}
