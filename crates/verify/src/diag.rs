//! Structured diagnostics: the verifier reports rule violations as
//! [`Diagnostic`] values collected in a [`VerifyReport`] instead of
//! panicking, so callers (engines, the explorer, CI) decide what a
//! violation means for them.

use madmax_core::{OpId, StreamId};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the IR is legal but the schedule is leaving performance
    /// on the table (e.g. a mostly-idle compute stream).
    Warn,
    /// The IR violates an invariant the engines are supposed to uphold;
    /// any report derived from it is untrustworthy.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Every rule the verifier checks, one stable identifier per invariant.
/// See `crates/verify/README.md` for the full catalog with examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Plan lint: parallel degrees / pipeline depth must divide the
    /// cluster along its node hierarchy.
    PlanDegree,
    /// Plan lint: pipeline depth and microbatch counts are in bounds for
    /// the model and batch.
    PlanPipeline,
    /// Plan lint: serve-config sanity (non-zero prompt/batch, KV flags).
    PlanServe,
    /// Trace: dependencies point strictly backward (`dep < op`), so the
    /// dependency graph is acyclic by construction.
    DepOrder,
    /// Trace: dependency lists are sorted and deduplicated.
    DepSorted,
    /// Trace: op names, kinds, and streams agree (stage ops on their
    /// stage's streams, collectives on comm streams, compute on compute).
    StreamMismatch,
    /// Trace: phases are consistent with the workload (no backward ops in
    /// serve traces, no decode ops in training traces, optimizer ops in
    /// the update phase).
    PhaseMismatch,
    /// Trace: autoregressive decode steps chain on the previous token.
    DecodeChain,
    /// Schedule: an op starts only after every dependency finishes.
    Causality,
    /// Schedule: windows on one stream never overlap (the independent
    /// check of the dense `StreamTable` scheduler).
    StreamOverlap,
    /// Schedule: durations are non-negative and each window spans exactly
    /// its op's duration.
    Duration,
    /// Schedule: the recorded makespan is the max window finish, and the
    /// window count matches the op count.
    Makespan,
    /// Pipeline: P2P transfers connect adjacent stages only, and every
    /// cross-stage handoff the schedule requires is present.
    StageAdjacency,
    /// Pipeline: a 1F1B schedule keeps at most `p` microbatches in flight
    /// per stage.
    InFlight,
    /// Pipeline: a GPipe schedule's measured bubble fraction respects the
    /// analytic floor `(p - 1) / (m + p - 1)`.
    BubbleFloor,
    /// Pipeline: in the steady decode region of a serve schedule, each
    /// token's completion follows the previous token's by at least the
    /// analytic steady period `max(Σ_s (d_s + comm_s + send_s),
    /// max_s m·d_s)` re-derived from the trace's per-stage decode
    /// durations (error when faster — the dependency structure and stage
    /// work forbid it; warn when slower than the period plus the KV-growth
    /// slack — steady-state scheduling inefficiency).
    SteadyPeriod,
    /// Load trace: request-lifecycle causality — arrival ≤ admission
    /// (prefill start) < first token ≤ completion, rejected requests
    /// never run, completed requests decode exactly their requested
    /// tokens, and the engine serializes prefills and decode runs.
    RequestLifecycle,
    /// Load trace: paged-KV residency — every decode participant holds an
    /// open residency interval covering the run, spans are well-formed,
    /// and block occupancy never exceeds the paged budget.
    PagedKvResidency,
    /// Load trace: fault-ledger consistency — fault spans are well-formed
    /// and inside the run window, per-request interruption counts match
    /// retry/failure accounting, retries respect the policy ceiling, and
    /// decode runs inside capacity-loss windows respect the degraded slot
    /// count.
    FaultLedger,
    /// Goodput: a closed-form goodput evaluation is internally consistent
    /// — the fraction is in (0, 1], effective throughput never exceeds
    /// the fault-free throughput and equals fraction x fault-free, and
    /// the model knobs (MTBF, interval, write, restart) are sane.
    GoodputBound,
    /// Analysis: the critical-path lower bound must not exceed the
    /// makespan.
    CriticalPath,
    /// Analysis (warn): a compute stream spends most of the makespan
    /// idle — scheduling inefficiency worth a look, not an error.
    StreamSlack,
}

impl RuleId {
    /// Stable kebab-case code, used in rendered diagnostics and the
    /// README catalog.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::PlanDegree => "plan-degree",
            RuleId::PlanPipeline => "plan-pipeline",
            RuleId::PlanServe => "plan-serve",
            RuleId::DepOrder => "dep-order",
            RuleId::DepSorted => "dep-sorted",
            RuleId::StreamMismatch => "stream-mismatch",
            RuleId::PhaseMismatch => "phase-mismatch",
            RuleId::DecodeChain => "decode-chain",
            RuleId::Causality => "causality",
            RuleId::StreamOverlap => "stream-overlap",
            RuleId::Duration => "duration",
            RuleId::Makespan => "makespan",
            RuleId::StageAdjacency => "stage-adjacency",
            RuleId::InFlight => "in-flight",
            RuleId::BubbleFloor => "bubble-floor",
            RuleId::SteadyPeriod => "steady-period",
            RuleId::RequestLifecycle => "request-lifecycle",
            RuleId::PagedKvResidency => "paged-kv-residency",
            RuleId::FaultLedger => "fault-ledger",
            RuleId::GoodputBound => "goodput-bound",
            RuleId::CriticalPath => "critical-path",
            RuleId::StreamSlack => "stream-slack",
        }
    }

    /// The severity diagnostics of this rule default to.
    pub fn default_severity(self) -> Severity {
        match self {
            RuleId::StreamSlack => Severity::Warn,
            _ => Severity::Error,
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Where in the IR a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// No specific anchor (whole-plan or whole-trace findings).
    Global,
    /// One op of the trace/schedule.
    Op(OpId),
    /// One stream.
    Stream(StreamId),
    /// One pipeline stage.
    Stage(u16),
    /// One request of a load trace.
    Request(u32),
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Global => f.write_str("-"),
            Location::Op(id) => write!(f, "op {}", id.0),
            Location::Stream(s) => write!(f, "stream {s:?}"),
            Location::Stage(s) => write!(f, "stage {s}"),
            Location::Request(r) => write!(f, "request {r}"),
        }
    }
}

/// One rule violation (or advisory finding).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Error or advisory.
    pub severity: Severity,
    /// Op/stream/stage anchor.
    pub location: Location,
    /// Human-readable explanation with the offending values.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(rule: RuleId, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            location,
            message: message.into(),
        }
    }

    /// A warn-severity diagnostic.
    pub fn warn(rule: RuleId, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warn,
            location,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )
    }
}

/// Longest dependency chain of a trace: a makespan lower bound that holds
/// for *any* legal schedule, independent of stream contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPath {
    /// Sum of durations along the longest chain.
    pub lower_bound: madmax_hw::units::Seconds,
    /// Number of ops on the chain.
    pub ops: usize,
    /// The chain's final op (`None` for an empty trace).
    pub sink: Option<OpId>,
}

/// Everything one verification pass found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// All findings, in rule-evaluation order.
    pub diagnostics: Vec<Diagnostic>,
    /// The critical-path analysis, when a schedule was verified.
    pub critical_path: Option<CriticalPath>,
}

impl VerifyReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether no errors were found (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Whether any finding cites `rule`.
    pub fn has(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Findings citing `rule`.
    pub fn of(&self, rule: RuleId) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Folds another report's findings into this one (critical path keeps
    /// the first analysis seen).
    pub fn merge(&mut self, other: VerifyReport) {
        self.diagnostics.extend(other.diagnostics);
        if self.critical_path.is_none() {
            self.critical_path = other.critical_path;
        }
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            f.write_str("clean")?;
        } else {
            for (i, d) in self.diagnostics.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(f, "{d}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_rendering() {
        let mut r = VerifyReport::new();
        assert!(r.is_clean());
        assert_eq!(r.to_string(), "clean");
        r.push(Diagnostic::warn(
            RuleId::StreamSlack,
            Location::Stream(StreamId::Compute),
            "idle",
        ));
        assert!(r.is_clean(), "warnings alone stay clean");
        r.push(Diagnostic::error(
            RuleId::Causality,
            Location::Op(OpId(3)),
            "starts before its dependency finishes",
        ));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has(RuleId::Causality));
        assert!(!r.has(RuleId::Makespan));
        let s = r.to_string();
        assert!(s.contains("error[causality] op 3"), "{s}");
        assert!(s.contains("warn[stream-slack]"), "{s}");
    }

    #[test]
    fn default_severities() {
        assert_eq!(RuleId::StreamSlack.default_severity(), Severity::Warn);
        assert_eq!(RuleId::DepOrder.default_severity(), Severity::Error);
        assert_eq!(RuleId::BubbleFloor.code(), "bubble-floor");
    }
}
