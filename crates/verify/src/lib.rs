//! # madmax-verify
//!
//! A compiler-style static verifier and lint pass over the simulator's
//! three IR layers, producing structured [`Diagnostic`]s instead of
//! panics:
//!
//! 1. **Plan lints** ([`lint_plan`]) — pure static checks on a
//!    [`madmax_parallel::Plan`]: parallel degrees and pipeline depth
//!    divide the cluster, depth/microbatch bounds, serve-config sanity.
//!    No cost table, partitioner, or memory model runs, so a search can
//!    reject candidates before pricing.
//! 2. **Trace well-formedness** ([`Verifier::verify_trace`]) —
//!    dependencies acyclic and backward-pointing, sorted and deduped;
//!    stream/name/kind agreement; phase consistency (no backward ops in
//!    serve traces); decode steps chained on the previous token; and the
//!    structural pipeline rules (cross-stage edges only through
//!    adjacent-stage P2P handoffs).
//! 3. **Schedule legality + analysis** ([`Verifier::verify`]) —
//!    causality, per-stream window exclusivity (an independent check of
//!    the dense `StreamTable` scheduler), non-negative durations,
//!    makespan consistency; the 1F1B in-flight bound and the GPipe
//!    analytic bubble floor; plus the [`critical_path`] analyzer, whose
//!    longest dependency chain is a makespan lower bound and whose
//!    per-stream slack findings surface scheduling inefficiency as
//!    warnings.
//! 4. **Load-trace rules** ([`verify_load`]) — request-lifecycle
//!    causality and paged-KV residency over the continuous-batching
//!    simulator's integer ledger (`madmax_serve::LoadTrace`): arrival ≤
//!    admission < first token ≤ completion, rejected requests never run,
//!    completed requests decode exactly their requested tokens, prefills
//!    and decode runs serialize, decode participants hold resident KV
//!    blocks for whole runs, and occupancy stays within the paged budget.
//!    Fault-aware runs add fault-ledger consistency: interruption counts
//!    reconcile with retry/failure accounting, retries respect the policy
//!    ceiling, and decode runs inside capacity-loss windows respect the
//!    degraded slot count.
//! 5. **Goodput rules** ([`verify_goodput`]) — internal consistency of a
//!    closed-form failure-aware goodput evaluation: the goodput fraction
//!    is in (0, 1] and effective throughput reconciles with (and never
//!    exceeds) the fault-free throughput.
//!
//! The verifier is *producer-independent*: it re-derives every invariant
//! from the IR values alone, trusting neither the trace builders nor the
//! scheduler. The engines additionally run a cheap subset of the
//! schedule rules under `debug_assertions`
//! (`madmax_core::sim::debug_check_schedule`); this crate is the full
//! rule set for tests, CI, `madmax --verify`, and the explorer's
//! winner-verification option.
//!
//! # Example
//!
//! ```
//! use madmax_hw::catalog;
//! use madmax_model::ModelId;
//! use madmax_parallel::{Plan, Workload};
//! use madmax_verify::{lint_plan, Verifier};
//!
//! let model = ModelId::DlrmA.build();
//! let system = catalog::zionex_dlrm_system();
//! let plan = Plan::fsdp_baseline(&model);
//! let workload = Workload::pretrain();
//! assert!(lint_plan(&model, &system, &plan, &workload).is_clean());
//!
//! let (_, trace, sched) = madmax_core::run_flat(
//!     &model,
//!     &system,
//!     &plan,
//!     &workload,
//!     &madmax_core::HierarchicalNccl,
//!     madmax_core::UtilizationModel::Constant,
//! )
//! .unwrap();
//! let report = Verifier::for_plan(&plan, &workload).verify(&trace, &sched);
//! assert!(report.is_clean(), "{report}");
//! let cp = report.critical_path.unwrap();
//! assert!(cp.lower_bound <= sched.makespan);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod diag;
mod fault;
mod load;
mod plan;
mod sched;
mod trace;

pub use diag::{CriticalPath, Diagnostic, Location, RuleId, Severity, VerifyReport};
pub use fault::verify_goodput;
pub use load::verify_load;
pub use plan::lint_plan;
pub use sched::critical_path;

use madmax_core::{Schedule, Trace};
use madmax_parallel::{PipelineConfig, Plan, Workload};

/// The trace/schedule verifier. Context (the plan's pipeline config, the
/// workload) is optional: without it the context-dependent rules
/// (pipelined decode chaining, 1F1B in-flight, GPipe bubble floor,
/// workload-directed phase checks) are skipped and everything else still
/// runs.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    pipeline: Option<PipelineConfig>,
    workload: Option<Workload>,
}

impl Verifier {
    /// A context-free verifier (structural rules only).
    pub fn new() -> Self {
        Self::default()
    }

    /// The full context for traces produced by running `plan` under
    /// `workload`.
    pub fn for_plan(plan: &Plan, workload: &Workload) -> Self {
        Self {
            pipeline: plan.pipeline.filter(|c| c.is_pipelined()),
            workload: Some(workload.clone()),
        }
    }

    /// Adds the pipeline configuration the trace was built for.
    #[must_use]
    pub fn with_pipeline(mut self, cfg: PipelineConfig) -> Self {
        self.pipeline = cfg.is_pipelined().then_some(cfg);
        self
    }

    /// Adds the workload the trace was built for.
    #[must_use]
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Runs the trace well-formedness pass alone (no schedule required).
    pub fn verify_trace(&self, trace: &Trace) -> VerifyReport {
        let mut out = VerifyReport::new();
        trace::check_trace(
            trace,
            self.workload.as_ref(),
            self.pipeline.as_ref(),
            &mut out,
        );
        out
    }

    /// Runs the full pass: trace well-formedness, schedule legality, the
    /// pipeline rules, and the critical-path/slack analyses.
    pub fn verify(&self, trace: &Trace, sched: &Schedule) -> VerifyReport {
        let mut out = self.verify_trace(trace);
        sched::check_schedule(trace, sched, self.pipeline.as_ref(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::{
        schedule, Deps, OpId, OpKind, OpName, PassDir, Phase, StreamId, Trace, TraceOp,
    };
    use madmax_hw::units::Seconds;
    use madmax_parallel::CollectiveKind;

    fn op(
        name: OpName,
        stream: StreamId,
        kind: OpKind,
        phase: Phase,
        duration: f64,
        deps: Deps,
    ) -> TraceOp {
        TraceOp {
            name,
            stream,
            kind,
            phase,
            duration: Seconds::new(duration),
            deps,
        }
    }

    fn gemm(duration: f64, deps: Deps) -> TraceOp {
        op(
            OpName::custom("g"),
            StreamId::Compute,
            OpKind::Gemm {
                class: madmax_model::LayerClass::Dense,
            },
            Phase::Forward,
            duration,
            deps,
        )
    }

    #[test]
    fn simple_chain_verifies_clean_with_matching_critical_path() {
        let mut t = Trace::new();
        let a = t.push(gemm(1.0, Deps::none()));
        let b = t.push(op(
            OpName::custom("coll"),
            StreamId::Comm,
            OpKind::Collective {
                kind: CollectiveKind::AllGather,
            },
            Phase::Forward,
            0.5,
            Deps::one(a),
        ));
        t.push(gemm(2.0, Deps::one(b)));
        let s = schedule(&t);
        let r = Verifier::new().verify(&t, &s);
        assert!(r.is_clean(), "{r}");
        let cp = r.critical_path.unwrap();
        assert_eq!(cp.ops, 3);
        assert!((cp.lower_bound.as_secs() - 3.5).abs() < 1e-12);
        assert_eq!(cp.sink, Some(OpId(2)));
        assert!((cp.lower_bound - s.makespan).as_secs().abs() < 1e-12);
    }

    #[test]
    fn unsorted_deps_flagged() {
        let mut t = Trace::new();
        let a = t.push(gemm(1.0, Deps::none()));
        let b = t.push(gemm(1.0, Deps::none()));
        // Deps::push now insert-sorts, so force an unsorted list through
        // the order-preserving From<Vec> path.
        t.push(gemm(1.0, Deps::from(vec![b, a])));
        let r = Verifier::new().verify_trace(&t);
        assert!(r.has(RuleId::DepSorted), "{r}");
    }

    #[test]
    fn stream_and_kind_mismatches_flagged() {
        let mut t = Trace::new();
        // A stage op on the wrong stage's stream.
        t.push(op(
            OpName::StagePass {
                stage: 2,
                dir: PassDir::Fwd,
                mb: 0,
            },
            StreamId::StageCompute(1),
            OpKind::Gemm {
                class: madmax_model::LayerClass::Dense,
            },
            Phase::Forward,
            1.0,
            Deps::none(),
        ));
        // A collective on a compute stream.
        t.push(op(
            OpName::custom("ag"),
            StreamId::Compute,
            OpKind::Collective {
                kind: CollectiveKind::AllGather,
            },
            Phase::Forward,
            1.0,
            Deps::none(),
        ));
        let r = Verifier::new().verify_trace(&t);
        assert_eq!(r.of(RuleId::StreamMismatch).count(), 2, "{r}");
    }

    #[test]
    fn serve_trace_with_backward_op_flagged() {
        let mut t = Trace::new();
        let a = t.push(op(
            OpName::decode(0, None, "blocks"),
            StreamId::Compute,
            OpKind::Gemm {
                class: madmax_model::LayerClass::Dense,
            },
            Phase::Decode,
            1.0,
            Deps::none(),
        ));
        t.push(op(
            OpName::flat(PassDir::Bwd, None, "blocks"),
            StreamId::Compute,
            OpKind::Gemm {
                class: madmax_model::LayerClass::Dense,
            },
            Phase::Backward,
            1.0,
            Deps::one(a),
        ));
        // Inferred from the decode op even without workload context.
        let r = Verifier::new().verify_trace(&t);
        assert!(r.has(RuleId::PhaseMismatch), "{r}");
    }

    #[test]
    fn unchained_decode_steps_flagged() {
        let mut t = Trace::new();
        t.push(op(
            OpName::decode(0, None, "blocks"),
            StreamId::Compute,
            OpKind::Gemm {
                class: madmax_model::LayerClass::Dense,
            },
            Phase::Decode,
            1.0,
            Deps::none(),
        ));
        // Step 1 exists but does not depend on step 0.
        t.push(op(
            OpName::decode(1, None, "blocks"),
            StreamId::Compute,
            OpKind::Gemm {
                class: madmax_model::LayerClass::Dense,
            },
            Phase::Decode,
            1.0,
            Deps::none(),
        ));
        let r = Verifier::new().verify_trace(&t);
        assert!(r.has(RuleId::DecodeChain), "{r}");
    }

    #[test]
    fn corrupt_schedule_is_flagged_by_causality_and_overlap() {
        let mut t = Trace::new();
        let a = t.push(gemm(1.0, Deps::none()));
        t.push(gemm(1.0, Deps::one(a)));
        let mut s = schedule(&t);
        // Pull op 1 before its dependency finishes: violates causality
        // and overlaps op 0 on the shared compute stream.
        s.windows[1].start = Seconds::new(0.25);
        s.windows[1].finish = Seconds::new(1.25);
        s.makespan = Seconds::new(1.25);
        let r = Verifier::new().verify(&t, &s);
        assert!(r.has(RuleId::Causality), "{r}");
        assert!(r.has(RuleId::StreamOverlap), "{r}");
    }

    #[test]
    fn makespan_and_duration_inconsistencies_flagged() {
        let mut t = Trace::new();
        t.push(gemm(1.0, Deps::none()));
        let mut s = schedule(&t);
        s.makespan = Seconds::new(9.0);
        let r = Verifier::new().verify(&t, &s);
        assert!(r.has(RuleId::Makespan), "{r}");
        // Critical path exceeding the (shrunk) makespan is its own rule.
        let mut s2 = schedule(&t);
        s2.windows[0].finish = Seconds::new(0.25);
        s2.makespan = Seconds::new(0.25);
        let r2 = Verifier::new().verify(&t, &s2);
        assert!(r2.has(RuleId::Duration), "{r2}");
        assert!(r2.has(RuleId::CriticalPath), "{r2}");
    }
}
