//! Goodput rules: internal consistency of a closed-form failure-aware
//! goodput evaluation ([`RuleId::GoodputBound`]).
//!
//! The evaluation is a pure function of four knobs (MTBF, checkpoint
//! interval, write, restart) and the fault-free iteration time, so the
//! verifier re-derives its invariants from the report alone: faults can
//! only *lose* throughput, and the three reported throughput numbers
//! must reconcile exactly.

use madmax_fault::GoodputReport;

use crate::diag::{Diagnostic, Location, RuleId, VerifyReport};

/// Relative slack for the `effective = fraction x fault-free`
/// reconciliation: the product is computed in one multiplication, so
/// anything beyond a few ulps means the report was tampered with or
/// produced by a different model.
const RECONCILE_EPS: f64 = 1e-9;

fn goodput_error(out: &mut VerifyReport, message: String) {
    out.push(Diagnostic::error(
        RuleId::GoodputBound,
        Location::Global,
        message,
    ));
}

/// Verifies a closed-form goodput evaluation: model knobs are sane
/// (positive finite MTBF/interval/write, non-negative restart), the
/// goodput fraction is in (0, 1], and effective throughput is bounded by
/// — and reconciles exactly with — the fault-free throughput.
pub fn verify_goodput(report: &GoodputReport) -> VerifyReport {
    let mut out = VerifyReport::new();
    for (name, v) in [
        ("mtbf", report.mtbf),
        ("interval", report.interval),
        ("checkpoint_write", report.checkpoint_write),
    ] {
        if !v.is_finite() || v <= 0.0 {
            goodput_error(&mut out, format!("{name} {v} must be finite and positive"));
        }
    }
    if !report.restart.is_finite() || report.restart < 0.0 {
        goodput_error(
            &mut out,
            format!("restart {} must be finite and >= 0", report.restart),
        );
    }
    if !report.fault_free_throughput.is_finite() || report.fault_free_throughput <= 0.0 {
        goodput_error(
            &mut out,
            format!(
                "fault-free throughput {} must be finite and positive",
                report.fault_free_throughput
            ),
        );
    }
    if !(report.goodput_fraction > 0.0 && report.goodput_fraction <= 1.0) {
        goodput_error(
            &mut out,
            format!(
                "goodput fraction {} outside (0, 1]: faults cannot create work",
                report.goodput_fraction
            ),
        );
    }
    let bound = report.fault_free_throughput * (1.0 + RECONCILE_EPS);
    if report.effective_throughput > bound {
        goodput_error(
            &mut out,
            format!(
                "effective throughput {} exceeds the fault-free throughput {}",
                report.effective_throughput, report.fault_free_throughput
            ),
        );
    }
    let expected = report.goodput_fraction * report.fault_free_throughput;
    let tol = expected.abs().max(1.0) * RECONCILE_EPS;
    if (report.effective_throughput - expected).abs() > tol {
        goodput_error(
            &mut out,
            format!(
                "effective throughput {} does not reconcile with fraction x fault-free = \
                 {expected}",
                report.effective_throughput
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_fault::expected_goodput;

    fn clean_report() -> GoodputReport {
        expected_goodput(2.0, 30.0, 120.0, 3600.0, 600.0)
    }

    #[test]
    fn a_genuine_evaluation_is_clean() {
        let r = verify_goodput(&clean_report());
        assert!(r.is_clean(), "{r}");
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn inflated_effective_throughput_is_caught() {
        let mut report = clean_report();
        report.effective_throughput = report.fault_free_throughput * 1.5;
        let r = verify_goodput(&report);
        assert!(r.has(RuleId::GoodputBound), "{r}");
        // Both the bound and the reconciliation fire.
        assert!(r.error_count() >= 2, "{r}");
    }

    #[test]
    fn out_of_range_fraction_is_caught() {
        let mut report = clean_report();
        report.goodput_fraction = 1.2;
        report.effective_throughput = report.goodput_fraction * report.fault_free_throughput;
        let r = verify_goodput(&report);
        assert!(r.has(RuleId::GoodputBound), "{r}");
    }

    #[test]
    fn bad_knobs_are_caught() {
        let mut report = clean_report();
        report.mtbf = 0.0;
        report.restart = -1.0;
        let r = verify_goodput(&report);
        assert_eq!(r.error_count(), 2, "{r}");
    }
}
