//! Schedule legality and analysis: causality, per-stream exclusivity,
//! duration/makespan consistency, the schedule-dependent pipeline rules
//! (1F1B in-flight bound, GPipe bubble floor), the critical-path makespan
//! lower bound, and per-stream slack lints.

use std::collections::HashMap;

use madmax_core::{OpId, OpName, PassDir, Phase, Schedule, StreamId, Trace};
use madmax_hw::units::Seconds;
use madmax_parallel::{PipelineConfig, PipelineSchedule};

use crate::diag::{CriticalPath, Diagnostic, Location, RuleId, VerifyReport};

/// A compute stream idle for more than this share of the makespan draws a
/// [`RuleId::StreamSlack`] warning.
const SLACK_WARN_FRACTION: f64 = 0.75;

/// Computes the longest dependency chain of `trace`: its total duration
/// is a makespan lower bound for any legal schedule, independent of how
/// ops are packed onto streams.
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let ops = trace.ops();
    let mut finish_at = vec![0.0f64; ops.len()];
    let mut chain_len = vec![0usize; ops.len()];
    let mut best = 0.0f64;
    let mut sink = None;
    for (i, op) in ops.iter().enumerate() {
        let mut base = 0.0;
        let mut len = 0;
        for d in op.deps.as_slice() {
            if d.0 < i && finish_at[d.0] > base {
                base = finish_at[d.0];
                len = chain_len[d.0];
            }
        }
        finish_at[i] = base + op.duration.as_secs();
        chain_len[i] = len + 1;
        if finish_at[i] > best {
            best = finish_at[i];
            sink = Some(OpId(i));
        }
    }
    CriticalPath {
        lower_bound: Seconds::new(best),
        ops: sink.map_or(0, |s| chain_len[s.0]),
        sink,
    }
}

/// Checks schedule legality for `(trace, sched)` and runs the analyses;
/// `pipeline` enables the schedule-dependent pipeline rules.
pub(crate) fn check_schedule(
    trace: &Trace,
    sched: &Schedule,
    pipeline: Option<&PipelineConfig>,
    out: &mut VerifyReport,
) {
    let ops = trace.ops();
    if sched.windows.len() != ops.len() {
        out.push(Diagnostic::error(
            RuleId::Makespan,
            Location::Global,
            format!(
                "schedule has {} windows for {} trace ops",
                sched.windows.len(),
                ops.len()
            ),
        ));
        return;
    }

    let makespan = sched.makespan.as_secs();
    let tol = 1e-9 * makespan.abs().max(1.0);

    let mut max_finish = 0.0f64;
    for (i, (op, w)) in ops.iter().zip(&sched.windows).enumerate() {
        let (start, finish) = (w.start.as_secs(), w.finish.as_secs());
        max_finish = max_finish.max(finish);
        if op.duration.as_secs() < 0.0 {
            out.push(Diagnostic::error(
                RuleId::Duration,
                Location::Op(OpId(i)),
                format!(
                    "op {} ({}) has negative duration {}",
                    i, op.name, op.duration
                ),
            ));
        }
        if ((finish - start) - op.duration.as_secs()).abs() > tol {
            out.push(Diagnostic::error(
                RuleId::Duration,
                Location::Op(OpId(i)),
                format!(
                    "op {} ({}) occupies [{start}, {finish}] but lasts {}",
                    i, op.name, op.duration
                ),
            ));
        }
        for d in op.deps.as_slice() {
            if d.0 >= sched.windows.len() {
                continue; // dep-order rule already fired
            }
            let dep_finish = sched.windows[d.0].finish.as_secs();
            if start + tol < dep_finish {
                out.push(Diagnostic::error(
                    RuleId::Causality,
                    Location::Op(OpId(i)),
                    format!(
                        "op {} ({}) starts at {start} before dependency {} finishes at \
                         {dep_finish}",
                        i, op.name, d.0
                    ),
                ));
            }
        }
    }

    if (makespan - max_finish).abs() > tol {
        out.push(Diagnostic::error(
            RuleId::Makespan,
            Location::Global,
            format!("makespan {makespan} does not match the last window finish {max_finish}"),
        ));
    }

    check_stream_exclusivity(trace, sched, tol, out);

    let cp = critical_path(trace);
    if cp.lower_bound.as_secs() > makespan + tol {
        out.push(Diagnostic::error(
            RuleId::CriticalPath,
            cp.sink.map_or(Location::Global, Location::Op),
            format!(
                "critical-path lower bound {} exceeds the makespan {}",
                cp.lower_bound, sched.makespan
            ),
        ));
    }
    out.critical_path = Some(cp);

    check_stream_slack(trace, sched, out);

    if let Some(cfg) = pipeline {
        check_in_flight(trace, sched, cfg, out);
        check_bubble_floor(trace, sched, cfg, out);
        check_steady_period(trace, sched, cfg, out);
    }
}

/// Windows on one stream must not overlap — re-derived from the windows
/// alone, independently of the in-order `StreamTable` scheduler.
fn check_stream_exclusivity(trace: &Trace, sched: &Schedule, tol: f64, out: &mut VerifyReport) {
    let mut per_stream: HashMap<StreamId, Vec<usize>> = HashMap::new();
    for (i, op) in trace.ops().iter().enumerate() {
        per_stream.entry(op.stream).or_default().push(i);
    }
    let mut streams: Vec<_> = per_stream.into_iter().collect();
    streams.sort_by_key(|(s, _)| s.slot());
    for (stream, mut idx) in streams {
        idx.sort_by(|&a, &b| {
            sched.windows[a]
                .start
                .partial_cmp(&sched.windows[b].start)
                .expect("finite start times")
        });
        for pair in idx.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if sched.windows[b].start.as_secs() + tol < sched.windows[a].finish.as_secs() {
                out.push(Diagnostic::error(
                    RuleId::StreamOverlap,
                    Location::Stream(stream),
                    format!(
                        "ops {} ({}) and {} ({}) overlap on {stream:?}: [{}, {}] vs [{}, {}]",
                        a,
                        trace.ops()[a].name,
                        b,
                        trace.ops()[b].name,
                        sched.windows[a].start,
                        sched.windows[a].finish,
                        sched.windows[b].start,
                        sched.windows[b].finish,
                    ),
                ));
            }
        }
    }
}

/// Warn-level slack lint: a compute stream that sits idle for most of the
/// makespan points at scheduling inefficiency (e.g. a bubble-heavy
/// pipeline configuration).
fn check_stream_slack(trace: &Trace, sched: &Schedule, out: &mut VerifyReport) {
    let makespan = sched.makespan.as_secs();
    if makespan <= 0.0 {
        return;
    }
    let mut busy: HashMap<StreamId, (f64, usize)> = HashMap::new();
    for op in trace.ops() {
        if op.stream.is_compute() {
            let e = busy.entry(op.stream).or_insert((0.0, 0));
            e.0 += op.duration.as_secs();
            e.1 += 1;
        }
    }
    let mut streams: Vec<_> = busy.into_iter().collect();
    streams.sort_by_key(|(s, _)| s.slot());
    for (stream, (busy, ops)) in streams {
        let idle = 1.0 - busy / makespan;
        if ops >= 2 && idle > SLACK_WARN_FRACTION {
            out.push(Diagnostic::warn(
                RuleId::StreamSlack,
                Location::Stream(stream),
                format!(
                    "compute stream {stream:?} is idle {:.0}% of the makespan \
                     ({busy:.3e}s busy of {makespan:.3e}s)",
                    idle * 100.0
                ),
            ));
        }
    }
}

/// 1F1B bounds the number of microbatches in flight (forward started,
/// backward not yet finished) at `p` per stage — that is the schedule's
/// entire point versus GPipe's fill-drain.
fn check_in_flight(trace: &Trace, sched: &Schedule, cfg: &PipelineConfig, out: &mut VerifyReport) {
    if cfg.schedule != PipelineSchedule::OneFOneB {
        return;
    }
    // (stage, +1 at forward start / -1 at backward finish, time)
    let mut events: HashMap<u16, Vec<(f64, i32)>> = HashMap::new();
    let mut has_bwd = false;
    for (i, op) in trace.ops().iter().enumerate() {
        if let OpName::StagePass { stage, dir, .. } = op.name {
            match dir {
                PassDir::Fwd => events
                    .entry(stage)
                    .or_default()
                    .push((sched.windows[i].start.as_secs(), 1)),
                PassDir::Bwd => {
                    has_bwd = true;
                    events
                        .entry(stage)
                        .or_default()
                        .push((sched.windows[i].finish.as_secs(), -1));
                }
                PassDir::Dec => {}
            }
        }
    }
    if !has_bwd {
        return;
    }
    let mut stages: Vec<_> = events.into_iter().collect();
    stages.sort_by_key(|(s, _)| *s);
    for (stage, mut ev) in stages {
        // Releases before acquires at equal timestamps.
        ev.sort_by(|a, b| a.partial_cmp(b).expect("finite event times"));
        let mut in_flight = 0i32;
        let mut peak = 0i32;
        for (_, delta) in ev {
            in_flight += delta;
            peak = peak.max(in_flight);
        }
        if peak as usize > cfg.stages {
            out.push(Diagnostic::error(
                RuleId::InFlight,
                Location::Stage(stage),
                format!(
                    "1F1B keeps {peak} microbatches in flight on stage {stage}, above the \
                     pipeline depth {}",
                    cfg.stages
                ),
            ));
        }
    }
}

/// Shortest decode a steady-period check needs: the first tokens carry
/// the prefill-drain and pipeline-fill transient, so the rule examines
/// the last quarter of a decode run and wants that window clear of it.
const MIN_STEADY_DECODE: usize = 24;

/// Element-wise near-equality for per-group duration triples (engine
/// traces are exact on the duration grid; the slack only tolerates
/// non-quantized hand-built traces).
fn durations_match(a: &[f64; 3], b: &[f64; 3]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x - y).abs() <= 1e-12 * x.abs().max(y.abs()))
}

/// Steady-state decode periodicity of pipelined serve schedules.
///
/// With `m` microbatch groups in flight, decode token `t` costs each
/// stage `s` one compute op of duration `d_s(t)` per group plus blocking
/// collectives `comm_s(t)` and the P2P token send `send_s(t)`. Two
/// independent arguments bound how fast token completions can follow one
/// another in steady state:
///
/// - **traversal**: a group's token must cross every stage after its
///   previous token left the last one, so consecutive completions are at
///   least `chain(t) = Σ_s (d_s(t) + comm_s(t) + send_s(t))` apart;
/// - **throughput**: stage `s` serializes `m` compute ops per token on
///   its stream, so the steady period is at least `m · d_s(t)`.
///
/// The analytic period `P(t) = max(chain(t), max_s m·d_s(t))` is exact
/// for the engine's dense FIFO schedules: the measured inter-token gap
/// equals `P(t)` when durations are token-independent and lands in
/// `[P(t-1), P(t) + p·growth(t)]` when the KV read stretches decode
/// steps (the compute-bound regime lags the growth by one token, the
/// chain-bound regime leads it by up to one traversal). A gap below
/// `P(t-1)` is impossible for any legal schedule of the trace — error;
/// a gap above the upper edge means the scheduler left steady-state
/// throughput on the table — warning.
///
/// The rule quietly skips traces outside the closed form's domain:
/// decodes shorter than [`MIN_STEADY_DECODE`], groups with non-uniform
/// durations, or tokens with missing ops (those are flagged by the
/// structural rules instead).
fn check_steady_period(
    trace: &Trace,
    sched: &Schedule,
    cfg: &PipelineConfig,
    out: &mut VerifyReport,
) {
    let m = cfg.microbatches;
    let p = cfg.stages;
    if m == 0 || p == 0 {
        return;
    }
    // Per-(stage, token, group) durations: [compute, collectives, send].
    let mut per: HashMap<(usize, usize, usize), [f64; 3]> = HashMap::new();
    let mut decode_len = 0usize;
    for op in trace.ops() {
        if op.phase != Phase::Decode {
            continue;
        }
        let (stage, mb, slot) = match op.name {
            OpName::StagePass {
                stage,
                dir: PassDir::Dec,
                mb,
            } => (stage, mb, 0),
            OpName::StagePassColl {
                stage,
                dir: PassDir::Dec,
                mb,
                ..
            } => (stage, mb, 1),
            OpName::StageSendTok { stage, mb } => (stage, mb, 2),
            _ => continue,
        };
        let (s, t, g) = (stage as usize, mb as usize / m, mb as usize % m);
        if s >= p {
            return; // stage out of range: the structural rules flag it
        }
        decode_len = decode_len.max(t + 1);
        per.entry((s, t, g)).or_default()[slot] += op.duration.as_secs();
    }
    if decode_len < MIN_STEADY_DECODE {
        return;
    }
    // One duration triple per (stage, token), uniform across groups.
    let mut dur = vec![[0.0f64; 3]; p * decode_len];
    for s in 0..p {
        for t in 0..decode_len {
            let Some(base) = per.get(&(s, t, 0)) else {
                return;
            };
            for g in 1..m {
                match per.get(&(s, t, g)) {
                    Some(v) if durations_match(v, base) => {}
                    _ => return,
                }
            }
            dur[s * decode_len + t] = *base;
        }
    }
    let mut completion = vec![0.0f64; decode_len];
    for (i, op) in trace.ops().iter().enumerate() {
        let mb = match op.name {
            OpName::StagePass {
                dir: PassDir::Dec,
                mb,
                ..
            } if op.phase == Phase::Decode => mb,
            OpName::StagePassColl {
                dir: PassDir::Dec,
                mb,
                ..
            } if op.phase == Phase::Decode => mb,
            OpName::StageSendTok { mb, .. } => mb,
            _ => continue,
        };
        let t = mb as usize / m;
        let f = sched.windows[i].finish.as_secs();
        if f > completion[t] {
            completion[t] = f;
        }
    }
    let period = |t: usize| {
        let mut chain = 0.0f64;
        let mut throughput = 0.0f64;
        for s in 0..p {
            let [d, comm, send] = dur[s * decode_len + t];
            chain += d + comm + send;
            throughput = throughput.max(m as f64 * d);
        }
        chain.max(throughput)
    };
    // Steady window: the last quarter of the decode run (at least two
    // tokens), past the prefill-drain and fill transients.
    let lo = (decode_len - (decode_len / 4).max(2)).max(1);
    for t in lo..decode_len {
        let measured = completion[t] - completion[t - 1];
        let floor = period(t - 1);
        let ceiling = period(t);
        let growth: f64 = (0..p)
            .map(|s| (dur[s * decode_len + t][0] - dur[s * decode_len + t - 1][0]).max(0.0))
            .sum();
        let slack = growth * p as f64;
        let tol = 1e-9 * ceiling.max(1e-30);
        if measured + tol < floor {
            out.push(Diagnostic::error(
                RuleId::SteadyPeriod,
                Location::Global,
                format!(
                    "decode token {t} completes {measured:.6e}s after token {}, below the \
                     analytic steady period {floor:.6e}s — faster than the stage costs allow",
                    t - 1
                ),
            ));
        } else if measured > ceiling + slack + tol {
            out.push(Diagnostic::warn(
                RuleId::SteadyPeriod,
                Location::Global,
                format!(
                    "decode token {t} completes {measured:.6e}s after token {}, above the \
                     analytic steady period {ceiling:.6e}s (+ {slack:.1e}s KV-growth slack) — \
                     steady-state throughput left on the table",
                    t - 1
                ),
            ));
        }
    }
}

/// GPipe's fill-drain bubble cannot beat the analytic floor
/// `(p - 1) / (m + p - 1)`; a measured bubble below it means the schedule
/// overlapped work that the dependency structure forbids.
fn check_bubble_floor(
    trace: &Trace,
    sched: &Schedule,
    cfg: &PipelineConfig,
    out: &mut VerifyReport,
) {
    if cfg.schedule != PipelineSchedule::GPipe {
        return;
    }
    let ops = trace.ops();
    if ops.iter().any(|o| o.phase == Phase::Decode) {
        return; // serve traces have their own decode-stream shape
    }
    // Busy time per stage-compute stream and the span of the fwd/bwd
    // region, both excluding the update phase (the optimizer tail is not
    // part of the fill-drain argument).
    let mut busy: HashMap<u16, f64> = HashMap::new();
    let mut span = 0.0f64;
    for (i, op) in ops.iter().enumerate() {
        if op.phase == Phase::Update {
            continue;
        }
        span = span.max(sched.windows[i].finish.as_secs());
        if let StreamId::StageCompute(s) = op.stream {
            *busy.entry(s).or_default() += op.duration.as_secs();
        }
    }
    if busy.len() != cfg.stages || span <= 0.0 {
        return; // stage count mismatch is flagged elsewhere
    }
    let mean_busy = busy.values().sum::<f64>() / busy.len() as f64;
    let bubble = (1.0 - mean_busy / span).max(0.0);
    let floor = cfg.ideal_bubble_fraction();
    if bubble + 1e-9 < floor {
        out.push(Diagnostic::error(
            RuleId::BubbleFloor,
            Location::Global,
            format!(
                "measured GPipe bubble {bubble:.6} is below the analytic floor {floor:.6} \
                 for p={} m={}",
                cfg.stages, cfg.microbatches
            ),
        ));
    }
}
