//! The load-trace rules against real simulator output: a clean run
//! verifies clean (in both simulation modes, paged and unpaged), and
//! every targeted corruption of the ledger trips exactly the intended
//! rule.

use madmax_engine::{Scenario, SimMode};
use madmax_fault::{FaultEvent, FaultKind, RetryPolicy};
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_parallel::{LoadSpec, ServeConfig, Workload};
use madmax_serve::LoadTrace;
use madmax_verify::{verify_load, RuleId};

fn simulated_trace(spec: &LoadSpec, mode: SimMode) -> LoadTrace {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys).workload(Workload::serve(
        ServeConfig::new(128, 24).with_decode_batch(4),
    ));
    let costs = scenario.price_load(spec).unwrap();
    scenario
        .serve_load_priced(spec, &costs, mode, None)
        .unwrap()
        .trace
}

fn paged_spec() -> LoadSpec {
    LoadSpec::poisson(0.05, 10, 3)
        .with_kv_blocks(96)
        .with_eviction(true)
}

#[test]
fn clean_runs_verify_clean_in_both_modes() {
    for spec in [LoadSpec::poisson(0.2, 12, 7), paged_spec()] {
        for mode in [SimMode::Event, SimMode::PerToken] {
            let trace = simulated_trace(&spec, mode);
            let report = verify_load(&trace);
            assert!(report.is_clean(), "{mode:?}: {report}");
        }
    }
}

#[test]
fn reversed_lifecycle_timestamps_are_flagged() {
    let mut trace = simulated_trace(&LoadSpec::poisson(0.2, 8, 7), SimMode::Event);
    let rec = trace
        .records
        .iter_mut()
        .find(|r| r.completion.is_some())
        .unwrap();
    rec.completion = Some(rec.first_token.unwrap() - 1);
    let report = verify_load(&trace);
    assert!(report.has(RuleId::RequestLifecycle), "{report}");
}

#[test]
fn admission_before_arrival_is_flagged() {
    let mut trace = simulated_trace(&LoadSpec::poisson(0.2, 8, 7), SimMode::Event);
    let rec = trace
        .records
        .iter_mut()
        .find(|r| r.admitted.is_some() && r.arrival > 0)
        .unwrap();
    rec.arrival = rec.admitted.unwrap() + 1;
    let report = verify_load(&trace);
    assert!(report.has(RuleId::RequestLifecycle), "{report}");
}

#[test]
fn missing_decode_steps_are_flagged() {
    let mut trace = simulated_trace(&LoadSpec::poisson(0.2, 8, 7), SimMode::Event);
    // Drop one decode run: its participants now complete with fewer
    // steps than they requested.
    let dropped = trace.runs.pop().unwrap();
    assert!(!dropped.participants.is_empty());
    let report = verify_load(&trace);
    assert!(report.has(RuleId::RequestLifecycle), "{report}");
}

#[test]
fn overlapping_execution_spans_are_flagged() {
    let mut trace = simulated_trace(&LoadSpec::poisson(0.2, 8, 7), SimMode::Event);
    assert!(trace.prefills.len() >= 2);
    // Slide the second prefill into the first.
    let first_end = trace.prefills[0].end;
    let width = trace.prefills[1].end - trace.prefills[1].start;
    trace.prefills[1].start = first_end - 1;
    trace.prefills[1].end = first_end - 1 + width;
    let report = verify_load(&trace);
    assert!(report.has(RuleId::RequestLifecycle), "{report}");
}

#[test]
fn decode_without_resident_blocks_is_flagged() {
    let mut trace = simulated_trace(&paged_spec(), SimMode::Event);
    // Close one request's residency before its decode work ends.
    let run = trace.runs.last().unwrap();
    let victim = run.participants[0].request;
    let end = run.end;
    for span in &mut trace.residency {
        if span.request == victim && span.end.is_none_or(|e| e >= end) {
            span.end = Some(end - 1);
        }
    }
    let report = verify_load(&trace);
    assert!(report.has(RuleId::PagedKvResidency), "{report}");
}

#[test]
fn blown_block_budget_is_flagged() {
    let mut trace = simulated_trace(&paged_spec(), SimMode::Event);
    trace.total_blocks = Some(trace.peak_blocks - 1);
    let report = verify_load(&trace);
    assert!(report.has(RuleId::PagedKvResidency), "{report}");
}

#[test]
fn eviction_miscount_is_flagged() {
    let mut trace = simulated_trace(&paged_spec(), SimMode::Event);
    let rec = trace
        .records
        .iter_mut()
        .find(|r| r.admitted.is_some())
        .unwrap();
    rec.evictions += 1;
    let report = verify_load(&trace);
    assert!(report.has(RuleId::RequestLifecycle), "{report}");
}

/// A run with one fatal fault dropped mid-decode: the fault interrupts
/// at least one in-flight request, so the ledger carries real retry
/// accounting to corrupt.
fn faulty_trace(mode: SimMode) -> LoadTrace {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys).workload(Workload::serve(
        ServeConfig::new(128, 24).with_decode_batch(4),
    ));
    let spec = LoadSpec::poisson(0.2, 8, 7);
    let costs = scenario.price_load(&spec).unwrap();
    let clean = scenario
        .serve_load_priced(&spec, &costs, SimMode::Event, None)
        .unwrap()
        .trace;
    // Drop the fault into the middle of a real decode run so someone is
    // in flight when it lands.
    let probe = clean.runs.first().unwrap();
    let at = probe.start + (probe.end - probe.start) / 2;
    let fault = FaultEvent {
        at,
        until: at + (probe.end - probe.start),
        kind: FaultKind::Fatal,
        slots_lost: 1,
        slowdown_pct: 100,
    };
    let trace = scenario
        .serve_load_faulty(
            &spec,
            &costs,
            mode,
            &[fault],
            &RetryPolicy::retries(3),
            None,
        )
        .unwrap()
        .trace;
    assert!(
        trace.faults.iter().any(|s| !s.interrupted.is_empty()),
        "the fault must interrupt someone for the corruption tests to bite"
    );
    trace
}

#[test]
fn clean_faulty_runs_verify_clean_in_both_modes() {
    for mode in [SimMode::Event, SimMode::PerToken] {
        let trace = faulty_trace(mode);
        let report = verify_load(&trace);
        assert!(report.is_clean(), "{mode:?}: {report}");
    }
}

#[test]
fn retry_miscount_is_flagged() {
    let mut trace = faulty_trace(SimMode::Event);
    let victim = trace.faults[0].interrupted[0];
    trace.records[victim as usize].retries += 1;
    let report = verify_load(&trace);
    assert!(report.has(RuleId::FaultLedger), "{report}");
}

#[test]
fn retries_beyond_the_policy_ceiling_are_flagged() {
    let mut trace = faulty_trace(SimMode::Event);
    trace.retry_limit = Some(0);
    let report = verify_load(&trace);
    assert!(report.has(RuleId::FaultLedger), "{report}");
}

#[test]
fn failed_yet_completed_requests_are_flagged() {
    let mut trace = faulty_trace(SimMode::Event);
    let rec = trace
        .records
        .iter_mut()
        .find(|r| r.completion.is_some())
        .unwrap();
    rec.failed = rec.completion;
    let report = verify_load(&trace);
    assert!(report.has(RuleId::FaultLedger), "{report}");
}

#[test]
fn malformed_fault_spans_are_flagged() {
    let mut trace = faulty_trace(SimMode::Event);
    let span = &mut trace.faults[0];
    span.end = span.start - 1;
    let report = verify_load(&trace);
    assert!(report.has(RuleId::FaultLedger), "{report}");
}

#[test]
fn overbatched_degraded_windows_are_flagged() {
    let mut trace = faulty_trace(SimMode::Event);
    // Stretch the fault over the whole run with every slot lost: any
    // decode run with a participant now exceeds the degraded capacity.
    let slots = trace.slots;
    let end = trace.end;
    let span = &mut trace.faults[0];
    span.start = 0;
    span.end = end;
    span.slots_lost = slots;
    let report = verify_load(&trace);
    assert!(report.has(RuleId::FaultLedger), "{report}");
}
