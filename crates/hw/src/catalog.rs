//! Catalog of real devices and the paper's baseline systems
//! (Tables III and IV, plus the cloud-instance GPUs of Figs. 1 and 16).
//!
//! Bandwidth convention: vendor sheets quote NVLink-class scale-up links
//! bidirectionally (A100 "600 GB/s") and NICs unidirectionally
//! ("200 Gbps"). [`DeviceSpec`] stores per-device *unidirectional* values,
//! so scale-up figures are halved here, once. This makes Table III
//! (38.4 TB/s aggregate over 128 A100s = 300 GB/s/GPU) and Table IV
//! (A100 600 GB/s) mutually consistent. Three Table IV inter-node entries
//! are interpreted as Gbps NIC rates ("1.8TBps" SuperPOD = 1.8 Tbps,
//! "400GBps" MI300X = 400 Gbps, "300GBps" Gaudi2 = 300 Gbps); see DESIGN.md.

use crate::cluster::{ClusterSpec, FabricKind, Utilization};
use crate::device::{DeviceSpec, PeakFlops};
use crate::units::{ByteCount, BytesPerSec, FlopsPerSec};

fn peak(fp32: f64, tf32: f64, fp16: f64) -> PeakFlops {
    PeakFlops {
        fp32: FlopsPerSec::from_tflops(fp32),
        tf32: FlopsPerSec::from_tflops(tf32),
        fp16: FlopsPerSec::from_tflops(fp16),
    }
}

/// NVIDIA A100 40 GB SXM (Table IV row 1).
pub fn a100_40gb() -> DeviceSpec {
    DeviceSpec::new(
        "A100-40GB",
        peak(19.5, 156.0, 312.0),
        ByteCount::from_gb(40.0),
        BytesPerSec::from_gb(1555.0),
        BytesPerSec::from_gb(300.0),   // 600 GB/s bidirectional NVLink3
        BytesPerSec::from_gbps(200.0), // 200 Gbps RoCE/IB NIC
    )
}

/// NVIDIA A100 80 GB SXM (the LLaMA training-system device of Table III).
pub fn a100_80gb() -> DeviceSpec {
    DeviceSpec::new(
        "A100-80GB",
        peak(19.5, 156.0, 312.0),
        ByteCount::from_gb(80.0),
        BytesPerSec::from_gb(1935.0),
        BytesPerSec::from_gb(300.0),
        BytesPerSec::from_gbps(200.0),
    )
}

/// NVIDIA H100 SXM with the paper's derated figures (Table IV row 2).
pub fn h100() -> DeviceSpec {
    DeviceSpec::new(
        "H100",
        peak(67.0, 378.0, 756.0),
        ByteCount::from_gb(80.0),
        BytesPerSec::from_gb(2000.0),
        BytesPerSec::from_gb(450.0),   // 900 GB/s bidirectional NVLink4
        BytesPerSec::from_gbps(400.0), // 400 Gbps NDR IB
    )
}

/// H100 in a SuperPOD: NVLink replaces the scale-out fabric for up to 256
/// GPUs, giving ~4.5x the DGX H100's inter-node bandwidth (Table IV row 3).
pub fn h100_superpod() -> DeviceSpec {
    let mut d = h100();
    d.name = "H100-SuperPOD".to_owned();
    d.inter_node_bw = BytesPerSec::from_gbps(1800.0); // 1.8 Tbps
    d
}

/// AMD Instinct MI250X (Table IV row 4).
pub fn mi250x() -> DeviceSpec {
    DeviceSpec::new(
        "MI250X",
        peak(47.9, 96.0, 383.0),
        ByteCount::from_gb(128.0),
        BytesPerSec::from_gb(3200.0),
        BytesPerSec::from_gb(250.0), // 500 GB/s bidirectional Infinity Fabric
        BytesPerSec::from_gbps(200.0),
    )
}

/// AMD Instinct MI300X (Table IV row 5).
pub fn mi300x() -> DeviceSpec {
    DeviceSpec::new(
        "MI300X",
        peak(163.4, 654.0, 1307.0),
        ByteCount::from_gb(192.0),
        BytesPerSec::from_gb(5300.0),
        BytesPerSec::from_gb(448.0), // 896 GB/s bidirectional
        BytesPerSec::from_gbps(400.0),
    )
}

/// Intel Gaudi2 (Table IV row 6); scale-up is 21x100 GbE RoCE ports.
pub fn gaudi2() -> DeviceSpec {
    DeviceSpec::new(
        "Gaudi2",
        peak(100.0, 200.0, 400.0),
        ByteCount::from_gb(96.0),
        BytesPerSec::from_gb(2450.0),
        BytesPerSec::from_gb(131.25), // 262.5 GB/s bidirectional
        BytesPerSec::from_gbps(300.0),
    )
}

/// NVIDIA V100 SXM2 (cloud-instance studies, Figs. 1 and 16). V100 has no
/// TF32 mode; the tensor-core FP16 rate and plain FP32 rate bracket it, and
/// we map `tf32` to the FP32 rate as the paper's normalization does.
pub fn v100(hbm_gb: f64) -> DeviceSpec {
    DeviceSpec::new(
        format!("V100-{hbm_gb:.0}GB"),
        peak(15.7, 15.7, 125.0),
        ByteCount::from_gb(hbm_gb),
        BytesPerSec::from_gb(900.0),
        BytesPerSec::from_gb(150.0), // 300 GB/s bidirectional NVLink2
        BytesPerSec::from_gbps(100.0),
    )
}

/// The 128-GPU ZionEX DLRM training system (Table III, left column):
/// 16 nodes x 8 A100-40GB, RoCE scale-out.
pub fn zionex_dlrm_system() -> ClusterSpec {
    ClusterSpec::new(
        "ZionEX (DLRM training system)",
        a100_40gb(),
        8,
        16,
        FabricKind::NvLink,
        FabricKind::RoCE,
    )
}

/// The 2048-GPU LLaMA training system (Table III, right column):
/// 256 nodes x 8 A100-80GB, InfiniBand scale-out.
pub fn llama_llm_system() -> ClusterSpec {
    ClusterSpec::new(
        "LLaMA (LLM training system)",
        a100_80gb(),
        8,
        256,
        FabricKind::InfiniBand,
        FabricKind::InfiniBand,
    )
}

/// An H100 DGX cluster with `num_nodes` nodes of 8 (Fig. 17).
pub fn h100_cluster(num_nodes: usize) -> ClusterSpec {
    ClusterSpec::new(
        "H100 DGX cluster",
        h100(),
        8,
        num_nodes,
        FabricKind::NvLink,
        FabricKind::InfiniBand,
    )
}

/// An H100 SuperPOD cluster with `num_nodes` nodes of 8 (Fig. 17). NVLink
/// serves as the scale-out fabric for up to 256 GPUs.
///
/// # Panics
///
/// Panics if the configuration exceeds the 256-GPU NVLink domain.
pub fn h100_superpod_cluster(num_nodes: usize) -> ClusterSpec {
    assert!(
        num_nodes * 8 <= 256,
        "SuperPOD NVLink domain is limited to 256 GPUs"
    );
    ClusterSpec::new(
        "H100 SuperPOD",
        h100_superpod(),
        8,
        num_nodes,
        FabricKind::NvLink,
        FabricKind::NvLink,
    )
}

/// A 128-device MI250X cluster following the CDNA2 reference scale-out
/// design (Fig. 18).
pub fn mi250x_cluster() -> ClusterSpec {
    ClusterSpec::new(
        "MI250X cluster",
        mi250x(),
        8,
        16,
        FabricKind::InfinityFabric,
        FabricKind::RoCE,
    )
}

/// A 128-device MI300X cluster following the CDNA3 reference scale-out
/// design (Fig. 18).
pub fn mi300x_cluster() -> ClusterSpec {
    ClusterSpec::new(
        "MI300X cluster",
        mi300x(),
        8,
        16,
        FabricKind::InfinityFabric,
        FabricKind::RoCE,
    )
}

/// A 128-device Gaudi2 cluster following the Intel Developer Cloud
/// benchmarking setup (Fig. 18).
pub fn gaudi2_cluster() -> ClusterSpec {
    ClusterSpec::new(
        "Gaudi2 cluster",
        gaudi2(),
        8,
        16,
        FabricKind::EthRdmaScaleUp,
        FabricKind::RoCE,
    )
}

/// Utilization factors calibrated against the paper's DLRM validation
/// points (Table I / Fig. 7); see `madmax-core/src/validation.rs`.
pub fn calibrated_dlrm_utilization() -> Utilization {
    Utilization {
        compute: 0.70,
        hbm: 0.80,
        ring_collective: 0.80,
        all_to_all: 0.70,
    }
}

/// One row of Table IV exactly as printed in the paper (datasheet strings,
/// before the unidirectional normalization described in the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableIvRow {
    /// Device name.
    pub device: &'static str,
    /// "FP-16/32 FLOPS" column.
    pub flops: &'static str,
    /// "HBM Capacity, BW" column.
    pub hbm: &'static str,
    /// "Intra-Node BW (per-device)" column.
    pub intra: &'static str,
    /// "Inter-Node BW (per device)" column.
    pub inter: &'static str,
}

/// The six rows of Table IV.
pub const TABLE_IV: [TableIvRow; 6] = [
    TableIvRow {
        device: "A100",
        flops: "312, 156 TFLOPS",
        hbm: "40GB, 1.6TB/s",
        intra: "600GB/s",
        inter: "200Gbps",
    },
    TableIvRow {
        device: "H100",
        flops: "756, 378 TFLOPS",
        hbm: "80GB, 2TB/s",
        intra: "900GB/s",
        inter: "400Gbps",
    },
    TableIvRow {
        device: "H100 SuperPOD",
        flops: "756, 378 TFLOPS",
        hbm: "80GB, 2TB/s",
        intra: "900GB/s",
        inter: "1.8Tbps",
    },
    TableIvRow {
        device: "MI250X",
        flops: "383, 96 TFLOPS",
        hbm: "128GB, 3.2TB/s",
        intra: "500GB/s",
        inter: "200Gbps",
    },
    TableIvRow {
        device: "MI300X",
        flops: "1307, 654 TFLOPS",
        hbm: "192GB, 5.3TB/s",
        intra: "896GB/s",
        inter: "400Gbps",
    },
    TableIvRow {
        device: "Gaudi2",
        flops: "400, 200 TFLOPS",
        hbm: "96GB, 2.5TB/s",
        intra: "262.5GB/s",
        inter: "300Gbps",
    },
];

/// Devices of [`TABLE_IV`] as model-facing specs, in the same order.
pub fn table_iv_devices() -> Vec<DeviceSpec> {
    vec![
        a100_40gb(),
        h100(),
        h100_superpod(),
        mi250x(),
        mi300x(),
        gaudi2(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::CommLevel;

    #[test]
    fn zionex_matches_table_iii() {
        let sys = zionex_dlrm_system();
        assert_eq!(sys.total_devices(), 128);
        assert_eq!(sys.devices_per_node, 8);
        assert_eq!(sys.num_nodes, 16);
        // Peak TF32 throughput: 20 PFLOPS.
        assert!((sys.aggregate_peak_tf32().as_pflops() - 20.0).abs() < 0.1);
        // HBM capacity: 5 TB.
        assert!((sys.aggregate_hbm_capacity().as_tb() - 5.12).abs() < 0.2);
        // HBM bandwidth: 199 TB/s.
        assert!((sys.aggregate_hbm_bw().as_tb() - 199.0).abs() < 1.0);
        // Intra-node interconnect: 38.4 TB/s unidirectional.
        assert!((sys.aggregate_link_bw(CommLevel::IntraNode).as_tb() - 38.4).abs() < 0.1);
        // Inter-node interconnect: 25.6 Tbps unidirectional.
        assert!((sys.aggregate_link_bw(CommLevel::InterNode).as_gbps() - 25_600.0).abs() < 1.0);
    }

    #[test]
    fn llama_system_matches_table_iii() {
        let sys = llama_llm_system();
        assert_eq!(sys.total_devices(), 2048);
        // 319 PFLOPS peak TF32.
        assert!((sys.aggregate_peak_tf32().as_pflops() - 319.0).abs() < 1.0);
        // 164 TB HBM.
        assert!((sys.aggregate_hbm_capacity().as_tb() - 163.8).abs() < 0.5);
        // 3.96 PB/s HBM bandwidth.
        assert!((sys.aggregate_hbm_bw().as_tb() - 3963.0).abs() < 5.0);
        // 614.4 TB/s intra-node aggregate.
        assert!((sys.aggregate_link_bw(CommLevel::IntraNode).as_tb() - 614.4).abs() < 0.5);
        // 409.6 Tbps inter-node aggregate.
        assert!((sys.aggregate_link_bw(CommLevel::InterNode).as_gbps() - 409_600.0).abs() < 1.0);
    }

    #[test]
    fn h100_improvement_ratios_match_insight_10() {
        // From A100 to H100 the paper quotes compute 2.42x, capacity 2x,
        // bandwidth 1.29x, intra 1.5x, inter 2x (9x for SuperPOD).
        let a = a100_40gb();
        let h = h100();
        assert!((h.peak.tf32 / a.peak.tf32 - 2.42).abs() < 0.01);
        assert!((h.hbm_capacity / a.hbm_capacity - 2.0).abs() < 1e-9);
        assert!((h.hbm_bw / a.hbm_bw - 1.286).abs() < 0.01);
        assert!((h.intra_node_bw / a.intra_node_bw - 1.5).abs() < 1e-9);
        assert!((h.inter_node_bw / a.inter_node_bw - 2.0).abs() < 1e-9);
        let sp = h100_superpod();
        assert!((sp.inter_node_bw / a.inter_node_bw - 9.0).abs() < 1e-9);
        // SuperPOD = 4.5x the H100 DGX inter-node bandwidth.
        assert!((sp.inter_node_bw / h.inter_node_bw - 4.5).abs() < 1e-9);
    }

    #[test]
    fn superpod_cluster_rejects_oversize() {
        let c = h100_superpod_cluster(32);
        assert_eq!(c.total_devices(), 256);
        let r = std::panic::catch_unwind(|| h100_superpod_cluster(33));
        assert!(r.is_err());
    }

    #[test]
    fn table_iv_has_all_devices() {
        assert_eq!(TABLE_IV.len(), table_iv_devices().len());
        for (row, dev) in TABLE_IV.iter().zip(table_iv_devices()) {
            assert!(
                dev.name
                    .to_lowercase()
                    .starts_with(&row.device.split(' ').next().unwrap().to_lowercase()),
                "row {row:?} vs device {}",
                dev.name
            );
        }
    }

    #[test]
    fn commodity_clusters_are_128_devices() {
        for c in [mi250x_cluster(), mi300x_cluster(), gaudi2_cluster()] {
            assert_eq!(c.total_devices(), 128, "{}", c.name);
        }
    }

    #[test]
    fn v100_spec() {
        let v = v100(16.0);
        assert_eq!(v.hbm_capacity.as_gb(), 16.0);
        assert_eq!(v.peak.fp16.as_tflops(), 125.0);
    }
}
