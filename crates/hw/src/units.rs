//! Typed scalar units used throughout MAD-Max.
//!
//! All quantities in the performance model are plain `f64`s wrapped in
//! newtypes so that the type system distinguishes, e.g., a byte count from a
//! bandwidth ([C-NEWTYPE]). Dividing a [`ByteCount`] by a [`BytesPerSec`]
//! yields [`Seconds`]; dividing a [`FlopCount`] by a [`FlopsPerSec`] yields
//! [`Seconds`]. These are the two fundamental cost equations of the paper
//! (Section IV-B).
//!
//! # Examples
//!
//! ```
//! use madmax_hw::units::{ByteCount, BytesPerSec};
//!
//! let bytes = ByteCount::from_mib(256.0);
//! let bw = BytesPerSec::from_gb(25.0); // a 200 Gbps NIC
//! let t = bytes / bw;
//! assert!((t.as_secs() - 256.0 * 1024.0 * 1024.0 / 25e9).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in base units.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero value.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in base units.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` when the value is exactly zero.
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` when the value is finite (not NaN/inf).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Element-wise maximum.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Element-wise minimum.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio between two quantities of the same unit.
        impl Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

unit_newtype!(
    /// A count of floating-point operations.
    FlopCount,
    "FLOPs"
);
unit_newtype!(
    /// A count of bytes (stored as `f64`; averages may be fractional).
    ByteCount,
    "B"
);
unit_newtype!(
    /// A duration in seconds.
    Seconds,
    "s"
);
unit_newtype!(
    /// A compute rate in FLOP/s.
    FlopsPerSec,
    "FLOP/s"
);
unit_newtype!(
    /// A data rate in bytes/s.
    BytesPerSec,
    "B/s"
);

pub(crate) const KIB: f64 = 1024.0;
pub(crate) const MIB: f64 = 1024.0 * 1024.0;
pub(crate) const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl FlopCount {
    /// Constructs from mega-FLOPs (1e6).
    pub fn from_mflops(v: f64) -> Self {
        Self(v * 1e6)
    }

    /// Constructs from giga-FLOPs (1e9).
    pub fn from_gflops(v: f64) -> Self {
        Self(v * 1e9)
    }

    /// Constructs from tera-FLOPs (1e12).
    pub fn from_tflops(v: f64) -> Self {
        Self(v * 1e12)
    }

    /// Value expressed in giga-FLOPs.
    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }

    /// Value expressed in mega-FLOPs.
    pub fn as_mflops(self) -> f64 {
        self.0 / 1e6
    }
}

impl ByteCount {
    /// Constructs from kibibytes (1024 B).
    pub fn from_kib(v: f64) -> Self {
        Self(v * KIB)
    }

    /// Constructs from mebibytes (1024^2 B).
    pub fn from_mib(v: f64) -> Self {
        Self(v * MIB)
    }

    /// Constructs from gibibytes (1024^3 B).
    pub fn from_gib(v: f64) -> Self {
        Self(v * GIB)
    }

    /// Constructs from decimal gigabytes (1e9 B), the unit of GPU data sheets.
    pub fn from_gb(v: f64) -> Self {
        Self(v * 1e9)
    }

    /// Constructs from decimal terabytes (1e12 B).
    pub fn from_tb(v: f64) -> Self {
        Self(v * 1e12)
    }

    /// Value in kibibytes.
    pub fn as_kib(self) -> f64 {
        self.0 / KIB
    }

    /// Value in mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 / MIB
    }

    /// Value in gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 / GIB
    }

    /// Value in decimal gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 / 1e9
    }

    /// Value in decimal terabytes.
    pub fn as_tb(self) -> f64 {
        self.0 / 1e12
    }
}

impl Seconds {
    /// Constructs from milliseconds.
    pub fn from_ms(v: f64) -> Self {
        Self(v / 1e3)
    }

    /// Constructs from microseconds.
    pub fn from_us(v: f64) -> Self {
        Self(v / 1e6)
    }

    /// Constructs from hours.
    pub fn from_hours(v: f64) -> Self {
        Self(v * 3600.0)
    }

    /// Constructs from days.
    pub fn from_days(v: f64) -> Self {
        Self(v * 86_400.0)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// Value in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Value in days.
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }
}

impl FlopsPerSec {
    /// Constructs from teraFLOP/s.
    pub fn from_tflops(v: f64) -> Self {
        Self(v * 1e12)
    }

    /// Constructs from petaFLOP/s.
    pub fn from_pflops(v: f64) -> Self {
        Self(v * 1e15)
    }

    /// Value in teraFLOP/s.
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    /// Value in petaFLOP/s.
    pub fn as_pflops(self) -> f64 {
        self.0 / 1e15
    }
}

impl BytesPerSec {
    /// Constructs from decimal GB/s (NVLink-style spec values).
    pub fn from_gb(v: f64) -> Self {
        Self(v * 1e9)
    }

    /// Constructs from decimal TB/s (HBM-style spec values).
    pub fn from_tb(v: f64) -> Self {
        Self(v * 1e12)
    }

    /// Constructs from gigabits/s (NIC-style spec values).
    pub fn from_gbps(v: f64) -> Self {
        Self(v * 1e9 / 8.0)
    }

    /// Value in decimal GB/s.
    pub fn as_gb(self) -> f64 {
        self.0 / 1e9
    }

    /// Value in decimal TB/s.
    pub fn as_tb(self) -> f64 {
        self.0 / 1e12
    }

    /// Value in gigabits/s.
    pub fn as_gbps(self) -> f64 {
        self.0 * 8.0 / 1e9
    }
}

impl Div<BytesPerSec> for ByteCount {
    type Output = Seconds;
    /// Transfer time of a payload over a channel: the paper's
    /// bandwidth-bound cost equation.
    fn div(self, rhs: BytesPerSec) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<FlopsPerSec> for FlopCount {
    type Output = Seconds;
    /// Execution time of a compute block: the paper's compute-bound cost
    /// equation.
    fn div(self, rhs: FlopsPerSec) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for BytesPerSec {
    type Output = ByteCount;
    fn mul(self, rhs: Seconds) -> ByteCount {
        ByteCount(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for FlopsPerSec {
    type Output = FlopCount;
    fn mul(self, rhs: Seconds) -> FlopCount {
        FlopCount(self.0 * rhs.0)
    }
}

/// Formats a byte count with a human-scale suffix (KB/MB/GB/TB, decimal).
///
/// ```
/// assert_eq!(madmax_hw::units::human_bytes(22.61e6), "22.61 MB");
/// ```
pub fn human_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= 1e12 {
        format!("{:.2} TB", bytes / 1e12)
    } else if abs >= 1e9 {
        format!("{:.2} GB", bytes / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2} MB", bytes / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2} KB", bytes / 1e3)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a FLOP count with a human-scale suffix (M/B/T, "B" = 1e9 as used
/// in the paper's Table II).
pub fn human_flops(flops: f64) -> String {
    let abs = flops.abs();
    if abs >= 1e12 {
        format!("{:.2} T", flops / 1e12)
    } else if abs >= 1e9 {
        format!("{:.2} B", flops / 1e9)
    } else if abs >= 1e6 {
        format!("{:.1} M", flops / 1e6)
    } else {
        format!("{flops:.0}")
    }
}

/// Formats a parameter count the way the paper does (e.g. "793B", "1.8T").
pub fn human_params(params: f64) -> String {
    let abs = params.abs();
    if abs >= 1e12 {
        format!("{:.2}T", params / 1e12)
    } else if abs >= 1e9 {
        format!("{:.1}B", params / 1e9)
    } else if abs >= 1e6 {
        format!("{:.1}M", params / 1e6)
    } else {
        format!("{params:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_over_bandwidth_is_seconds() {
        let t = ByteCount::from_gb(50.0) / BytesPerSec::from_gb(25.0);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flops_over_rate_is_seconds() {
        let t = FlopCount::from_tflops(312.0) / FlopsPerSec::from_tflops(156.0);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gbps_is_bits() {
        // A 200 Gbps NIC moves 25 GB/s.
        let bw = BytesPerSec::from_gbps(200.0);
        assert!((bw.as_gb() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_round_trip() {
        let a = Seconds::from_ms(67.4);
        let b = Seconds::from_ms(32.6);
        assert!(((a + b).as_ms() - 100.0).abs() < 1e-9);
        assert!(((a - b).as_ms() - 34.8).abs() < 1e-9);
        assert!(((a * 2.0).as_ms() - 134.8).abs() < 1e-9);
        assert!((a / b - 67.4 / 32.6).abs() < 1e-12);
    }

    #[test]
    fn sum_and_ordering() {
        let parts = [Seconds::from_ms(1.0), Seconds::from_ms(2.0)];
        let total: Seconds = parts.iter().copied().sum();
        assert!((total.as_ms() - 3.0).abs() < 1e-12);
        assert!(parts[0] < parts[1]);
        assert_eq!(parts[0].max(parts[1]), parts[1]);
        assert_eq!(parts[0].min(parts[1]), parts[0]);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(22.61e6), "22.61 MB");
        assert_eq!(human_bytes(49.2e3), "49.20 KB");
        assert_eq!(human_params(793e9), "793.0B");
        assert_eq!(human_params(1.8e12), "1.80T");
        assert_eq!(human_flops(638e6), "638.0 M");
        assert_eq!(human_flops(350e9), "350.00 B");
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Seconds::new(1.5)), "1.5 s");
        assert_eq!(format!("{}", ByteCount::new(8.0)), "8 B");
    }

    #[test]
    fn zero_and_finite() {
        assert!(Seconds::ZERO.is_zero());
        assert!(Seconds::new(1.0).is_finite());
        assert!(!Seconds::new(f64::NAN).is_finite());
    }

    #[test]
    fn rate_times_time() {
        let moved = BytesPerSec::from_gb(10.0) * Seconds::new(3.0);
        assert!((moved.as_gb() - 30.0).abs() < 1e-9);
        let done = FlopsPerSec::from_tflops(2.0) * Seconds::new(0.5);
        assert!((done.as_gflops() - 1000.0).abs() < 1e-6);
    }
}
