//! Per-accelerator specifications.

use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::units::{ByteCount, BytesPerSec, FlopsPerSec};

/// Peak matrix throughput of a device for each supported precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakFlops {
    /// Non-tensor-core FP32 rate.
    pub fp32: FlopsPerSec,
    /// Tensor-core TF32 rate (or the closest fp32-matrix analog on
    /// non-NVIDIA hardware).
    pub tf32: FlopsPerSec,
    /// Tensor-core FP16/BF16 rate.
    pub fp16: FlopsPerSec,
}

impl PeakFlops {
    /// Peak rate for a given compute precision.
    pub fn rate(&self, dtype: DType) -> FlopsPerSec {
        match dtype {
            DType::Fp32 => self.fp32,
            DType::Tf32 => self.tf32,
            DType::Fp16 | DType::Bf16 => self.fp16,
        }
    }
}

/// A single accelerator (GPU or ASIC) as characterized by its data sheet.
///
/// All interconnect bandwidths stored here are **per-device,
/// unidirectional** values, which is the quantity the collective bandwidth
/// model consumes. Catalog constructors convert vendor figures (which quote
/// NVLink-class links bidirectionally) once, at construction time; see
/// `DESIGN.md` section 3 for the convention.
///
/// ```
/// use madmax_hw::catalog;
/// let a100 = catalog::a100_40gb();
/// assert_eq!(a100.hbm_capacity.as_gb().round(), 40.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name, e.g. `"A100-40GB"`.
    pub name: String,
    /// Peak matrix throughput by precision.
    pub peak: PeakFlops,
    /// On-device high-bandwidth-memory capacity.
    pub hbm_capacity: ByteCount,
    /// Peak HBM bandwidth.
    pub hbm_bw: BytesPerSec,
    /// Per-device unidirectional scale-up (intra-node) bandwidth.
    pub intra_node_bw: BytesPerSec,
    /// Per-device unidirectional scale-out (inter-node) bandwidth.
    pub inter_node_bw: BytesPerSec,
}

impl DeviceSpec {
    /// Creates a new device spec.
    ///
    /// Prefer the constructors in [`crate::catalog`] for real hardware.
    pub fn new(
        name: impl Into<String>,
        peak: PeakFlops,
        hbm_capacity: ByteCount,
        hbm_bw: BytesPerSec,
        intra_node_bw: BytesPerSec,
        inter_node_bw: BytesPerSec,
    ) -> Self {
        Self {
            name: name.into(),
            peak,
            hbm_capacity,
            hbm_bw,
            intra_node_bw,
            inter_node_bw,
        }
    }

    /// Returns a copy with independently scaled capabilities — the knob used
    /// by the paper's future-technologies study (Fig. 19), where compute,
    /// memory capacity/bandwidth, and interconnect bandwidths are improved
    /// separately or concurrently.
    #[must_use]
    pub fn scaled(&self, s: &DeviceScaling) -> Self {
        Self {
            name: format!("{}{}", self.name, s.suffix()),
            peak: PeakFlops {
                fp32: self.peak.fp32 * s.compute,
                tf32: self.peak.tf32 * s.compute,
                fp16: self.peak.fp16 * s.compute,
            },
            hbm_capacity: self.hbm_capacity * s.mem_capacity,
            hbm_bw: self.hbm_bw * s.mem_bw,
            intra_node_bw: self.intra_node_bw * s.intra_bw,
            inter_node_bw: self.inter_node_bw * s.inter_bw,
        }
    }
}

/// Multiplicative scaling factors for a [`DeviceSpec`] (Fig. 19 study).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceScaling {
    /// Factor applied to all peak FLOPS rates.
    pub compute: f64,
    /// Factor applied to HBM capacity.
    pub mem_capacity: f64,
    /// Factor applied to HBM bandwidth.
    pub mem_bw: f64,
    /// Factor applied to intra-node interconnect bandwidth.
    pub intra_bw: f64,
    /// Factor applied to inter-node interconnect bandwidth.
    pub inter_bw: f64,
}

impl Default for DeviceScaling {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl DeviceScaling {
    /// No scaling.
    pub const IDENTITY: Self = Self {
        compute: 1.0,
        mem_capacity: 1.0,
        mem_bw: 1.0,
        intra_bw: 1.0,
        inter_bw: 1.0,
    };

    /// Scales only compute throughput.
    pub fn compute_only(x: f64) -> Self {
        Self {
            compute: x,
            ..Self::IDENTITY
        }
    }

    /// Scales only memory capacity.
    pub fn mem_capacity_only(x: f64) -> Self {
        Self {
            mem_capacity: x,
            ..Self::IDENTITY
        }
    }

    /// Scales only memory bandwidth.
    pub fn mem_bw_only(x: f64) -> Self {
        Self {
            mem_bw: x,
            ..Self::IDENTITY
        }
    }

    /// Scales only intra-node interconnect bandwidth.
    pub fn intra_bw_only(x: f64) -> Self {
        Self {
            intra_bw: x,
            ..Self::IDENTITY
        }
    }

    /// Scales only inter-node interconnect bandwidth.
    pub fn inter_bw_only(x: f64) -> Self {
        Self {
            inter_bw: x,
            ..Self::IDENTITY
        }
    }

    /// Scales every capability concurrently.
    pub fn all(x: f64) -> Self {
        Self {
            compute: x,
            mem_capacity: x,
            mem_bw: x,
            intra_bw: x,
            inter_bw: x,
        }
    }

    fn suffix(&self) -> String {
        if *self == Self::IDENTITY {
            String::new()
        } else {
            format!(
                " (x{:.0}c/{:.0}m/{:.0}mb/{:.0}i/{:.0}e)",
                self.compute, self.mem_capacity, self.mem_bw, self.intra_bw, self.inter_bw
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DeviceSpec {
        DeviceSpec::new(
            "toy",
            PeakFlops {
                fp32: FlopsPerSec::from_tflops(10.0),
                tf32: FlopsPerSec::from_tflops(100.0),
                fp16: FlopsPerSec::from_tflops(200.0),
            },
            ByteCount::from_gb(40.0),
            BytesPerSec::from_tb(1.5),
            BytesPerSec::from_gb(300.0),
            BytesPerSec::from_gbps(200.0),
        )
    }

    #[test]
    fn rate_per_dtype() {
        let d = toy();
        assert_eq!(d.peak.rate(DType::Fp32).as_tflops(), 10.0);
        assert_eq!(d.peak.rate(DType::Tf32).as_tflops(), 100.0);
        assert_eq!(d.peak.rate(DType::Fp16).as_tflops(), 200.0);
        assert_eq!(d.peak.rate(DType::Bf16).as_tflops(), 200.0);
    }

    #[test]
    fn scaling_applies_independently() {
        let d = toy();
        let s = d.scaled(&DeviceScaling::compute_only(10.0));
        assert_eq!(s.peak.tf32.as_tflops(), 1000.0);
        assert_eq!(s.hbm_capacity, d.hbm_capacity);
        assert_eq!(s.inter_node_bw, d.inter_node_bw);

        let s = d.scaled(&DeviceScaling::inter_bw_only(10.0));
        assert!((s.inter_node_bw.as_gbps() - 2000.0).abs() < 1e-6);
        assert_eq!(s.peak.tf32, d.peak.tf32);
    }

    #[test]
    fn scaling_all_is_uniform() {
        let d = toy();
        let s = d.scaled(&DeviceScaling::all(10.0));
        assert_eq!(s.peak.fp32.as_tflops(), 100.0);
        assert_eq!(s.hbm_capacity.as_gb(), 400.0);
        assert!((s.hbm_bw.as_tb() - 15.0).abs() < 1e-9);
        assert_eq!(s.intra_node_bw.as_gb(), 3000.0);
    }

    #[test]
    fn identity_scaling_keeps_name() {
        let d = toy();
        let s = d.scaled(&DeviceScaling::IDENTITY);
        assert_eq!(s.name, "toy");
        assert_eq!(s, d);
    }
}
