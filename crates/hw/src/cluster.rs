//! Multi-node distributed-system specifications.

use serde::{Deserialize, Serialize};

use crate::device::{DeviceScaling, DeviceSpec};
use crate::units::{ByteCount, BytesPerSec, FlopsPerSec};

/// Interconnect technology of a communication channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricKind {
    /// NVIDIA NVLink / NVSwitch scale-up fabric.
    NvLink,
    /// AMD Infinity Fabric (xGMI).
    InfinityFabric,
    /// On-package RoCE links (Gaudi-style scale-up).
    EthRdmaScaleUp,
    /// InfiniBand scale-out fabric.
    InfiniBand,
    /// RDMA over Converged Ethernet scale-out fabric.
    RoCE,
}

impl std::fmt::Display for FabricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FabricKind::NvLink => "NVLink",
            FabricKind::InfinityFabric => "Infinity Fabric",
            FabricKind::EthRdmaScaleUp => "RoCE scale-up",
            FabricKind::InfiniBand => "InfiniBand",
            FabricKind::RoCE => "RoCE",
        };
        f.write_str(s)
    }
}

/// Hierarchy level of a communication channel.
///
/// The paper's collective models pick bandwidths by level: All2All is bound
/// by the *slowest* level it spans, AllReduce mixes both levels
/// (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommLevel {
    /// Within a node (e.g. NVLink).
    IntraNode,
    /// Across nodes (e.g. InfiniBand / RoCE).
    InterNode,
}

impl std::fmt::Display for CommLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommLevel::IntraNode => f.write_str("intra-node"),
            CommLevel::InterNode => f.write_str("inter-node"),
        }
    }
}

/// Empirical utilization factors in `[0, 1]` applied to peak rates.
///
/// The paper incorporates compute utilization (~0.70 for A100 on the layers
/// of interest), HBM utilization (~0.80 for embedding bags), and effective
/// collective bandwidths derived from real NCCL measurements. They are
/// exposed here as tunable spec fields (Section IV-B/C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// SM/matrix-unit utilization for compute blocks.
    pub compute: f64,
    /// HBM bandwidth utilization for embedding lookups.
    pub hbm: f64,
    /// Link utilization achieved by AllReduce/AllGather/ReduceScatter rings.
    pub ring_collective: f64,
    /// Link utilization achieved by All2All (point-to-point send/recv).
    pub all_to_all: f64,
}

impl Default for Utilization {
    fn default() -> Self {
        Self {
            compute: 0.70,
            hbm: 0.80,
            ring_collective: 0.80,
            all_to_all: 0.70,
        }
    }
}

impl Utilization {
    /// Validates that every factor lies in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range factor.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("compute", self.compute),
            ("hbm", self.hbm),
            ("ring_collective", self.ring_collective),
            ("all_to_all", self.all_to_all),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("utilization factor `{name}` = {v} outside (0, 1]"));
            }
        }
        Ok(())
    }
}

/// A distributed training/inference system: homogeneous devices arranged in
/// nodes connected by a two-level interconnect hierarchy (Table III).
///
/// ```
/// use madmax_hw::catalog;
/// let sys = catalog::zionex_dlrm_system();
/// assert_eq!(sys.total_devices(), 128);
/// assert_eq!(sys.aggregate_peak_tf32().as_pflops().round(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// System name, e.g. `"ZionEX (DLRM training system)"`.
    pub name: String,
    /// The accelerator populating every slot.
    pub device: DeviceSpec,
    /// Accelerators per node (8 for every system in the paper).
    pub devices_per_node: usize,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Scale-up fabric technology.
    pub intra_fabric: FabricKind,
    /// Scale-out fabric technology.
    pub inter_fabric: FabricKind,
    /// Empirical utilization factors.
    pub utilization: Utilization,
}

impl ClusterSpec {
    /// Creates a cluster of `num_nodes` nodes of `devices_per_node` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices_per_node` or `num_nodes` is zero, or if the
    /// utilization factors are out of range — these are programming errors
    /// in a spec definition, not runtime conditions.
    pub fn new(
        name: impl Into<String>,
        device: DeviceSpec,
        devices_per_node: usize,
        num_nodes: usize,
        intra_fabric: FabricKind,
        inter_fabric: FabricKind,
    ) -> Self {
        assert!(devices_per_node > 0, "devices_per_node must be positive");
        assert!(num_nodes > 0, "num_nodes must be positive");
        let utilization = Utilization::default();
        utilization.validate().expect("default utilization valid");
        Self {
            name: name.into(),
            device,
            devices_per_node,
            num_nodes,
            intra_fabric,
            inter_fabric,
            utilization,
        }
    }

    /// Replaces the utilization factors (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if any factor is outside `(0, 1]`.
    #[must_use]
    pub fn with_utilization(mut self, utilization: Utilization) -> Self {
        utilization
            .validate()
            .expect("utilization factors in range");
        self.utilization = utilization;
        self
    }

    /// Replaces the node count (builder-style), e.g. to compare 8- vs
    /// 128-GPU deployments of the same platform (Fig. 7).
    #[must_use]
    pub fn with_num_nodes(mut self, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "num_nodes must be positive");
        self.num_nodes = num_nodes;
        self
    }

    /// Total number of accelerators.
    pub fn total_devices(&self) -> usize {
        self.devices_per_node * self.num_nodes
    }

    /// Size of the communication group at a hierarchy level: all devices of
    /// a node intra-node, the number of nodes inter-node.
    pub fn group_size(&self, level: CommLevel) -> usize {
        match level {
            CommLevel::IntraNode => self.devices_per_node,
            CommLevel::InterNode => self.num_nodes,
        }
    }

    /// Raw per-device unidirectional bandwidth of a hierarchy level.
    pub fn link_bw(&self, level: CommLevel) -> BytesPerSec {
        match level {
            CommLevel::IntraNode => self.device.intra_node_bw,
            CommLevel::InterNode => self.device.inter_node_bw,
        }
    }

    /// Aggregate peak TF32 throughput (Table III row "Peak TF32
    /// throughput").
    pub fn aggregate_peak_tf32(&self) -> FlopsPerSec {
        self.device.peak.tf32 * self.total_devices() as f64
    }

    /// Aggregate HBM capacity (Table III row "HBM capacity").
    pub fn aggregate_hbm_capacity(&self) -> ByteCount {
        self.device.hbm_capacity * self.total_devices() as f64
    }

    /// Aggregate HBM bandwidth (Table III row "HBM bandwidth").
    pub fn aggregate_hbm_bw(&self) -> BytesPerSec {
        self.device.hbm_bw * self.total_devices() as f64
    }

    /// Aggregate unidirectional bandwidth of a level (Table III rows
    /// "Intra/Inter-node interconnect bandwidth (unidirectional)").
    pub fn aggregate_link_bw(&self, level: CommLevel) -> BytesPerSec {
        self.link_bw(level) * self.total_devices() as f64
    }

    /// Returns a copy with hardware capabilities scaled (Fig. 19 study).
    #[must_use]
    pub fn scaled(&self, scaling: &DeviceScaling) -> Self {
        Self {
            name: self.name.clone(),
            device: self.device.scaled(scaling),
            ..self.clone()
        }
    }

    /// Whether the whole system is a single node (no inter-node traffic).
    pub fn is_single_node(&self) -> bool {
        self.num_nodes == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PeakFlops;

    fn toy_cluster() -> ClusterSpec {
        let dev = DeviceSpec::new(
            "toy",
            PeakFlops {
                fp32: FlopsPerSec::from_tflops(20.0),
                tf32: FlopsPerSec::from_tflops(156.0),
                fp16: FlopsPerSec::from_tflops(312.0),
            },
            ByteCount::from_gb(40.0),
            BytesPerSec::from_tb(1.555),
            BytesPerSec::from_gb(300.0),
            BytesPerSec::from_gbps(200.0),
        );
        ClusterSpec::new(
            "toy-cluster",
            dev,
            8,
            16,
            FabricKind::NvLink,
            FabricKind::RoCE,
        )
    }

    #[test]
    fn totals_and_groups() {
        let c = toy_cluster();
        assert_eq!(c.total_devices(), 128);
        assert_eq!(c.group_size(CommLevel::IntraNode), 8);
        assert_eq!(c.group_size(CommLevel::InterNode), 16);
        assert!(!c.is_single_node());
        assert!(c.with_num_nodes(1).is_single_node());
    }

    #[test]
    fn aggregates_match_table_iii_math() {
        let c = toy_cluster();
        assert!((c.aggregate_peak_tf32().as_pflops() - 19.968).abs() < 1e-3);
        assert!((c.aggregate_hbm_capacity().as_tb() - 5.12).abs() < 1e-9);
        assert!((c.aggregate_hbm_bw().as_tb() - 199.04).abs() < 1e-9);
        // 128 * 200 Gbps = 25.6 Tbps.
        assert!((c.aggregate_link_bw(CommLevel::InterNode).as_gbps() - 25_600.0).abs() < 1e-6);
        // 128 * 300 GB/s = 38.4 TB/s.
        assert!((c.aggregate_link_bw(CommLevel::IntraNode).as_tb() - 38.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "num_nodes must be positive")]
    fn zero_nodes_rejected() {
        let c = toy_cluster();
        let _ = ClusterSpec::new("bad", c.device, 8, 0, FabricKind::NvLink, FabricKind::RoCE);
    }

    #[test]
    fn utilization_validation() {
        assert!(Utilization::default().validate().is_ok());
        let bad = Utilization {
            compute: 1.5,
            ..Utilization::default()
        };
        assert!(bad.validate().is_err());
        let bad = Utilization {
            hbm: 0.0,
            ..Utilization::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn scaled_cluster_scales_device_only() {
        let c = toy_cluster();
        let s = c.scaled(&DeviceScaling::inter_bw_only(10.0));
        assert_eq!(s.total_devices(), c.total_devices());
        assert!((s.link_bw(CommLevel::InterNode).as_gbps() - 2000.0).abs() < 1e-6);
        assert_eq!(
            s.link_bw(CommLevel::IntraNode),
            c.link_bw(CommLevel::IntraNode)
        );
    }

    #[test]
    fn level_display() {
        assert_eq!(CommLevel::IntraNode.to_string(), "intra-node");
        assert_eq!(FabricKind::RoCE.to_string(), "RoCE");
    }
}
