//! # madmax-hw
//!
//! Hardware substrate for the MAD-Max distributed ML performance model
//! (Hsia et al., ISCA 2024): typed units, numeric precisions, device and
//! cluster specifications, and a catalog of the accelerators and baseline
//! systems used throughout the paper's evaluation (Tables III and IV).
//!
//! # Example
//!
//! ```
//! use madmax_hw::{catalog, CommLevel};
//!
//! let sys = catalog::zionex_dlrm_system();
//! assert_eq!(sys.total_devices(), 128);
//!
//! // Per-device unidirectional bandwidths drive the collective models.
//! let nvlink = sys.link_bw(CommLevel::IntraNode);
//! let roce = sys.link_bw(CommLevel::InterNode);
//! assert!(nvlink > roce);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod cluster;
pub mod device;
pub mod dtype;
pub mod units;

pub use cluster::{ClusterSpec, CommLevel, FabricKind, Utilization};
pub use device::{DeviceScaling, DeviceSpec, PeakFlops};
pub use dtype::DType;
pub use units::{ByteCount, BytesPerSec, FlopCount, FlopsPerSec, Seconds};

#[cfg(test)]
mod serde_tests {
    use crate::catalog;
    use crate::cluster::ClusterSpec;
    use crate::device::DeviceScaling;

    #[test]
    fn cluster_spec_serde_round_trip() {
        for sys in [
            catalog::zionex_dlrm_system(),
            catalog::llama_llm_system(),
            catalog::gaudi2_cluster(),
        ] {
            let js = serde_json::to_string(&sys).unwrap();
            let back: ClusterSpec = serde_json::from_str(&js).unwrap();
            assert_eq!(sys, back);
        }
    }

    #[test]
    fn device_scaling_serde_round_trip() {
        let s = DeviceScaling::all(10.0);
        let js = serde_json::to_string(&s).unwrap();
        let back: DeviceScaling = serde_json::from_str(&js).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn scaled_then_serialized_cluster_is_stable() {
        let sys = catalog::zionex_dlrm_system().scaled(&DeviceScaling::inter_bw_only(10.0));
        let js = serde_json::to_string(&sys).unwrap();
        let back: ClusterSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(sys.device.inter_node_bw, back.device.inter_node_bw);
    }
}
