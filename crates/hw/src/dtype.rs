//! Numeric data types and their storage/compute characteristics.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Numeric precision used for compute and/or storage.
///
/// GPU peak FLOPS depend heavily on the data type (Section IV-B: "GPU peak
/// FLOPS are heavily dependent on data type (e.g. 32-bit, 16-bit FP/TF/BF)
/// and whether or not tensor cores are enabled"). Note that [`DType::Tf32`]
/// is a *compute* format: values are stored as 32-bit floats but matrix
/// units execute at the TF32 rate.
///
/// ```
/// use madmax_hw::DType;
/// assert_eq!(DType::Tf32.size_bytes(), 4);
/// assert_eq!(DType::Bf16.size_bytes(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DType {
    /// IEEE 754 single precision (storage + non-tensor-core compute).
    Fp32,
    /// NVIDIA TensorFloat-32: fp32 storage, tensor-core matmul rate.
    Tf32,
    /// IEEE half precision.
    Fp16,
    /// bfloat16.
    Bf16,
}

impl DType {
    /// Bytes occupied by one element in memory or on the wire.
    pub const fn size_bytes(self) -> u32 {
        match self {
            DType::Fp32 | DType::Tf32 => 4,
            DType::Fp16 | DType::Bf16 => 2,
        }
    }

    /// All supported data types.
    pub const ALL: [DType; 4] = [DType::Fp32, DType::Tf32, DType::Fp16, DType::Bf16];
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Fp32 => "FP32",
            DType::Tf32 => "TF32",
            DType::Fp16 => "FP16",
            DType::Bf16 => "BF16",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::Fp32.size_bytes(), 4);
        assert_eq!(DType::Tf32.size_bytes(), 4);
        assert_eq!(DType::Fp16.size_bytes(), 2);
        assert_eq!(DType::Bf16.size_bytes(), 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::Tf32.to_string(), "TF32");
        assert_eq!(DType::Bf16.to_string(), "BF16");
    }

    #[test]
    fn serde_round_trip() {
        for dt in DType::ALL {
            let js = serde_json::to_string(&dt).unwrap();
            let back: DType = serde_json::from_str(&js).unwrap();
            assert_eq!(dt, back);
        }
    }
}
