//! Golden-file tests for the Perfetto exporter: one flat, one 1F1B, and
//! one serve-decode schedule, each exported and compared byte-for-byte
//! against a committed trace JSON.
//!
//! Regenerate the goldens after an intentional format change with
//! `MADMAX_BLESS=1 cargo test -p madmax-obs --test perfetto`.

use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::{ModelArch, ModelId};
use madmax_obs::{ChromeTrace, TraceEvent};
use madmax_parallel::{PipelineConfig, Plan, ServeConfig, Workload};

/// Llama2 shrunk to two transformer blocks so the golden traces stay
/// reviewable (a handful of ops instead of thousands).
fn tiny_llama() -> ModelArch {
    let mut model = ModelId::Llama2.build();
    for group in &mut model.groups {
        if group.repeat > 2 {
            group.repeat = 2;
        }
    }
    model
}

fn check_golden(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("MADMAX_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name}: {e}; bless with MADMAX_BLESS=1"));
    assert_eq!(
        rendered, golden,
        "{name} drifted from its golden; if intentional, bless with MADMAX_BLESS=1"
    );
}

/// The structural invariants every exported trace must satisfy — what
/// Perfetto's importer actually needs to lay the timeline out.
fn check_schema(trace: &ChromeTrace) {
    let mut open_flows: Vec<u64> = Vec::new();
    for ev in trace.events() {
        match ev.ph.as_str() {
            "M" => {
                assert!(ev.ts.is_none() && ev.dur.is_none());
                assert!(["process_name", "thread_name", "thread_sort_index"]
                    .contains(&ev.name.as_str()));
            }
            "X" => {
                assert!(ev.ts.unwrap() >= 0.0, "negative timestamp: {ev:?}");
                assert!(ev.dur.unwrap() >= 0.0, "negative duration: {ev:?}");
            }
            "s" => open_flows.push(ev.id.unwrap()),
            "f" => {
                let id = ev.id.unwrap();
                assert_eq!(
                    ev.bp.as_deref(),
                    Some("e"),
                    "f events bind to enclosing slice"
                );
                let at = open_flows.iter().position(|&f| f == id);
                open_flows.remove(at.unwrap_or_else(|| panic!("flow finish {id} without start")));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(open_flows.is_empty(), "unfinished flows: {open_flows:?}");
}

fn export(scenario: &Scenario) -> ChromeTrace {
    let (_, trace, sched) = scenario.run_with_trace().expect("scenario runs");
    ChromeTrace::from_schedule(&trace, &sched)
}

#[test]
fn flat_trace_matches_golden() {
    let model = tiny_llama();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model))
        .workload(Workload::pretrain());
    let trace = export(&scenario);
    check_schema(&trace);
    check_golden("flat.json", &trace.to_json_string());
}

#[test]
fn one_f_one_b_trace_matches_golden() {
    let model = tiny_llama();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(2, 4)))
        .workload(Workload::pretrain());
    let trace = export(&scenario);
    check_schema(&trace);
    // Pipeline stages land on distinct tracks.
    let tids: std::collections::BTreeSet<u64> = trace
        .events()
        .iter()
        .filter(|e| e.ph == "X")
        .map(|e| e.tid)
        .collect();
    assert!(tids.len() > 3, "expected per-stage tracks, got {tids:?}");
    check_golden("pipeline_1f1b.json", &trace.to_json_string());
}

#[test]
fn serve_decode_trace_matches_golden() {
    let model = tiny_llama();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(2, 4)))
        .workload(Workload::serve(ServeConfig::new(512, 16)));
    let trace = export(&scenario);
    check_schema(&trace);
    check_golden("serve_decode.json", &trace.to_json_string());
}

#[test]
fn exported_json_parses_and_round_trips() {
    let model = tiny_llama();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(2, 4)))
        .workload(Workload::pretrain());
    let trace = export(&scenario);
    let js = trace.to_json_string();
    // The document is one valid JSON object...
    let value = serde_json::parse_value(&js).expect("trace JSON parses");
    assert!(value.as_map().is_some());
    // ...and deserializing then re-rendering reproduces it byte for byte
    // (struct equality would be too strict: the parser may read an
    // integral float back as an integer).
    let back: ChromeTrace = serde_json::from_str(&js).expect("trace deserializes");
    assert_eq!(back.events().len(), trace.events().len());
    assert_eq!(back.to_json_string(), js);
    let ev: TraceEvent = back.events()[0].clone();
    assert_eq!(ev.ph, "M");
}

#[test]
fn export_is_deterministic() {
    let model = tiny_llama();
    let sys = catalog::llama_llm_system();
    let scenario = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model))
        .workload(Workload::pretrain());
    assert_eq!(
        export(&scenario).to_json_string(),
        export(&scenario).to_json_string()
    );
}
