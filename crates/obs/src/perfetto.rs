//! Chrome trace-event (Perfetto) export of simulated schedules.
//!
//! The [trace-event format] is the JSON dialect both `chrome://tracing`
//! and <https://ui.perfetto.dev> open natively: an object with a
//! `traceEvents` array of phase-tagged events. This module maps the
//! simulator's output onto it:
//!
//! - every [`StreamId`] becomes a named track (`ph:"M"` thread-name
//!   metadata; the dense [`StreamId::slot`] index is the `tid` and the
//!   sort key, so stage triples group together);
//! - every [`TraceOp`] becomes one complete duration event (`ph:"X"`)
//!   whose window comes from the [`Schedule`], with the op's phase,
//!   kind, stage, and collective carried in `args`;
//! - every **cross-stream** dependency becomes a flow arrow (`ph:"s"` at
//!   the producer's finish, `ph:"f"` with `bp:"e"` at the consumer's
//!   start) — same-stream deps are implicit in track order and would
//!   only add noise;
//! - self-profiling [`SpanRecord`]s (see [`madmax_core::prof`]) land in a
//!   second process, so the explorer's own price/assemble/report
//!   wall-clock sits next to the simulated timeline.
//!
//! Timestamps are microseconds (the format's native unit); the simulated
//! schedule starts at `ts = 0`.
//!
//! [trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! # Determinism
//!
//! Event order, flow-arrow ids, and float rendering are all functions of
//! the input trace alone, so exporting the same schedule twice produces
//! byte-identical JSON — which is what makes the golden-file tests in
//! `tests/perfetto.rs` possible.

use std::io::Write;
use std::path::Path;

use madmax_core::prof::SpanRecord;
use madmax_core::{OpKind, Schedule, StreamId, Trace, TraceOp};
use serde::{Deserialize, Serialize, Value};

/// Process id of the simulated schedule's events.
pub const SIMULATION_PID: u64 = 0;
/// Process id of the explorer's self-profiling spans.
pub const SELF_PROFILE_PID: u64 = 1;

/// One trace event, covering the subset of the format this exporter
/// emits: metadata (`M`), complete durations (`X`), and flow arrows
/// (`s` / `f`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (op display name, span name, or metadata key).
    pub name: String,
    /// Comma-free category tag, e.g. `"op"`, `"dep"`, `"prof"`.
    pub cat: Option<String>,
    /// Phase tag: `"M"`, `"X"`, `"s"`, or `"f"`.
    pub ph: String,
    /// Timestamp in microseconds (absent for metadata events).
    pub ts: Option<f64>,
    /// Duration in microseconds (`X` events only).
    pub dur: Option<f64>,
    /// Process id.
    pub pid: u64,
    /// Thread id (the stream's dense slot, or the profiling thread).
    pub tid: u64,
    /// Flow-binding id shared by an `s`/`f` pair.
    pub id: Option<u64>,
    /// Flow binding point (`"e"` on `f` events: bind to enclosing slice).
    pub bp: Option<String>,
    /// Event arguments (insertion-ordered).
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    pub(crate) fn meta(name: &str, pid: u64, tid: u64, args: Vec<(String, Value)>) -> Self {
        TraceEvent {
            name: name.to_owned(),
            cat: None,
            ph: "M".to_owned(),
            ts: None,
            dur: None,
            pid,
            tid,
            id: None,
            bp: None,
            args,
        }
    }
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = Vec::with_capacity(10);
        m.push(("name".to_owned(), Value::Str(self.name.clone())));
        if let Some(cat) = &self.cat {
            m.push(("cat".to_owned(), Value::Str(cat.clone())));
        }
        m.push(("ph".to_owned(), Value::Str(self.ph.clone())));
        if let Some(ts) = self.ts {
            m.push(("ts".to_owned(), Value::Float(ts)));
        }
        if let Some(dur) = self.dur {
            m.push(("dur".to_owned(), Value::Float(dur)));
        }
        m.push(("pid".to_owned(), Value::UInt(self.pid)));
        m.push(("tid".to_owned(), Value::UInt(self.tid)));
        if let Some(id) = self.id {
            m.push(("id".to_owned(), Value::UInt(id)));
        }
        if let Some(bp) = &self.bp {
            m.push(("bp".to_owned(), Value::Str(bp.clone())));
        }
        if !self.args.is_empty() {
            m.push(("args".to_owned(), Value::Map(self.args.clone())));
        }
        Value::Map(m)
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::msg("expected event object"))?;
        let text = |key: &str| -> Result<String, serde::Error> {
            String::from_value(serde::field(m, key)?)
        };
        let opt_text = |key: &str| serde::field_opt(m, key).map(String::from_value).transpose();
        let opt_num = |key: &str| -> Result<Option<f64>, serde::Error> {
            serde::field_opt(m, key)
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| serde::Error::msg("expected number"))
                })
                .transpose()
        };
        let num = |key: &str| -> Result<u64, serde::Error> {
            serde::field(m, key)?
                .as_u64()
                .ok_or_else(|| serde::Error::msg("expected unsigned integer"))
        };
        Ok(TraceEvent {
            name: text("name")?,
            cat: opt_text("cat")?,
            ph: text("ph")?,
            ts: opt_num("ts")?,
            dur: opt_num("dur")?,
            pid: num("pid")?,
            tid: num("tid")?,
            id: serde::field_opt(m, "id")
                .map(|v| v.as_u64().ok_or_else(|| serde::Error::msg("expected id")))
                .transpose()?,
            bp: opt_text("bp")?,
            args: serde::field_opt(m, "args")
                .map(|v| {
                    v.as_map()
                        .cloned()
                        .ok_or_else(|| serde::Error::msg("expected args object"))
                })
                .transpose()?
                .unwrap_or_default(),
        })
    }
}

/// Human-readable track name of a stream.
fn stream_name(stream: StreamId) -> String {
    match stream {
        StreamId::Compute => "compute".to_owned(),
        StreamId::Comm => "comm".to_owned(),
        StreamId::GradComm => "grad_comm".to_owned(),
        StreamId::StageCompute(s) => format!("stage{s}.compute"),
        StreamId::StageComm(s) => format!("stage{s}.comm"),
        StreamId::StageGradComm(s) => format!("stage{s}.grad_comm"),
    }
}

/// The `args` payload of one op's duration event.
fn op_args(op: &TraceOp) -> Vec<(String, Value)> {
    let mut args = vec![("phase".to_owned(), Value::Str(format!("{:?}", op.phase)))];
    let kind = match op.kind {
        OpKind::Gemm { class } => format!("gemm.{class:?}"),
        OpKind::Lookup => "lookup".to_owned(),
        OpKind::Collective { kind } => format!("collective.{kind:?}"),
        OpKind::Optimizer => "optimizer".to_owned(),
    };
    args.push(("kind".to_owned(), Value::Str(kind)));
    if let Some(stage) = op.stream.stage() {
        args.push(("stage".to_owned(), Value::UInt(u64::from(stage))));
    }
    args
}

/// A Chrome trace-event file under construction: compose schedules and
/// self-profiling spans, then [`ChromeTrace::write`] the JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// An empty trace file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience constructor: one simulated schedule.
    pub fn from_schedule(trace: &Trace, sched: &Schedule) -> Self {
        let mut t = Self::new();
        t.add_schedule(trace, sched);
        t
    }

    /// The events emitted so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Adds one simulated schedule: track metadata for every stream the
    /// trace uses, a duration event per op, and a flow arrow per
    /// cross-stream dependency.
    ///
    /// # Panics
    ///
    /// Panics when `sched` does not cover `trace` (fewer windows than
    /// ops) — the pair must come from one scheduling run.
    pub fn add_schedule(&mut self, trace: &Trace, sched: &Schedule) {
        let ops = trace.ops();
        assert!(
            sched.windows.len() >= ops.len(),
            "schedule covers {} of {} ops; trace and schedule must come \
             from the same run",
            sched.windows.len(),
            ops.len()
        );
        self.events.push(TraceEvent::meta(
            "process_name",
            SIMULATION_PID,
            0,
            vec![(
                "name".to_owned(),
                Value::Str("simulated schedule".to_owned()),
            )],
        ));
        // One track per stream, ordered by dense slot.
        let mut streams: Vec<StreamId> = Vec::new();
        for op in ops {
            if !streams.contains(&op.stream) {
                streams.push(op.stream);
            }
        }
        streams.sort_by_key(|s| s.slot());
        for stream in streams {
            let tid = stream.slot() as u64;
            self.events.push(TraceEvent::meta(
                "thread_name",
                SIMULATION_PID,
                tid,
                vec![("name".to_owned(), Value::Str(stream_name(stream)))],
            ));
            self.events.push(TraceEvent::meta(
                "thread_sort_index",
                SIMULATION_PID,
                tid,
                vec![("sort_index".to_owned(), Value::UInt(tid))],
            ));
        }
        for (i, op) in ops.iter().enumerate() {
            let w = &sched.windows[i];
            self.events.push(TraceEvent {
                name: op.name.to_string(),
                cat: Some("op".to_owned()),
                ph: "X".to_owned(),
                ts: Some(w.start.as_us()),
                dur: Some(w.finish.as_us() - w.start.as_us()),
                pid: SIMULATION_PID,
                tid: op.stream.slot() as u64,
                id: None,
                bp: None,
                args: op_args(op),
            });
        }
        // Flow arrows for cross-stream deps, ids in consumer order.
        let mut flow_id = 0u64;
        for (i, op) in ops.iter().enumerate() {
            for dep in &op.deps {
                let src = &ops[dep.0];
                if src.stream == op.stream {
                    continue;
                }
                let name = format!("{} -> {}", src.name, op.name);
                self.events.push(TraceEvent {
                    name: name.clone(),
                    cat: Some("dep".to_owned()),
                    ph: "s".to_owned(),
                    ts: Some(sched.windows[dep.0].finish.as_us()),
                    dur: None,
                    pid: SIMULATION_PID,
                    tid: src.stream.slot() as u64,
                    id: Some(flow_id),
                    bp: None,
                    args: Vec::new(),
                });
                self.events.push(TraceEvent {
                    name,
                    cat: Some("dep".to_owned()),
                    ph: "f".to_owned(),
                    ts: Some(sched.windows[i].start.as_us()),
                    dur: None,
                    pid: SIMULATION_PID,
                    tid: op.stream.slot() as u64,
                    id: Some(flow_id),
                    bp: Some("e".to_owned()),
                    args: Vec::new(),
                });
                flow_id += 1;
            }
        }
    }

    /// Adds self-profiling spans (see [`madmax_core::prof`]) as a second
    /// process, one track per recording thread.
    pub fn add_spans(&mut self, spans: &[SpanRecord]) {
        if spans.is_empty() {
            return;
        }
        self.events.push(TraceEvent::meta(
            "process_name",
            SELF_PROFILE_PID,
            0,
            vec![(
                "name".to_owned(),
                Value::Str("explorer self-profile".to_owned()),
            )],
        ));
        let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for t in threads {
            self.events.push(TraceEvent::meta(
                "thread_name",
                SELF_PROFILE_PID,
                t,
                vec![("name".to_owned(), Value::Str(format!("thread{t}")))],
            ));
        }
        for span in spans {
            self.events.push(TraceEvent {
                name: span.name.clone(),
                cat: Some("prof".to_owned()),
                ph: "X".to_owned(),
                ts: Some(span.start_us),
                dur: Some(span.dur_us),
                pid: SELF_PROFILE_PID,
                tid: span.thread,
                id: None,
                bp: None,
                args: Vec::new(),
            });
        }
    }

    /// Renders the trace-event JSON: one compact event per line inside
    /// the `traceEvents` array (reviewable diffs, still a single valid
    /// JSON document).
    ///
    /// # Panics
    ///
    /// Never in practice — event serialization is infallible.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&serde_json::to_string(ev).expect("events serialize"));
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Writes the JSON to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or writing the file.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json_string().as_bytes())
    }
}

impl Serialize for ChromeTrace {
    fn to_value(&self) -> Value {
        Value::Map(vec![("traceEvents".to_owned(), self.events.to_value())])
    }
}

impl Deserialize for ChromeTrace {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::msg("expected trace object"))?;
        Ok(ChromeTrace {
            events: Vec::from_value(serde::field(m, "traceEvents")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_valid_json() {
        let t = ChromeTrace::new();
        let js = t.to_json_string();
        let back: ChromeTrace = serde_json::from_str(&js).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn event_serializes_without_null_fields() {
        let ev = TraceEvent::meta("process_name", 0, 0, Vec::new());
        let js = serde_json::to_string(&ev).unwrap();
        assert!(!js.contains("null"), "{js}");
        assert!(!js.contains("ts"), "{js}");
    }
}
