//! Search telemetry: what a design-space search did and where the time
//! went.
//!
//! `madmax_dse::Explorer` fills one [`SearchTelemetry`] per evaluation
//! batch and merges them across workload variants in `explore()`. The
//! counters come from three places:
//!
//! - **outcome counters** are tallied from each candidate's result as it
//!   completes (`candidates == ok + oom + unmappable + invalid` always
//!   reconciles — the counter-reconciliation tests pin this);
//! - **cache stats** are snapshots of the shared cost tables' relaxed
//!   atomic counters ([`madmax_core::CacheCounters`]), taken after the
//!   worker pool joins;
//! - **worker stats** and the **latency histogram** are accumulated
//!   worker-locally (no contention) and merged at join.

use std::sync::Mutex;

use madmax_core::counters::CacheStats;
use serde::{Deserialize, Serialize, Value};

/// Wall-clock and throughput of one worker thread of the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index (0-based; a single-threaded run has one worker 0).
    pub worker: usize,
    /// Candidates this worker evaluated.
    pub candidates: u64,
    /// Wall-clock the worker spent evaluating, in milliseconds.
    pub busy_ms: f64,
}

/// A log2-bucketed histogram of per-candidate evaluation latencies in
/// microseconds: bucket `i` counts evaluations with
/// `2^i <= latency_us < 2^(i+1)` (bucket 0 covers everything below 2µs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket counts (index = floor(log2(latency_us)), clamped to 0).
    pub buckets: Vec<u64>,
    /// Total evaluations recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in microseconds.
    pub total_us: f64,
    /// Largest recorded latency, in microseconds.
    pub max_us: f64,
}

impl LatencyHistogram {
    /// Records one evaluation latency.
    pub fn record(&mut self, latency_us: f64) {
        let idx = (latency_us as u64).max(1).ilog2() as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_us += latency_us;
        self.max_us = self.max_us.max(latency_us);
    }

    /// Mean latency in microseconds (`None` before any record).
    pub fn mean_us(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_us / self.count as f64)
    }

    /// Accumulates another histogram into this one.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Everything one search run reports about itself. See the module docs
/// for who fills which field.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchTelemetry {
    /// Candidates considered (including ones the explorer resolved
    /// without a fresh evaluation, e.g. baseline-identical plans).
    pub candidates: u64,
    /// Candidates that produced a report.
    pub ok: u64,
    /// Candidates rejected for device memory.
    pub oom: u64,
    /// Candidates whose pipeline depth cannot partition the model or map
    /// onto the cluster.
    pub unmappable: u64,
    /// Candidates rejected as otherwise invalid plans.
    pub invalid: u64,
    /// Flat `CostTable` price-vs-reuse snapshot (one event per
    /// (candidate, layer class) ensured).
    pub flat_cache: CacheStats,
    /// `PipelineCostTable` price-vs-reuse snapshot (one event per
    /// priceable pipelined candidate ensured).
    pub pipeline_cache: CacheStats,
    /// Shared report-memo snapshot (one event per pipelined evaluation
    /// reaching the memo lookup; hits are reports served without
    /// re-assembly, across all workers).
    pub report_memo: CacheStats,
    /// Closed-form steady-state serve snapshot (one hit per report
    /// synthesized analytically by `madmax_core::steady`, one miss per
    /// serve candidate simulated in full), summed over the flat and
    /// pipeline tables.
    #[serde(default)]
    pub steady_analytic: CacheStats,
    /// Per-worker wall-clock and throughput, ordered by worker index.
    pub workers: Vec<WorkerStats>,
    /// Per-candidate evaluation-latency histogram.
    pub eval_latency: LatencyHistogram,
    /// End-to-end wall-clock of the search, in milliseconds.
    pub wall_ms: f64,
    /// Error-severity diagnostics the verifier found on winner schedules
    /// (zero unless the explorer's verify option is on; any nonzero value
    /// means an engine invariant broke).
    pub verify_errors: u64,
    /// Warn-severity diagnostics (e.g. mostly-idle compute streams) on
    /// winner schedules.
    pub verify_warnings: u64,
    /// Closed-form goodput evaluations executed (zero outside
    /// failure-aware searches).
    #[serde(default)]
    pub goodput_evals: u64,
    /// Fault events materialized or injected into simulations.
    #[serde(default)]
    pub fault_events: u64,
}

impl SearchTelemetry {
    /// Whether the outcome counters reconcile with the candidate count
    /// (`candidates == ok + oom + unmappable + invalid`).
    pub fn reconciles(&self) -> bool {
        self.candidates == self.ok + self.oom + self.unmappable + self.invalid
    }

    /// Accumulates another run's telemetry (e.g. one workload variant of
    /// a serve sweep) into this one. Worker stats are merged by index;
    /// `wall_ms` adds up (variants run sequentially).
    pub fn absorb(&mut self, other: &SearchTelemetry) {
        self.candidates += other.candidates;
        self.ok += other.ok;
        self.oom += other.oom;
        self.unmappable += other.unmappable;
        self.invalid += other.invalid;
        self.flat_cache.absorb(other.flat_cache);
        self.pipeline_cache.absorb(other.pipeline_cache);
        self.report_memo.absorb(other.report_memo);
        self.steady_analytic.absorb(other.steady_analytic);
        for w in &other.workers {
            match self.workers.iter_mut().find(|m| m.worker == w.worker) {
                Some(m) => {
                    m.candidates += w.candidates;
                    m.busy_ms += w.busy_ms;
                }
                None => self.workers.push(*w),
            }
        }
        self.workers.sort_by_key(|w| w.worker);
        self.eval_latency.absorb(&other.eval_latency);
        self.wall_ms += other.wall_ms;
        self.verify_errors += other.verify_errors;
        self.verify_warnings += other.verify_warnings;
        self.goodput_evals += other.goodput_evals;
        self.fault_events += other.fault_events;
    }

    /// One-line human summary (the stderr ticker's final line).
    pub fn summary(&self) -> String {
        let rate = |s: CacheStats| match s.hit_rate() {
            Some(r) => format!("{:.0}%", r * 100.0),
            None => "-".to_owned(),
        };
        let mut line = format!(
            "{} candidates in {:.0} ms ({} ok, {} oom, {} unmappable, {} invalid); \
             cache hit rates: flat {}, pipeline {}, memo {}",
            self.candidates,
            self.wall_ms,
            self.ok,
            self.oom,
            self.unmappable,
            self.invalid,
            rate(self.flat_cache),
            rate(self.pipeline_cache),
            rate(self.report_memo),
        );
        if self.verify_errors > 0 || self.verify_warnings > 0 {
            line.push_str(&format!(
                "; verify: {} errors, {} warnings",
                self.verify_errors, self.verify_warnings
            ));
        }
        if self.goodput_evals > 0 || self.fault_events > 0 {
            line.push_str(&format!(
                "; faults: {} goodput evals, {} fault events",
                self.goodput_evals, self.fault_events
            ));
        }
        line
    }
}

/// A named collection of telemetry reports, accumulated across the
/// searches of one experiment run (thread-safe: the fig bins record from
/// wherever the experiment executes) and written as one JSON document.
#[derive(Debug, Default)]
pub struct TelemetrySpool {
    entries: Mutex<Vec<(String, SearchTelemetry)>>,
}

impl TelemetrySpool {
    /// An empty spool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one search's telemetry under `name`.
    ///
    /// # Panics
    ///
    /// Panics if the spool's lock was poisoned.
    pub fn record(&self, name: &str, telemetry: &SearchTelemetry) {
        self.entries
            .lock()
            .unwrap()
            .push((name.to_owned(), telemetry.clone()));
    }

    /// Snapshot of everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if the spool's lock was poisoned.
    pub fn entries(&self) -> Vec<(String, SearchTelemetry)> {
        self.entries.lock().unwrap().clone()
    }

    /// Renders the spool as a JSON array of `{name, telemetry}` objects.
    pub fn to_json_string(&self) -> String {
        let entries = self.entries();
        let seq: Vec<Value> = entries
            .iter()
            .map(|(name, t)| {
                Value::Map(vec![
                    ("name".to_owned(), Value::Str(name.clone())),
                    ("telemetry".to_owned(), t.to_value()),
                ])
            })
            .collect();
        serde_json::to_string_pretty(&Value::Seq(seq)).expect("telemetry serializes")
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or writing the file.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogram::default();
        h.record(0.5); // bucket 0
        h.record(3.0); // bucket 1
        h.record(1000.0); // bucket 9
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[9], 1);
        assert!((h.mean_us().unwrap() - 1003.5 / 3.0).abs() < 1e-9);
        assert_eq!(h.max_us, 1000.0);
    }

    #[test]
    fn telemetry_absorb_merges_workers_by_index() {
        let mut a = SearchTelemetry {
            candidates: 4,
            ok: 3,
            oom: 1,
            workers: vec![WorkerStats {
                worker: 0,
                candidates: 4,
                busy_ms: 2.0,
            }],
            ..Default::default()
        };
        let b = SearchTelemetry {
            candidates: 2,
            ok: 2,
            workers: vec![
                WorkerStats {
                    worker: 0,
                    candidates: 1,
                    busy_ms: 1.0,
                },
                WorkerStats {
                    worker: 1,
                    candidates: 1,
                    busy_ms: 1.0,
                },
            ],
            verify_warnings: 3,
            goodput_evals: 2,
            fault_events: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.candidates, 6);
        assert!(a.reconciles());
        assert_eq!(a.workers.len(), 2);
        assert_eq!(a.workers[0].candidates, 5);
        assert!((a.workers[0].busy_ms - 3.0).abs() < 1e-12);
        assert_eq!(a.verify_warnings, 3);
        assert_eq!(a.goodput_evals, 2);
        assert_eq!(a.fault_events, 5);
        assert!(a.summary().contains("verify: 0 errors, 3 warnings"));
        assert!(a.summary().contains("2 goodput evals, 5 fault events"));
        assert!(!SearchTelemetry::default().summary().contains("verify:"));
        assert!(!SearchTelemetry::default().summary().contains("faults:"));
    }

    #[test]
    fn telemetry_serde_round_trip() {
        let mut t = SearchTelemetry {
            candidates: 10,
            ok: 8,
            oom: 1,
            invalid: 1,
            flat_cache: CacheStats {
                hits: 36,
                misses: 4,
            },
            wall_ms: 12.5,
            ..Default::default()
        };
        t.eval_latency.record(100.0);
        let js = serde_json::to_string(&t).unwrap();
        let back: SearchTelemetry = serde_json::from_str(&js).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn spool_renders_named_entries() {
        let spool = TelemetrySpool::new();
        spool.record("fig10/llama", &SearchTelemetry::default());
        let js = spool.to_json_string();
        assert!(js.contains("fig10/llama"));
        let parsed = serde_json::parse_value(&js).unwrap();
        assert_eq!(parsed.as_seq().unwrap().len(), 1);
    }
}
