//! # madmax-obs
//!
//! Observability for the MAD-Max performance model: everything that makes
//! a simulation or a design-space search *inspectable* rather than a
//! single aggregate number.
//!
//! - [`perfetto`] — Chrome trace-event export: a simulated
//!   [`madmax_core::Trace`] + [`madmax_core::Schedule`] becomes a JSON
//!   file that opens directly in <https://ui.perfetto.dev>, with one
//!   track per stream, one duration event per op (phase / stage /
//!   collective metadata attached), and cross-stream data dependencies
//!   drawn as flow arrows. The paper's own headline artifacts (Fig. 6
//!   per-stream timelines, Fig. 20 breakdowns) are exactly this view.
//! - [`telemetry`] — [`SearchTelemetry`]: per-outcome candidate counters,
//!   cache hit/miss snapshots from the price→assemble fast paths
//!   (`CostTable`, `PipelineCostTable`, the per-scratch report memo),
//!   per-worker throughput, and an evaluation-latency histogram,
//!   populated by `madmax_dse::Explorer` on every search.
//! - [`progress`] — the [`ProgressSink`] trait: live candidate-completed
//!   events from a running search (no-op default, stderr ticker, JSONL
//!   writer), the groundwork for a resident DSE service.
//! - [`load`] — continuous-batching load-run observability: per-request
//!   completion events bridged from `madmax_serve`'s completion
//!   callback, [`LoadTelemetry`] counters, and Perfetto export of a
//!   load trace (engine track, queue-depth counter, per-request KV
//!   residency tracks).
//!
//! # Telemetry sharing contract
//!
//! All hot-path instrumentation is a relaxed atomic increment on counters
//! owned by the shared cost tables (`madmax_core::CacheCounters`), so the
//! explorer's worker pool needs no locks and no per-worker merge step for
//! cache stats; snapshots are taken after `thread::scope` joins, which
//! provides the happens-before edge making the totals exact. Per-worker
//! wall-clock and latency data are accumulated worker-locally and merged
//! once at join. [`ProgressSink`] implementations must be `Sync`: one
//! sink instance receives events concurrently from every worker, in
//! completion order (which is nondeterministic — only the *set* of events
//! is stable across runs).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod load;
pub mod perfetto;
pub mod progress;
pub mod telemetry;

pub use load::{forward_to_sink, LoadTelemetry, RequestEvent};
pub use madmax_core::counters::CacheStats;
pub use madmax_core::prof::SpanRecord;
pub use perfetto::{ChromeTrace, TraceEvent};
pub use progress::{
    CandidateEvent, CandidateOutcome, ElapsedSummary, JsonlSink, NullSink, ProgressSink,
    StderrTicker,
};
pub use telemetry::{LatencyHistogram, SearchTelemetry, TelemetrySpool, WorkerStats};
