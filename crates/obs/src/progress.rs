//! Live progress from a running search: the [`ProgressSink`] trait and
//! its stock implementations.
//!
//! `madmax_dse::Explorer` calls [`ProgressSink::candidate_completed`]
//! from whichever worker finishes each candidate and
//! [`ProgressSink::search_finished`] once per evaluation batch, after the
//! pool joins. Sinks must therefore be `Send + Sync` and treat event
//! *order* as nondeterministic under multi-threaded search (the event
//! set, and every per-event payload, is deterministic).
//!
//! This is the groundwork for the ROADMAP's resident DSE-service
//! direction: a service wraps a streaming channel in a `ProgressSink`
//! the same way [`JsonlSink`] wraps a file.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize, Value};

use crate::load::{LoadTelemetry, RequestEvent};
use crate::telemetry::SearchTelemetry;

/// How one candidate's evaluation resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateOutcome {
    /// Produced an iteration report.
    Ok,
    /// Rejected for device memory.
    OutOfMemory,
    /// Pipeline depth cannot partition the model / map onto the cluster.
    Unmappable,
    /// Rejected as an otherwise invalid plan.
    Invalid,
}

/// One candidate-completed event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateEvent {
    /// Candidate index within the evaluation batch (stable across thread
    /// counts: it is the plan's position, not completion order).
    pub index: usize,
    /// Batch size, for progress displays.
    pub total: usize,
    /// How the evaluation resolved.
    pub outcome: CandidateOutcome,
    /// Evaluation latency in microseconds.
    pub eval_us: f64,
    /// Simulated iteration time in milliseconds, for `Ok` outcomes.
    pub iteration_ms: Option<f64>,
}

/// Receives live events from a running search. See the module docs for
/// the threading contract.
pub trait ProgressSink: Send + Sync + std::fmt::Debug {
    /// Called by whichever worker completes each candidate.
    fn candidate_completed(&self, event: &CandidateEvent);

    /// Called once per evaluation batch, after the worker pool joins.
    fn search_finished(&self, _telemetry: &SearchTelemetry) {}

    /// Called once per completed request of a load simulation, in
    /// completion order (see [`crate::load::forward_to_sink`]).
    fn request_completed(&self, _event: &RequestEvent) {}

    /// Called once per finished load simulation.
    fn load_finished(&self, _telemetry: &LoadTelemetry) {}
}

/// The default sink: ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn candidate_completed(&self, _event: &CandidateEvent) {}
}

/// Prints a progress line to stderr every `every` completions, plus a
/// summary line when the search finishes.
#[derive(Debug)]
pub struct StderrTicker {
    every: u64,
    seen: AtomicU64,
    ok: AtomicU64,
}

impl StderrTicker {
    /// A ticker printing every `every` completed candidates (clamped to
    /// at least 1).
    pub fn every(every: u64) -> Self {
        Self {
            every: every.max(1),
            seen: AtomicU64::new(0),
            ok: AtomicU64::new(0),
        }
    }
}

impl ProgressSink for StderrTicker {
    fn candidate_completed(&self, event: &CandidateEvent) {
        if event.outcome == CandidateOutcome::Ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
        }
        let seen = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if seen.is_multiple_of(self.every) || seen as usize == event.total {
            eprintln!(
                "[search] {seen}/{} candidates evaluated ({} ok)",
                event.total,
                self.ok.load(Ordering::Relaxed)
            );
        }
    }

    fn search_finished(&self, telemetry: &SearchTelemetry) {
        eprintln!("[search] {}", telemetry.summary());
    }

    fn request_completed(&self, event: &RequestEvent) {
        let seen = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if seen.is_multiple_of(self.every) {
            eprintln!(
                "[load] {seen} requests completed (last: r{} at {:.3} s)",
                event.id, event.completion
            );
        }
    }

    fn load_finished(&self, telemetry: &LoadTelemetry) {
        eprintln!("[load] {}", telemetry.summary());
    }
}

/// Streams events as JSON Lines: one `{"candidate": ...}` object per
/// completion, one `{"finished": ...}` object per batch.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncates) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            out: Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    fn write_line(&self, key: &str, value: Value) {
        let line = serde_json::to_string(&Value::Map(vec![(key.to_owned(), value)]))
            .expect("event serializes");
        let mut out = self.out.lock().unwrap();
        // Telemetry must never take the search down: drop the line on
        // I/O failure instead of panicking mid-pool.
        let _ = writeln!(out, "{line}");
    }
}

impl ProgressSink for JsonlSink {
    fn candidate_completed(&self, event: &CandidateEvent) {
        self.write_line("candidate", event.to_value());
    }

    fn search_finished(&self, telemetry: &SearchTelemetry) {
        self.write_line("finished", telemetry.to_value());
        let _ = self.out.lock().unwrap().flush();
    }

    fn request_completed(&self, event: &RequestEvent) {
        self.write_line("request", event.to_value());
    }

    fn load_finished(&self, telemetry: &LoadTelemetry) {
        self.write_line("load", telemetry.to_value());
        let _ = self.out.lock().unwrap().flush();
    }
}

/// Per-experiment elapsed-time accounting for multi-experiment runners
/// (`run_all`): record each experiment's wall-clock, then print one
/// aligned summary table.
#[derive(Debug, Default)]
pub struct ElapsedSummary {
    rows: Vec<(String, Duration)>,
}

impl ElapsedSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, records it under `name`, and returns its output.
    pub fn run<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        self.rows.push((name.to_owned(), started.elapsed()));
        out
    }

    /// The recorded `(name, elapsed)` rows, in execution order.
    pub fn rows(&self) -> &[(String, Duration)] {
        &self.rows
    }

    /// Total elapsed across every recorded row.
    pub fn total(&self) -> Duration {
        self.rows.iter().map(|(_, d)| *d).sum()
    }

    /// Renders the aligned per-experiment table (without printing it).
    pub fn table(&self) -> String {
        let width = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(5);
        let mut out = String::new();
        for (name, elapsed) in &self.rows {
            out.push_str(&format!(
                "  {name:<width$}  {:>9.1} ms\n",
                elapsed.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "  {:<width$}  {:>9.1} ms\n",
            "total",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_event_serde_round_trip() {
        let ev = CandidateEvent {
            index: 3,
            total: 24,
            outcome: CandidateOutcome::OutOfMemory,
            eval_us: 812.5,
            iteration_ms: None,
        };
        let js = serde_json::to_string(&ev).unwrap();
        let back: CandidateEvent = serde_json::from_str(&js).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn null_sink_is_object_safe_and_silent() {
        let sink: &dyn ProgressSink = &NullSink;
        sink.candidate_completed(&CandidateEvent {
            index: 0,
            total: 1,
            outcome: CandidateOutcome::Ok,
            eval_us: 1.0,
            iteration_ms: Some(10.0),
        });
        sink.search_finished(&SearchTelemetry::default());
    }

    #[test]
    fn elapsed_summary_records_and_totals() {
        let mut s = ElapsedSummary::new();
        let v = s.run("one", || 42);
        assert_eq!(v, 42);
        s.run("two", || ());
        assert_eq!(s.rows().len(), 2);
        let table = s.table();
        assert!(table.contains("one") && table.contains("total"));
    }

    #[test]
    fn jsonl_sink_writes_parsable_lines() {
        let dir = std::env::temp_dir().join("madmax-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.candidate_completed(&CandidateEvent {
            index: 0,
            total: 2,
            outcome: CandidateOutcome::Ok,
            eval_us: 5.0,
            iteration_ms: Some(1.25),
        });
        sink.search_finished(&SearchTelemetry::default());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::parse_value(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
