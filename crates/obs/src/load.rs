//! Load-run observability: per-request completion events for
//! [`ProgressSink`]s, serializable load-run telemetry, and Perfetto
//! export of a [`LoadTrace`].
//!
//! The serve simulator itself reports completions through a plain
//! callback (it does not depend on this crate); [`RequestEvent::from`] a
//! `RequestRecord` is the bridge a runner uses to forward those
//! callbacks into a [`ProgressSink`].

use madmax_core::steady::grid_seconds;
use madmax_fault::FaultKind;
use madmax_serve::{LoadOutcome, LoadTrace, RequestRecord, SimMode};
use serde::{Deserialize, Serialize, Value};

use crate::perfetto::{ChromeTrace, TraceEvent};
use crate::progress::ProgressSink;

/// Process id of load-simulator events in exported traces (the simulated
/// schedule is pid 0, self-profiling pid 1).
pub const LOAD_PID: u64 = 2;

/// Request tracks exported to Perfetto before the exporter stops adding
/// per-request detail (the engine and queue tracks are always complete).
const REQUEST_TRACK_CAP: usize = 64;

/// One request-completed event, in wall-clock seconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// Request id (arrival order).
    pub id: u32,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Time to first token, seconds.
    pub ttft: f64,
    /// Completion time, seconds.
    pub completion: f64,
    /// Output tokens produced (first token + decode tokens).
    pub output_tokens: u64,
    /// Times the request was evicted and recomputed.
    pub evictions: u32,
}

impl From<&RequestRecord> for RequestEvent {
    fn from(rec: &RequestRecord) -> Self {
        let first = rec.first_token.unwrap_or(rec.arrival);
        RequestEvent {
            id: rec.id,
            arrival: grid_seconds(rec.arrival).as_secs(),
            ttft: grid_seconds(first - rec.arrival).as_secs(),
            completion: grid_seconds(rec.completion.unwrap_or(first)).as_secs(),
            output_tokens: 1 + rec.decode_len,
            evictions: rec.evictions,
        }
    }
}

/// Serializable summary counters of one load simulation, the load
/// counterpart of [`crate::SearchTelemetry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTelemetry {
    /// Simulation mode (`"event"` or `"per-token"`).
    pub mode: String,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests rejected at arrival.
    pub rejected: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Decode-run actions executed.
    pub decode_runs: u64,
    /// Decode steps executed.
    pub decode_steps: u64,
    /// Longest single decode run, in steps.
    pub max_run: u64,
    /// Completed output tokens per simulated second.
    pub tokens_per_sec: f64,
    /// p99 time to first token, milliseconds, when anything completed a
    /// prefill.
    pub ttft_p99_ms: Option<f64>,
    /// p50 time per output token, milliseconds, when anything completed.
    pub tpot_p50_ms: Option<f64>,
    /// Host wall-clock the simulation took, milliseconds.
    pub wall_ms: f64,
}

impl LoadTelemetry {
    /// Summarizes one simulation outcome (`wall_ms` is the host
    /// wall-clock the caller measured around the run).
    pub fn from_outcome(outcome: &LoadOutcome, mode: SimMode, wall_ms: f64) -> Self {
        let r = &outcome.report;
        LoadTelemetry {
            mode: match mode {
                SimMode::Event => "event".to_owned(),
                SimMode::PerToken => "per-token".to_owned(),
            },
            arrivals: r.arrivals as u64,
            completed: r.completed as u64,
            rejected: r.rejected as u64,
            evictions: r.evictions,
            decode_runs: outcome.counters.decode_runs,
            decode_steps: outcome.counters.decode_steps,
            max_run: outcome.counters.max_run,
            tokens_per_sec: r.tokens_per_sec,
            ttft_p99_ms: r.ttft.map(|p| p.p99.as_secs() * 1e3),
            tpot_p50_ms: r.tpot.map(|p| p.p50.as_secs() * 1e3),
            wall_ms,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} mode: {}/{} completed ({} rejected, {} evictions), \
             {:.1} tok/s, {} steps in {} runs, {:.1} ms wall",
            self.mode,
            self.completed,
            self.arrivals,
            self.rejected,
            self.evictions,
            self.tokens_per_sec,
            self.decode_steps,
            self.decode_runs,
            self.wall_ms
        )
    }
}

/// The completion callback that forwards a load run's per-request
/// completions into a [`ProgressSink`]: bind the result to a local and
/// pass `Some(&mut it)` to [`madmax_serve::simulate_load`].
pub fn forward_to_sink(sink: &dyn ProgressSink) -> impl FnMut(&RequestRecord) + '_ {
    |rec| sink.request_completed(&RequestEvent::from(rec))
}

fn usecs(units: i64) -> f64 {
    grid_seconds(units).as_secs() * 1e6
}

fn slice(name: String, cat: &str, tid: u64, start: i64, end: i64) -> TraceEvent {
    TraceEvent {
        name,
        cat: Some(cat.to_owned()),
        ph: "X".to_owned(),
        ts: Some(usecs(start)),
        dur: Some(usecs(end - start)),
        pid: LOAD_PID,
        tid,
        id: None,
        bp: None,
        args: Vec::new(),
    }
}

impl ChromeTrace {
    /// Convenience constructor: one load run.
    pub fn from_load_trace(trace: &LoadTrace) -> Self {
        let mut t = Self::new();
        t.add_load_trace(trace);
        t
    }

    /// Adds one load run under its own process: an engine track with
    /// every prefill and decode run, a queue-depth counter, and one
    /// track per request (capped at 64) with its queue wait and KV
    /// residency spans.
    pub fn add_load_trace(&mut self, trace: &LoadTrace) {
        let meta = |name: &str, tid: u64, value: String| {
            TraceEvent::meta(
                name,
                LOAD_PID,
                tid,
                vec![("name".to_owned(), Value::Str(value))],
            )
        };
        self.push(meta("process_name", 0, "serve load".to_owned()));
        self.push(meta("thread_name", 0, "engine".to_owned()));
        for p in &trace.prefills {
            let mut ev = slice(
                format!(
                    "prefill r{}{}",
                    p.request,
                    if p.resumed { " (recompute)" } else { "" }
                ),
                "prefill",
                0,
                p.start,
                p.end,
            );
            ev.args
                .push(("ctx_tokens".to_owned(), Value::UInt(p.ctx_tokens as u64)));
            self.push(ev);
        }
        for r in &trace.runs {
            let mut ev = slice(
                format!("decode x{} (B={})", r.steps, r.participants.len()),
                "decode",
                0,
                r.start,
                r.end,
            );
            ev.args
                .push(("kv_total_start".to_owned(), Value::Int(r.kv_total_start)));
            ev.args
                .push(("blocks_held".to_owned(), Value::UInt(r.blocks_held)));
            self.push(ev);
        }
        // Fault windows as their own track (absent for fault-free runs,
        // keeping their export byte-identical to the pre-fault layout).
        if !trace.faults.is_empty() {
            self.push(meta("thread_name", 2, "faults".to_owned()));
            for f in &trace.faults {
                let name = match f.kind {
                    FaultKind::Fatal => format!("fatal (-{} slots)", f.slots_lost),
                    FaultKind::Transient => {
                        format!(
                            "transient (x{:.2} slowdown)",
                            f64::from(f.slowdown_pct) / 100.0
                        )
                    }
                    FaultKind::Maintenance => format!("maintenance (-{} slots)", f.slots_lost),
                };
                // Perfetto drops zero-width slices, so give instantaneous
                // windows one grid unit of visual width.
                let mut ev = slice(name, "fault", 2, f.start, f.end.max(f.start + 1));
                ev.args.push((
                    "interrupted".to_owned(),
                    Value::UInt(f.interrupted.len() as u64),
                ));
                ev.args
                    .push(("slots_lost".to_owned(), Value::UInt(f.slots_lost as u64)));
                self.push(ev);
            }
        }
        // Queue depth as a counter track.
        for &(at, depth) in &trace.queue_depth {
            self.push(TraceEvent {
                name: "queue depth".to_owned(),
                cat: Some("queue".to_owned()),
                ph: "C".to_owned(),
                ts: Some(usecs(at)),
                dur: None,
                pid: LOAD_PID,
                tid: 1,
                id: None,
                bp: None,
                args: vec![("depth".to_owned(), Value::UInt(u64::from(depth)))],
            });
        }
        // Per-request tracks: queue wait + residency episodes.
        for rec in trace.records.iter().take(REQUEST_TRACK_CAP) {
            let tid = 16 + u64::from(rec.id);
            self.push(meta("thread_name", tid, format!("request {}", rec.id)));
            if let Some(admitted) = rec.admitted {
                if admitted > rec.arrival {
                    self.push(slice(
                        "queued".to_owned(),
                        "wait",
                        tid,
                        rec.arrival,
                        admitted,
                    ));
                }
            }
            for span in trace.residency.iter().filter(|s| s.request == rec.id) {
                let end = span.end.unwrap_or(trace.end);
                let mut ev = slice("resident".to_owned(), "kv", tid, span.start, end);
                ev.args
                    .push(("blocks".to_owned(), Value::UInt(span.blocks)));
                self.push(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_model::ModelId;
    use madmax_parallel::{LoadSpec, RequestSpec, ServeConfig};
    use madmax_serve::{simulate_load, StepCostModel};

    fn toy_outcome(mode: SimMode) -> LoadOutcome {
        let costs = StepCostModel {
            prefill_base: 100,
            prefill_slope: 1,
            step_base: 10,
            step_seq: 2,
            step_rate: 1,
            slots: 2,
        };
        let spec = LoadSpec::trace(
            (0..3)
                .map(|i| RequestSpec {
                    arrival: f64::from(i) * 1e-9,
                    prompt_len: 8,
                    decode_len: 4,
                })
                .collect(),
        );
        let serve = ServeConfig::new(8, 4);
        simulate_load(&spec, &serve, &ModelId::Llama2.build(), &costs, mode, None).unwrap()
    }

    #[test]
    fn load_trace_exports_engine_queue_and_request_tracks() {
        let out = toy_outcome(SimMode::Event);
        let trace = ChromeTrace::from_load_trace(&out.trace);
        let events = trace.events();
        assert!(events
            .iter()
            .any(|e| e.ph == "M" && e.name == "process_name"));
        assert!(events.iter().any(|e| e.cat.as_deref() == Some("prefill")));
        assert!(events.iter().any(|e| e.cat.as_deref() == Some("decode")));
        assert!(events.iter().any(|e| e.ph == "C"));
        assert!(events.iter().any(|e| e.cat.as_deref() == Some("kv")));
        // Deterministic export.
        let again = ChromeTrace::from_load_trace(&out.trace);
        assert_eq!(trace, again);
    }

    #[test]
    fn fault_windows_export_their_own_track() {
        use madmax_fault::{FaultEvent, RetryPolicy};
        use madmax_serve::simulate_load_faulty;

        let costs = StepCostModel {
            prefill_base: 100,
            prefill_slope: 1,
            step_base: 10,
            step_seq: 2,
            step_rate: 1,
            slots: 2,
        };
        let spec = LoadSpec::trace(
            (0..3)
                .map(|_| RequestSpec {
                    arrival: 0.0,
                    prompt_len: 8,
                    decode_len: 4,
                })
                .collect(),
        );
        let serve = ServeConfig::new(8, 4);
        let faults = [FaultEvent {
            at: 250,
            until: 300,
            kind: FaultKind::Fatal,
            slots_lost: 1,
            slowdown_pct: 100,
        }];
        let out = simulate_load_faulty(
            &spec,
            &serve,
            &ModelId::Llama2.build(),
            &costs,
            SimMode::Event,
            &faults,
            &RetryPolicy::retries(3),
            None,
        )
        .unwrap();
        assert!(!out.trace.faults.is_empty());
        let trace = ChromeTrace::from_load_trace(&out.trace);
        let fault_slices: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.cat.as_deref() == Some("fault"))
            .cloned()
            .collect();
        assert_eq!(fault_slices.len(), out.trace.faults.len());
        assert!(fault_slices[0].name.starts_with("fatal"));

        // Fault-free exports carry no fault track at all.
        let plain = toy_outcome(SimMode::Event);
        assert!(ChromeTrace::from_load_trace(&plain.trace)
            .events()
            .iter()
            .all(|e| e.cat.as_deref() != Some("fault")));
    }

    #[test]
    fn telemetry_summarizes_and_round_trips() {
        let out = toy_outcome(SimMode::Event);
        let t = LoadTelemetry::from_outcome(&out, SimMode::Event, 1.5);
        assert_eq!(t.completed, 3);
        assert!(t.summary().contains("event mode"));
        let js = serde_json::to_string(&t).unwrap();
        let back: LoadTelemetry = serde_json::from_str(&js).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn request_events_flow_through_sinks() {
        use std::sync::Mutex;

        #[derive(Debug, Default)]
        struct Collector(Mutex<Vec<u32>>);
        impl ProgressSink for Collector {
            fn candidate_completed(&self, _: &crate::CandidateEvent) {}
            fn request_completed(&self, event: &RequestEvent) {
                self.0.lock().unwrap().push(event.id);
            }
        }

        let costs = StepCostModel {
            prefill_base: 100,
            prefill_slope: 1,
            step_base: 10,
            step_seq: 2,
            step_rate: 1,
            slots: 2,
        };
        let spec = LoadSpec::trace(vec![RequestSpec {
            arrival: 0.0,
            prompt_len: 8,
            decode_len: 4,
        }]);
        let sink = Collector::default();
        let mut hook = forward_to_sink(&sink);
        simulate_load(
            &spec,
            &ServeConfig::new(8, 4),
            &ModelId::Llama2.build(),
            &costs,
            SimMode::Event,
            Some(&mut hook),
        )
        .unwrap();
        assert_eq!(*sink.0.lock().unwrap(), vec![0]);
    }
}
