//! Derivation of the communication collectives required by a
//! parallelization strategy (Section IV-C: "Generating
//! Parallelization-Specific Streams").

use serde::{Deserialize, Serialize};

use madmax_hw::units::ByteCount;
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, LayerGroup, ModelArch};

use crate::plan::Plan;
use crate::strategy::{CommScope, HierStrategy, Strategy, StrategyLevel};
use crate::workload::Workload;

/// Collective communication primitives modeled by MAD-Max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Reduce + broadcast (DDP weight gradients, TP partial sums).
    AllReduce,
    /// Gather sharded tensors onto every device (FSDP parameters).
    AllGather,
    /// Reduce + scatter shards (FSDP weight gradients).
    ReduceScatter,
    /// Point-to-point exchange (sharded-embedding lookups, MoE dispatch).
    AllToAll,
    /// Direct send/recv between two peers (pipeline-stage activation and
    /// gradient transfers).
    PointToPoint,
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CollectiveKind::AllReduce => "AllReduce",
            CollectiveKind::AllGather => "AllGather",
            CollectiveKind::ReduceScatter => "ReduceScatter",
            CollectiveKind::AllToAll => "All2All",
            CollectiveKind::PointToPoint => "P2P",
        })
    }
}

impl std::str::FromStr for CollectiveKind {
    type Err = ();

    /// Parses the display form (`"AllReduce"`, `"All2All"`, `"P2P"`, ...).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "AllReduce" => Ok(CollectiveKind::AllReduce),
            "AllGather" => Ok(CollectiveKind::AllGather),
            "ReduceScatter" => Ok(CollectiveKind::ReduceScatter),
            "All2All" => Ok(CollectiveKind::AllToAll),
            "P2P" => Ok(CollectiveKind::PointToPoint),
            _ => Err(()),
        }
    }
}

/// How a communication call interacts with the compute stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Urgency {
    /// The next compute op depends on the result (e.g. embedding All2All
    /// before feature interaction, TP partial-sum AllReduce).
    Blocking,
    /// Blocking, but issuable ahead of time so it can hide behind earlier
    /// compute (FSDP parameter AllGather with prefetching, Fig. 9).
    Prefetchable,
    /// Only the end of the iteration (optimizer step) depends on it
    /// (weight-gradient AllReduce/ReduceScatter).
    Deferred,
}

/// Whether a collective runs before or after its layer's compute op in
/// the stream (e.g. FSDP gathers parameters *before* compute; TP reduces
/// partial sums *after*; MoE dispatches before and combines after).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommPosition {
    /// Must complete before the layer's compute starts.
    BeforeCompute,
    /// Runs on the layer's output after compute.
    AfterCompute,
}

/// One required collective, per layer instance, per iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommReq {
    /// Which primitive.
    pub collective: CollectiveKind,
    /// Which channel (hierarchy level or the flat global group).
    pub scope: CommScope,
    /// Devices participating.
    pub group_size: usize,
    /// Logical payload: the tensor bytes the collective operates on from
    /// each device's perspective (ring/slowest-link factors are applied by
    /// the cost model, not here).
    pub payload: ByteCount,
    /// Stream semantics.
    pub urgency: Urgency,
    /// Placement relative to the layer's compute.
    pub position: CommPosition,
    /// Human-readable label, e.g. `"emb.A2A"`.
    pub label: String,
}

/// All collectives one layer group requires, split by pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerCommPlan {
    /// Forward-pass collectives (per layer instance).
    pub forward: Vec<CommReq>,
    /// Backward-pass collectives on the gradient-flow critical path.
    pub backward: Vec<CommReq>,
    /// Weight-gradient collectives (overlappable with remaining backward).
    pub grad: Vec<CommReq>,
}

impl LayerCommPlan {
    /// Total payload bytes across all phases (per instance).
    pub fn total_payload(&self) -> ByteCount {
        self.forward
            .iter()
            .chain(&self.backward)
            .chain(&self.grad)
            .map(|r| r.payload)
            .sum()
    }
}

/// Parameter bytes of one instance of `group` (embeddings use their own
/// storage dtype; dense layers use the model's parameter dtype).
pub fn instance_param_bytes(group: &LayerGroup, model: &ModelArch) -> ByteCount {
    use madmax_model::LayerKind;
    let dtype_size = match &group.kind {
        LayerKind::EmbeddingBag(e) => e.dtype.size_bytes(),
        LayerKind::TokenEmbedding(t) => t.dtype.size_bytes(),
        _ => model.param_dtype.size_bytes(),
    };
    ByteCount::new(group.kind.params() * f64::from(dtype_size))
}

fn shard_factor_excluding(levels: &[StrategyLevel], skip: usize) -> f64 {
    levels
        .iter()
        .enumerate()
        .filter(|(i, l)| *i != skip && l.strategy.shards_params())
        .map(|(_, l)| l.group_size as f64)
        .product()
}

/// Derives the per-instance communication plan for one layer group under
/// the plan's strategy for its class.
///
/// `local_batch` is samples per device (may be fractional for very large
/// clusters). Backward collectives are emitted only when the workload
/// trains the layer's class, following the paper's fine-tuning
/// simplification of omitting frozen layers' gradient work (Insight 5);
/// serve workloads emit forward traffic only. Payload sizes follow
/// `model.context_length`, so phase-specific traffic (prefill vs a
/// single-token decode step) is priced by passing the phase's effective
/// model.
pub fn derive_layer_comm(
    group: &LayerGroup,
    plan: &Plan,
    model: &ModelArch,
    cluster: &ClusterSpec,
    workload: &Workload,
    local_batch: f64,
) -> LayerCommPlan {
    let mut strategy: HierStrategy = plan.strategy_for(group.class);
    // A two-level strategy with the same scheme at both levels is exactly
    // the flat strategy over all devices; cost it with the hierarchical
    // global decomposition (an (FSDP, FSDP) gather still materializes the
    // full tensor on every device).
    if let HierStrategy::TwoLevel { intra, inter } = strategy {
        if intra == inter {
            strategy = HierStrategy::Flat(intra);
        }
    }
    let levels = strategy.levels(cluster);
    let mut out = LayerCommPlan::default();
    if levels.is_empty() {
        return out; // single-device: no communication
    }

    let trains = workload.trains(group.class);
    let p_inst = instance_param_bytes(group, model);
    let tokens = model.context_length;
    let act_dtype = model.compute_dtype;
    // Parameter/gradient payloads shrink when the wire precision is lower
    // than the storage precision (bf16 collectives over fp32 masters).
    let param_dtype_size = match &group.kind {
        madmax_model::LayerKind::EmbeddingBag(e) => e.dtype.size_bytes(),
        madmax_model::LayerKind::TokenEmbedding(t) => t.dtype.size_bytes(),
        _ => model.param_dtype.size_bytes(),
    };
    let comm_dtype_scale = (f64::from(plan.options.collective_dtype.size_bytes())
        / f64::from(param_dtype_size))
    .min(1.0);

    // Tensor parallelism does not partition the batch: a TP group of size g
    // jointly serves g devices' worth of samples, so its activation
    // reductions cover local_batch x (product of TP level sizes).
    let tp_batch = local_batch
        * levels
            .iter()
            .filter(|l| l.strategy == Strategy::Tp)
            .map(|l| l.group_size as f64)
            .product::<f64>();

    for (idx, level) in levels.iter().enumerate() {
        let other_shards = shard_factor_excluding(&levels, idx);
        let shard_payload = p_inst / other_shards * comm_dtype_scale;
        let scope = level.scope;
        let g = level.group_size;
        let name = &group.name;

        match level.strategy {
            Strategy::Tp => {
                let payload = group.kind.tp_comm_bytes_per_sample(tokens, act_dtype) * tp_batch;
                if payload.is_zero() {
                    continue; // e.g. parameter-free interaction layers
                }
                out.forward.push(CommReq {
                    collective: CollectiveKind::AllReduce,
                    scope,
                    group_size: g,
                    payload,
                    urgency: Urgency::Blocking,
                    position: CommPosition::AfterCompute,
                    label: format!("{name}.tp_ar"),
                });
                if trains {
                    out.backward.push(CommReq {
                        collective: CollectiveKind::AllReduce,
                        scope,
                        group_size: g,
                        payload,
                        urgency: Urgency::Blocking,
                        position: CommPosition::AfterCompute,
                        label: format!("{name}.tp_ar_bwd"),
                    });
                }
            }
            Strategy::Fsdp => {
                out.forward.push(CommReq {
                    collective: CollectiveKind::AllGather,
                    scope,
                    group_size: g,
                    payload: shard_payload,
                    urgency: Urgency::Prefetchable,
                    position: CommPosition::BeforeCompute,
                    label: format!("{name}.ag"),
                });
                if trains {
                    out.backward.push(CommReq {
                        collective: CollectiveKind::AllGather,
                        scope,
                        group_size: g,
                        payload: shard_payload,
                        urgency: Urgency::Prefetchable,
                        position: CommPosition::BeforeCompute,
                        label: format!("{name}.ag_bwd"),
                    });
                    out.grad.push(CommReq {
                        collective: CollectiveKind::ReduceScatter,
                        scope,
                        group_size: g,
                        payload: shard_payload,
                        urgency: Urgency::Deferred,
                        position: CommPosition::AfterCompute,
                        label: format!("{name}.rs"),
                    });
                }
            }
            Strategy::Ddp => {
                if trains {
                    out.grad.push(CommReq {
                        collective: CollectiveKind::AllReduce,
                        scope,
                        group_size: g,
                        payload: shard_payload,
                        urgency: Urgency::Deferred,
                        position: CommPosition::AfterCompute,
                        label: format!("{name}.grad_ar"),
                    });
                }
            }
            Strategy::Shard => match group.class {
                LayerClass::Embedding => {
                    let payload =
                        group.kind.embedding_exchange_bytes_per_sample(tokens) * local_batch;
                    out.forward.push(CommReq {
                        collective: CollectiveKind::AllToAll,
                        scope,
                        group_size: g,
                        payload,
                        urgency: Urgency::Blocking,
                        position: CommPosition::AfterCompute,
                        label: format!("{name}.a2a"),
                    });
                    if trains {
                        out.grad.push(CommReq {
                            collective: CollectiveKind::AllToAll,
                            scope,
                            group_size: g,
                            payload,
                            urgency: Urgency::Deferred,
                            position: CommPosition::AfterCompute,
                            label: format!("{name}.a2a_bwd"),
                        });
                    }
                }
                LayerClass::Moe => {
                    let payload =
                        group.kind.moe_dispatch_bytes_per_sample(tokens, act_dtype) * local_batch;
                    for (dir, position) in [
                        ("dispatch", CommPosition::BeforeCompute),
                        ("combine", CommPosition::AfterCompute),
                    ] {
                        out.forward.push(CommReq {
                            collective: CollectiveKind::AllToAll,
                            scope,
                            group_size: g,
                            payload,
                            urgency: Urgency::Blocking,
                            position,
                            label: format!("{name}.a2a_{dir}"),
                        });
                    }
                    if trains {
                        for (dir, position) in [
                            ("combine_bwd", CommPosition::BeforeCompute),
                            ("dispatch_bwd", CommPosition::AfterCompute),
                        ] {
                            out.backward.push(CommReq {
                                collective: CollectiveKind::AllToAll,
                                scope,
                                group_size: g,
                                payload,
                                urgency: Urgency::Blocking,
                                position,
                                label: format!("{name}.a2a_{dir}"),
                            });
                        }
                    }
                }
                // validate_strategies rejects Shard elsewhere.
                _ => {}
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;
    use madmax_model::ModelId;

    fn dlrm_setup() -> (ModelArch, ClusterSpec) {
        (ModelId::DlrmA.build(), catalog::zionex_dlrm_system())
    }

    fn find_group<'m>(model: &'m ModelArch, name: &str) -> &'m LayerGroup {
        model.groups.iter().find(|g| g.name == name).unwrap()
    }

    #[test]
    fn sharded_embedding_emits_blocking_a2a() {
        let (model, sys) = dlrm_setup();
        let plan = Plan::fsdp_baseline(&model);
        let emb = find_group(&model, "embedding_tables");
        let local_batch = model.global_batch as f64 / sys.total_devices() as f64;
        let c = derive_layer_comm(emb, &plan, &model, &sys, &Workload::pretrain(), local_batch);
        assert_eq!(c.forward.len(), 1);
        assert_eq!(c.forward[0].collective, CollectiveKind::AllToAll);
        assert_eq!(c.forward[0].urgency, Urgency::Blocking);
        assert_eq!(c.forward[0].scope, CommScope::Global);
        // 512 samples x 700 tables x 128 dim x 4B = ~183 MB per device.
        assert!(
            (c.forward[0].payload.as_mib() - 512.0 * 700.0 * 128.0 * 4.0 / 1024.0 / 1024.0).abs()
                < 1.0
        );
        // Backward gradient A2A is deferred (overlappable).
        assert_eq!(c.grad.len(), 1);
        assert_eq!(c.grad[0].urgency, Urgency::Deferred);
    }

    #[test]
    fn embedding_a2a_absent_in_frozen_finetuning_backward() {
        let (model, sys) = dlrm_setup();
        let plan = Plan::fsdp_baseline(&model);
        let emb = find_group(&model, "embedding_tables");
        let c = derive_layer_comm(
            emb,
            &plan,
            &model,
            &sys,
            &Workload::finetune_only(LayerClass::Dense),
            512.0,
        );
        assert_eq!(c.forward.len(), 1, "forward lookup exchange still required");
        assert!(c.grad.is_empty(), "frozen embeddings push no gradients");
    }

    #[test]
    fn ddp_emits_only_deferred_gradient_allreduce() {
        let (model, sys) = dlrm_setup();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
        let top = find_group(&model, "top_mlp");
        let c = derive_layer_comm(top, &plan, &model, &sys, &Workload::pretrain(), 512.0);
        assert!(c.forward.is_empty());
        assert!(c.backward.is_empty());
        assert_eq!(c.grad.len(), 1);
        assert_eq!(c.grad[0].collective, CollectiveKind::AllReduce);
        assert_eq!(c.grad[0].urgency, Urgency::Deferred);
        // Inference: DDP is communication-free.
        let ci = derive_layer_comm(top, &plan, &model, &sys, &Workload::inference(), 512.0);
        assert_eq!(ci.total_payload(), ByteCount::ZERO);
    }

    #[test]
    fn fsdp_gathers_twice_and_scatters_once() {
        let (model, sys) = dlrm_setup();
        let plan = Plan::fsdp_baseline(&model);
        let top = find_group(&model, "top_mlp");
        let c = derive_layer_comm(top, &plan, &model, &sys, &Workload::pretrain(), 512.0);
        assert_eq!(c.forward.len(), 1);
        assert_eq!(c.forward[0].collective, CollectiveKind::AllGather);
        assert_eq!(c.forward[0].urgency, Urgency::Prefetchable);
        assert_eq!(c.backward.len(), 1);
        assert_eq!(c.grad.len(), 1);
        assert_eq!(c.grad[0].collective, CollectiveKind::ReduceScatter);
        // Inference drops the backward gather and the scatter.
        let ci = derive_layer_comm(top, &plan, &model, &sys, &Workload::inference(), 512.0);
        assert_eq!(ci.forward.len(), 1);
        assert!(ci.backward.is_empty() && ci.grad.is_empty());
    }

    #[test]
    fn two_level_routes_payloads_to_channels() {
        // (TP, DDP): partial sums intra-node, weight grads inter-node on
        // the 1/8-sharded parameters (Insight 3).
        use madmax_hw::CommLevel;
        let (model, sys) = dlrm_setup();
        let plan = Plan::fsdp_baseline(&model).with_strategy(
            LayerClass::Dense,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
        let top = find_group(&model, "top_mlp");
        let c = derive_layer_comm(top, &plan, &model, &sys, &Workload::pretrain(), 512.0);
        let fwd = &c.forward[0];
        assert_eq!(fwd.scope, CommScope::Level(CommLevel::IntraNode));
        assert_eq!(fwd.collective, CollectiveKind::AllReduce);
        let grad = &c.grad[0];
        assert_eq!(grad.scope, CommScope::Level(CommLevel::InterNode));
        // 1/8 TP-sharded, halved again on the wire (bf16 over fp32 masters).
        let full = instance_param_bytes(top, &model);
        assert!((grad.payload.value() - full.value() / 8.0 / 2.0).abs() < 1.0);
    }

    #[test]
    fn moe_expert_parallelism_is_blocking_a2a() {
        let model = ModelId::DlrmAMoe.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model)
            .with_strategy(LayerClass::Moe, HierStrategy::flat(Strategy::Shard));
        let moe = find_group(&model, "moe_top_mlps");
        let c = derive_layer_comm(moe, &plan, &model, &sys, &Workload::pretrain(), 512.0);
        assert_eq!(c.forward.len(), 2, "dispatch + combine");
        assert!(c
            .forward
            .iter()
            .all(|r| r.collective == CollectiveKind::AllToAll));
        assert!(c.forward.iter().all(|r| r.urgency == Urgency::Blocking));
        assert_eq!(c.backward.len(), 2, "backward re-exchange is blocking too");
    }

    #[test]
    fn single_device_needs_no_comm() {
        let model = ModelId::DlrmA.build();
        let one = ClusterSpec::new(
            "one",
            catalog::a100_40gb(),
            1,
            1,
            madmax_hw::FabricKind::NvLink,
            madmax_hw::FabricKind::RoCE,
        );
        let plan = Plan::fsdp_baseline(&model);
        for g in &model.groups {
            let c = derive_layer_comm(g, &plan, &model, &one, &Workload::pretrain(), 64.0);
            assert_eq!(c.total_payload(), ByteCount::ZERO, "{}", g.name);
        }
    }
}
