//! Parallelization strategies and their hierarchical composition
//! (Section II-B of the paper).

use serde::{Deserialize, Serialize};

use madmax_hw::{ClusterSpec, CommLevel};
use madmax_model::LayerClass;

/// How one layer type is distributed across a device group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Distributed Data Parallelism: parameters replicated; weight
    /// gradients AllReduced in backward.
    Ddp,
    /// Fully Sharded Data Parallelism: parameters sharded; AllGather before
    /// compute, ReduceScatter of gradients in backward.
    Fsdp,
    /// Tensor Parallelism: parameters sharded; partial sums AllReduced.
    Tp,
    /// Naive model-parallel sharding (embedding tables, expert parallelism);
    /// All2All exchanges route data to owners.
    Shard,
}

impl Strategy {
    /// Whether this strategy shards parameters across its group.
    pub fn shards_params(self) -> bool {
        !matches!(self, Strategy::Ddp)
    }

    /// Whether this strategy splits the matrix compute itself.
    pub fn shards_compute(self) -> bool {
        matches!(self, Strategy::Tp)
    }

    /// Short paper notation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Strategy::Ddp => "DDP",
            Strategy::Fsdp => "FSDP",
            Strategy::Tp => "TP",
            Strategy::Shard => "MP",
        }
    }

    /// Whether `self` may be applied to layers of `class`.
    ///
    /// Sharding (MP) applies to embedding tables and expert parallelism;
    /// TP applies to matrix-compute layers; DDP/FSDP apply everywhere.
    pub fn allowed_for(self, class: LayerClass) -> bool {
        match self {
            Strategy::Ddp | Strategy::Fsdp => true,
            Strategy::Tp => !matches!(class, LayerClass::Embedding),
            Strategy::Shard => matches!(class, LayerClass::Embedding | LayerClass::Moe),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The scope over which a single strategy level communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommScope {
    /// The whole machine as one flat group: collectives span the slowest
    /// (inter-node) links when the system is multi-node.
    Global,
    /// One hierarchy level only.
    Level(CommLevel),
}

/// A hierarchical strategy for one layer type.
///
/// The paper writes `(TP, DDP)` for "TP within a node, DDP across nodes"
/// and `(TP)` for TP applied flat across all devices; ordering matters for
/// both memory footprint and which interconnect carries which traffic
/// (Insight 3).
///
/// ```
/// use madmax_parallel::{HierStrategy, Strategy};
/// let s = HierStrategy::two_level(Strategy::Tp, Strategy::Ddp);
/// assert_eq!(s.to_string(), "(TP, DDP)");
/// assert_eq!(HierStrategy::flat(Strategy::Fsdp).to_string(), "(FSDP)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HierStrategy {
    /// One strategy over all devices.
    Flat(Strategy),
    /// Separate strategies within and across nodes.
    TwoLevel {
        /// Strategy within each node.
        intra: Strategy,
        /// Strategy across nodes.
        inter: Strategy,
    },
}

/// One level of an expanded hierarchical strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyLevel {
    /// The strategy applied at this level.
    pub strategy: Strategy,
    /// Devices in this level's communication group.
    pub group_size: usize,
    /// Channel the level's collectives run on.
    pub scope: CommScope,
}

impl HierStrategy {
    /// A flat strategy over all devices.
    pub fn flat(strategy: Strategy) -> Self {
        HierStrategy::Flat(strategy)
    }

    /// A two-level `(intra, inter)` strategy.
    pub fn two_level(intra: Strategy, inter: Strategy) -> Self {
        HierStrategy::TwoLevel { intra, inter }
    }

    /// Expands into concrete levels for a cluster. Flat strategies become a
    /// single global group; degenerate levels (group size 1) are dropped.
    pub fn levels(&self, cluster: &ClusterSpec) -> Vec<StrategyLevel> {
        match *self {
            HierStrategy::Flat(strategy) => {
                let p = cluster.total_devices();
                if p <= 1 {
                    vec![]
                } else {
                    vec![StrategyLevel {
                        strategy,
                        group_size: p,
                        scope: CommScope::Global,
                    }]
                }
            }
            HierStrategy::TwoLevel { intra, inter } => {
                let mut v = Vec::with_capacity(2);
                if cluster.devices_per_node > 1 {
                    v.push(StrategyLevel {
                        strategy: intra,
                        group_size: cluster.devices_per_node,
                        scope: CommScope::Level(CommLevel::IntraNode),
                    });
                }
                if cluster.num_nodes > 1 {
                    v.push(StrategyLevel {
                        strategy: inter,
                        group_size: cluster.num_nodes,
                        scope: CommScope::Level(CommLevel::InterNode),
                    });
                }
                v
            }
        }
    }

    /// Total factor by which parameters (and gradients/optimizer states)
    /// are sharded on this cluster.
    pub fn param_shard_factor(&self, cluster: &ClusterSpec) -> f64 {
        self.levels(cluster)
            .iter()
            .filter(|l| l.strategy.shards_params())
            .map(|l| l.group_size as f64)
            .product()
    }

    /// Total degree by which the matrix compute itself is split (TP only).
    pub fn compute_shard_factor(&self, cluster: &ClusterSpec) -> f64 {
        self.levels(cluster)
            .iter()
            .filter(|l| l.strategy.shards_compute())
            .map(|l| l.group_size as f64)
            .product()
    }

    /// Whether every level's strategy may be applied to `class`.
    pub fn allowed_for(&self, class: LayerClass) -> bool {
        match *self {
            HierStrategy::Flat(s) => s.allowed_for(class),
            HierStrategy::TwoLevel { intra, inter } => {
                intra.allowed_for(class) && inter.allowed_for(class)
            }
        }
    }

    /// All distinct hierarchical strategies valid for `class`: flat and
    /// two-level combinations of the allowed base strategies (the design
    /// space enumerated in Figs. 10-14).
    pub fn enumerate_for(class: LayerClass) -> Vec<HierStrategy> {
        const BASE: [Strategy; 4] = [Strategy::Ddp, Strategy::Fsdp, Strategy::Tp, Strategy::Shard];
        let allowed: Vec<Strategy> = BASE.into_iter().filter(|s| s.allowed_for(class)).collect();
        let mut out: Vec<HierStrategy> = allowed.iter().map(|&s| HierStrategy::Flat(s)).collect();
        for &intra in &allowed {
            for &inter in &allowed {
                out.push(HierStrategy::TwoLevel { intra, inter });
            }
        }
        out
    }
}

impl std::fmt::Display for HierStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierStrategy::Flat(s) => write!(f, "({s})"),
            HierStrategy::TwoLevel { intra, inter } => write!(f, "({intra}, {inter})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::catalog;

    #[test]
    fn shard_factors_depend_on_ordering() {
        // Insight 3: ((TP),(DDP)) shards by node size (8); ((DDP),(TP))
        // shards by the number of nodes (16) on the 8x16 ZionEX system.
        let sys = catalog::zionex_dlrm_system();
        let tp_ddp = HierStrategy::two_level(Strategy::Tp, Strategy::Ddp);
        let ddp_tp = HierStrategy::two_level(Strategy::Ddp, Strategy::Tp);
        assert_eq!(tp_ddp.param_shard_factor(&sys), 8.0);
        assert_eq!(ddp_tp.param_shard_factor(&sys), 16.0);
        assert!(ddp_tp.param_shard_factor(&sys) > tp_ddp.param_shard_factor(&sys));
    }

    #[test]
    fn flat_strategies_span_everything() {
        let sys = catalog::zionex_dlrm_system();
        let fsdp = HierStrategy::flat(Strategy::Fsdp);
        assert_eq!(fsdp.param_shard_factor(&sys), 128.0);
        let levels = fsdp.levels(&sys);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].scope, CommScope::Global);
        assert_eq!(levels[0].group_size, 128);
    }

    #[test]
    fn single_node_drops_inter_level() {
        let sys = catalog::zionex_dlrm_system().with_num_nodes(1);
        let s = HierStrategy::two_level(Strategy::Tp, Strategy::Ddp);
        let levels = s.levels(&sys);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].strategy, Strategy::Tp);
    }

    #[test]
    fn ddp_never_shards() {
        let sys = catalog::zionex_dlrm_system();
        assert_eq!(
            HierStrategy::flat(Strategy::Ddp).param_shard_factor(&sys),
            1.0
        );
        assert_eq!(
            HierStrategy::two_level(Strategy::Ddp, Strategy::Ddp).param_shard_factor(&sys),
            1.0
        );
    }

    #[test]
    fn compute_factor_counts_tp_only() {
        let sys = catalog::zionex_dlrm_system();
        assert_eq!(
            HierStrategy::flat(Strategy::Tp).compute_shard_factor(&sys),
            128.0
        );
        assert_eq!(
            HierStrategy::flat(Strategy::Fsdp).compute_shard_factor(&sys),
            1.0
        );
        assert_eq!(
            HierStrategy::flat(Strategy::Shard).compute_shard_factor(&sys),
            1.0
        );
        assert_eq!(
            HierStrategy::two_level(Strategy::Tp, Strategy::Fsdp).compute_shard_factor(&sys),
            8.0
        );
    }

    #[test]
    fn class_permissions() {
        assert!(Strategy::Shard.allowed_for(LayerClass::Embedding));
        assert!(Strategy::Shard.allowed_for(LayerClass::Moe));
        assert!(!Strategy::Shard.allowed_for(LayerClass::Dense));
        assert!(!Strategy::Tp.allowed_for(LayerClass::Embedding));
        assert!(Strategy::Tp.allowed_for(LayerClass::Transformer));
        assert!(HierStrategy::two_level(Strategy::Tp, Strategy::Shard).allowed_for(LayerClass::Moe));
        assert!(
            !HierStrategy::two_level(Strategy::Tp, Strategy::Shard).allowed_for(LayerClass::Dense)
        );
    }

    #[test]
    fn enumeration_counts() {
        // Dense: 3 base strategies -> 3 flat + 9 two-level.
        assert_eq!(HierStrategy::enumerate_for(LayerClass::Dense).len(), 12);
        // Embedding: DDP/FSDP/Shard -> 12; MoE: all four -> 20.
        assert_eq!(HierStrategy::enumerate_for(LayerClass::Embedding).len(), 12);
        assert_eq!(HierStrategy::enumerate_for(LayerClass::Moe).len(), 20);
    }

    #[test]
    fn notation_matches_paper() {
        assert_eq!(
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp).to_string(),
            "(TP, DDP)"
        );
        assert_eq!(HierStrategy::flat(Strategy::Shard).to_string(), "(MP)");
    }
}

/// Error parsing a strategy from its paper notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError {
    input: String,
}

impl std::fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid strategy notation `{}`; expected e.g. `DDP`, `(FSDP)`, or `(TP, DDP)`",
            self.input
        )
    }
}

impl std::error::Error for ParseStrategyError {}

impl std::str::FromStr for Strategy {
    type Err = ParseStrategyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "DDP" => Ok(Strategy::Ddp),
            "FSDP" => Ok(Strategy::Fsdp),
            "TP" => Ok(Strategy::Tp),
            "MP" | "SHARD" => Ok(Strategy::Shard),
            _ => Err(ParseStrategyError {
                input: s.to_owned(),
            }),
        }
    }
}

impl std::str::FromStr for HierStrategy {
    type Err = ParseStrategyError;

    /// Parses the paper's notation: `(TP, DDP)` is two-level, `(FSDP)` or
    /// bare `FSDP` is flat.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let inner = trimmed
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .unwrap_or(trimmed)
            .trim();
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        match parts.as_slice() {
            [one] => Ok(HierStrategy::Flat(one.parse()?)),
            [intra, inter] => Ok(HierStrategy::TwoLevel {
                intra: intra.parse()?,
                inter: inter.parse()?,
            }),
            _ => Err(ParseStrategyError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn parses_paper_notation() {
        assert_eq!(
            "(TP, DDP)".parse::<HierStrategy>().unwrap(),
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp)
        );
        assert_eq!(
            "(FSDP)".parse::<HierStrategy>().unwrap(),
            HierStrategy::flat(Strategy::Fsdp)
        );
        assert_eq!(
            "ddp".parse::<HierStrategy>().unwrap(),
            HierStrategy::flat(Strategy::Ddp)
        );
        assert_eq!(
            "(MP)".parse::<HierStrategy>().unwrap(),
            HierStrategy::flat(Strategy::Shard)
        );
        assert_eq!(
            "( tp , fsdp )".parse::<HierStrategy>().unwrap(),
            HierStrategy::two_level(Strategy::Tp, Strategy::Fsdp)
        );
    }

    #[test]
    fn parse_round_trips_display() {
        for s in [
            HierStrategy::flat(Strategy::Ddp),
            HierStrategy::flat(Strategy::Shard),
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
            HierStrategy::two_level(Strategy::Fsdp, Strategy::Tp),
        ] {
            let parsed: HierStrategy = s.to_string().parse().unwrap();
            assert_eq!(parsed, s);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!("(TP, DDP, FSDP)".parse::<HierStrategy>().is_err());
        assert!("ZeRO".parse::<HierStrategy>().is_err());
        assert!("".parse::<HierStrategy>().is_err());
        let err = "ZeRO".parse::<Strategy>().unwrap_err();
        assert!(err.to_string().contains("ZeRO"));
    }
}
