//! Serving-load knobs: the serializable description of a *request
//! stream* hitting a serve deployment — arrival process, admission
//! queue, and paged KV-cache budget.
//!
//! [`ServeConfig`](crate::ServeConfig) describes one synchronized
//! (prefill, decode) wave; [`LoadSpec`] describes the traffic around it:
//! how requests arrive ([`ArrivalSpec`]), how many decode slots run
//! in flight, how deep the admission queue may grow, and how many paged
//! KV-cache blocks the deployment holds. The continuous-batching
//! simulator (`madmax-serve`) executes a `LoadSpec` against a priced
//! plan; this crate only owns the *shape* so plans, workloads, and load
//! specs serialize through one config layer.

use serde::{Deserialize, Serialize};

/// One request of a trace-driven arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Arrival time in seconds from the start of the run.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Output tokens to generate (at least 1 — the serving layer counts
    /// the prefill's first token separately).
    pub decode_len: usize,
}

/// The request arrival process of a load run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// A seeded, deterministic Poisson process: exponential inter-arrival
    /// times at `rate` requests/second, truncated after `count` requests.
    /// Prompt/decode lengths come from the workload's `ServeConfig`.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate: f64,
        /// Number of requests to generate.
        count: usize,
        /// PRNG seed; equal seeds reproduce the stream exactly.
        seed: u64,
    },
    /// A bursty on-off modulated Poisson process: the stream alternates
    /// between ON phases (Poisson arrivals at `rate` requests/second)
    /// and OFF phases (no arrivals), with exponentially distributed
    /// phase lengths of mean `on_secs` and `off_secs`. Truncated after
    /// `count` requests; prompt/decode lengths come from the workload's
    /// `ServeConfig`.
    Bursty {
        /// Mean arrival rate *during ON phases*, requests per second.
        rate: f64,
        /// Mean ON-phase length, seconds.
        on_secs: f64,
        /// Mean OFF-phase length, seconds.
        off_secs: f64,
        /// Number of requests to generate.
        count: usize,
        /// PRNG seed; equal seeds reproduce the stream exactly.
        seed: u64,
    },
    /// An explicit request trace (e.g. parsed from JSONL), sorted by
    /// arrival time.
    Trace {
        /// The requests, in arrival order.
        requests: Vec<RequestSpec>,
    },
}

impl ArrivalSpec {
    /// Number of requests this process will emit.
    pub fn count(&self) -> usize {
        match self {
            ArrivalSpec::Poisson { count, .. } | ArrivalSpec::Bursty { count, .. } => *count,
            ArrivalSpec::Trace { requests } => requests.len(),
        }
    }
}

/// A complete load scenario: arrival process plus the admission and
/// paged-KV knobs of the serving deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// How requests arrive.
    pub arrivals: ArrivalSpec,
    /// Maximum requests decoded in flight at once. `None` uses the serve
    /// workload's effective decode batch.
    pub slots: Option<usize>,
    /// Paged KV-cache budget in blocks. `None` leaves the KV-cache
    /// unpaged (admission is bounded by slots and queue depth only).
    pub kv_blocks: Option<u64>,
    /// Tokens per KV-cache block (vLLM-style paging granularity).
    pub block_tokens: usize,
    /// Admission-queue capacity; arrivals past it are rejected. `None`
    /// queues without bound.
    pub queue_capacity: Option<usize>,
    /// With a `kv_blocks` budget: admit optimistically and, when a decode
    /// step cannot grow its cache, evict the youngest in-flight request
    /// (its prefill is recomputed over prompt + generated tokens when it
    /// is re-admitted). `false` reserves each request's worst-case block
    /// count at admission, so running requests never stall.
    pub eviction: bool,
    /// Stop the run at this time (seconds); queued and in-flight requests
    /// are reported as such. `None` drains every request.
    pub horizon: Option<f64>,
}

/// Default paging granularity, tokens per block.
pub const DEFAULT_BLOCK_TOKENS: usize = 16;

impl LoadSpec {
    /// A Poisson request stream at `rate` requests/second, truncated
    /// after `count` requests, with unbounded queue and unpaged KV.
    pub fn poisson(rate: f64, count: usize, seed: u64) -> Self {
        Self::with_arrivals(ArrivalSpec::Poisson { rate, count, seed })
    }

    /// A bursty on-off request stream: Poisson at `rate` requests/second
    /// during ON phases (mean `on_secs`), silent during OFF phases (mean
    /// `off_secs`), truncated after `count` requests.
    pub fn bursty(rate: f64, on_secs: f64, off_secs: f64, count: usize, seed: u64) -> Self {
        Self::with_arrivals(ArrivalSpec::Bursty {
            rate,
            on_secs,
            off_secs,
            count,
            seed,
        })
    }

    /// A trace-driven request stream.
    pub fn trace(requests: Vec<RequestSpec>) -> Self {
        Self::with_arrivals(ArrivalSpec::Trace { requests })
    }

    fn with_arrivals(arrivals: ArrivalSpec) -> Self {
        Self {
            arrivals,
            slots: None,
            kv_blocks: None,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            queue_capacity: None,
            eviction: false,
            horizon: None,
        }
    }

    /// Sets the in-flight slot count.
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = Some(slots);
        self
    }

    /// Sets the paged KV-cache budget, in blocks.
    #[must_use]
    pub fn with_kv_blocks(mut self, blocks: u64) -> Self {
        self.kv_blocks = Some(blocks);
        self
    }

    /// Sets the admission-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Enables eviction + recompute under KV pressure.
    #[must_use]
    pub fn with_eviction(mut self, on: bool) -> Self {
        self.eviction = on;
        self
    }

    /// Stops the run at `horizon` seconds.
    #[must_use]
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Structural validation: rates/times finite and non-negative, trace
    /// sorted, paging granularity non-zero, per-request token counts
    /// non-zero.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_tokens == 0 {
            return Err("block_tokens must be >= 1".to_owned());
        }
        if self.slots == Some(0) {
            return Err("slots must be >= 1".to_owned());
        }
        if self.kv_blocks == Some(0) {
            return Err("kv_blocks must be >= 1".to_owned());
        }
        if let Some(h) = self.horizon {
            if !h.is_finite() || h < 0.0 {
                return Err(format!("horizon must be finite and >= 0, got {h}"));
            }
        }
        match &self.arrivals {
            ArrivalSpec::Poisson { rate, count, .. } => {
                if !rate.is_finite() || *rate <= 0.0 {
                    return Err(format!("Poisson rate must be finite and > 0, got {rate}"));
                }
                if *count == 0 {
                    return Err("Poisson count must be >= 1".to_owned());
                }
            }
            ArrivalSpec::Bursty {
                rate,
                on_secs,
                off_secs,
                count,
                ..
            } => {
                if !rate.is_finite() || *rate <= 0.0 {
                    return Err(format!("bursty rate must be finite and > 0, got {rate}"));
                }
                if !on_secs.is_finite() || *on_secs <= 0.0 {
                    return Err(format!(
                        "bursty on_secs must be finite and > 0, got {on_secs}"
                    ));
                }
                if !off_secs.is_finite() || *off_secs <= 0.0 {
                    return Err(format!(
                        "bursty off_secs must be finite and > 0, got {off_secs}"
                    ));
                }
                if *count == 0 {
                    return Err("bursty count must be >= 1".to_owned());
                }
            }
            ArrivalSpec::Trace { requests } => {
                if requests.is_empty() {
                    return Err("arrival trace is empty".to_owned());
                }
                let mut prev = 0.0f64;
                for (i, r) in requests.iter().enumerate() {
                    if !r.arrival.is_finite() || r.arrival < 0.0 {
                        return Err(format!(
                            "request {i}: arrival must be finite and >= 0, got {}",
                            r.arrival
                        ));
                    }
                    if r.arrival < prev {
                        return Err(format!("request {i}: arrivals must be sorted"));
                    }
                    prev = r.arrival;
                    if r.prompt_len == 0 || r.decode_len == 0 {
                        return Err(format!(
                            "request {i}: prompt_len and decode_len must be >= 1"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_the_knobs() {
        let spec = LoadSpec::poisson(8.0, 100, 42)
            .with_slots(16)
            .with_kv_blocks(4096)
            .with_queue_capacity(64)
            .with_eviction(true)
            .with_horizon(30.0);
        assert_eq!(spec.arrivals.count(), 100);
        assert_eq!(spec.slots, Some(16));
        assert_eq!(spec.kv_blocks, Some(4096));
        assert_eq!(spec.queue_capacity, Some(64));
        assert!(spec.eviction);
        assert_eq!(spec.horizon, Some(30.0));
        spec.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_shapes() {
        assert!(LoadSpec::poisson(0.0, 10, 1).validate().is_err());
        assert!(LoadSpec::poisson(f64::NAN, 10, 1).validate().is_err());
        assert!(LoadSpec::poisson(1.0, 0, 1).validate().is_err());
        let mut spec = LoadSpec::poisson(1.0, 1, 1);
        spec.block_tokens = 0;
        assert!(spec.validate().is_err());
        assert!(LoadSpec::bursty(0.0, 1.0, 1.0, 10, 1).validate().is_err());
        assert!(LoadSpec::bursty(4.0, 0.0, 1.0, 10, 1).validate().is_err());
        assert!(LoadSpec::bursty(4.0, 1.0, -1.0, 10, 1).validate().is_err());
        assert!(LoadSpec::bursty(4.0, 1.0, 1.0, 0, 1).validate().is_err());
        assert!(LoadSpec::bursty(4.0, 1.0, 1.0, 10, 1).validate().is_ok());
        assert_eq!(LoadSpec::bursty(4.0, 1.0, 1.0, 10, 1).arrivals.count(), 10);
        assert!(LoadSpec::trace(vec![]).validate().is_err());
        let unsorted = LoadSpec::trace(vec![
            RequestSpec {
                arrival: 1.0,
                prompt_len: 8,
                decode_len: 4,
            },
            RequestSpec {
                arrival: 0.5,
                prompt_len: 8,
                decode_len: 4,
            },
        ]);
        assert!(unsorted.validate().is_err());
        let zero_tokens = LoadSpec::trace(vec![RequestSpec {
            arrival: 0.0,
            prompt_len: 0,
            decode_len: 4,
        }]);
        assert!(zero_tokens.validate().is_err());
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = LoadSpec::trace(vec![RequestSpec {
            arrival: 0.25,
            prompt_len: 128,
            decode_len: 64,
        }])
        .with_kv_blocks(512)
        .with_eviction(true);
        let json = serde_json::to_string(&spec).unwrap();
        let back: LoadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
