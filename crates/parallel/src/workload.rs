//! The [`Workload`] API: a structured description of *what* a model
//! executes — pre-training, fine-tuning, or serving — with per-phase
//! ([`WorkloadPhase`]) FLOP, bytes-moved, and memory semantics.
//!
//! `Workload` replaces the flat `Task` enum. Training workloads run one
//! [`WorkloadPhase::FwdBwd`] iteration (forward + backward + update).
//! Serving ([`Workload::serve`]) is described by a [`ServeConfig`] and
//! runs a compute-bound [`WorkloadPhase::Prefill`] over the prompt
//! followed by `decode_len` bandwidth-bound [`WorkloadPhase::Decode`]
//! steps, each generating one token per sequence while reading a KV-cache
//! that grows with every generated token.
//!
//! The legacy `Task::Inference` shape survives as [`Workload::inference`]:
//! a prefill-only serve workload — same effective model, no KV-cache, no
//! decode steps — whose engine path is byte-for-byte the old forward-only
//! simulation.

use std::borrow::Cow;
use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use madmax_model::{LayerClass, ModelArch};

/// One execution phase of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadPhase {
    /// One training iteration: forward + backward + optimizer update.
    FwdBwd,
    /// Compute-bound forward pass over the whole prompt (produces the
    /// first output token).
    Prefill,
    /// One autoregressive decode step: a single-token forward pass per
    /// sequence, bandwidth-bound by the KV-cache read.
    Decode,
}

impl std::fmt::Display for WorkloadPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkloadPhase::FwdBwd => "fwd+bwd",
            WorkloadPhase::Prefill => "prefill",
            WorkloadPhase::Decode => "decode",
        })
    }
}

/// Configuration of a serving workload: prompt processing plus token-level
/// autoregressive decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Prompt length in tokens. `None` uses the model's `context_length`
    /// unchanged (what the legacy forward-only inference task did).
    pub prompt_len: Option<usize>,
    /// Output tokens generated per sequence. `0` is prefill-only.
    pub decode_len: usize,
    /// Sequences decoded concurrently (the serving batch, applied to both
    /// phases). `None` uses the model's `global_batch`.
    pub decode_batch: Option<usize>,
    /// Model the KV-cache: its per-device memory footprint (included in
    /// OOM checks, growing to `prompt + decode_len` tokens) and the
    /// per-step cache read that makes decode bandwidth-bound. `false`
    /// idealizes decode as compute-only.
    pub kv_cache: bool,
}

impl ServeConfig {
    /// Prompt-only serving with the model's own context and batch — the
    /// exact shape of the legacy forward-only inference task.
    pub fn prefill_only() -> Self {
        Self {
            prompt_len: None,
            decode_len: 0,
            decode_batch: None,
            kv_cache: false,
        }
    }

    /// A prompt of `prompt_len` tokens followed by `decode_len` generated
    /// tokens, with the KV-cache modeled.
    pub fn new(prompt_len: usize, decode_len: usize) -> Self {
        Self {
            prompt_len: Some(prompt_len),
            decode_len,
            decode_batch: None,
            kv_cache: true,
        }
    }

    /// Sets the serving batch (sequences decoded concurrently).
    #[must_use]
    pub fn with_decode_batch(mut self, batch: usize) -> Self {
        self.decode_batch = Some(batch);
        self
    }

    /// Disables KV-cache modeling (idealized, compute-only decode).
    #[must_use]
    pub fn without_kv_cache(mut self) -> Self {
        self.kv_cache = false;
        self
    }

    /// Whether any decode steps run.
    pub fn has_decode(&self) -> bool {
        self.decode_len > 0
    }

    /// The prompt length resolved against a model.
    pub fn effective_prompt_len(&self, model: &ModelArch) -> usize {
        self.prompt_len.unwrap_or(model.context_length)
    }

    /// The serving batch resolved against a model.
    pub fn effective_batch(&self, model: &ModelArch) -> usize {
        self.decode_batch.unwrap_or(model.global_batch)
    }

    /// The KV-cache length after the last decode step (tokens per
    /// sequence), given the resolved prompt length.
    pub fn max_kv_len(&self, prompt_len: usize) -> usize {
        prompt_len + self.decode_len
    }
}

impl std::fmt::Display for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.prompt_len {
            Some(p) => write!(f, "prompt={p}")?,
            None => f.write_str("prompt=ctx")?,
        }
        write!(f, " decode={}", self.decode_len)?;
        if let Some(b) = self.decode_batch {
            write!(f, " batch={b}")?;
        }
        if !self.kv_cache {
            f.write_str(" no-kv")?;
        }
        Ok(())
    }
}

/// What a model executes, carrying per-phase semantics every engine layer
/// consumes (successor of the removed flat `Task` enum).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Full training: all layers trainable, one fwd+bwd phase.
    Pretrain,
    /// Fine-tuning with only the listed layer classes trainable; frozen
    /// layers' gradient compute and communication are omitted (the
    /// paper's Insight 5 modeling choice).
    Finetune {
        /// Layer classes whose parameters are updated.
        trainable: BTreeSet<LayerClass>,
    },
    /// Serving: prefill over the prompt, then token-level decode.
    Serve(ServeConfig),
}

impl Workload {
    /// Full training of every layer class.
    pub fn pretrain() -> Self {
        Workload::Pretrain
    }

    /// Fine-tuning the listed layer classes.
    pub fn finetune(classes: impl IntoIterator<Item = LayerClass>) -> Self {
        Workload::Finetune {
            trainable: classes.into_iter().collect(),
        }
    }

    /// Fine-tuning a single layer class (e.g. only the embedding tables
    /// or only the MLPs, as in Fig. 14).
    pub fn finetune_only(class: LayerClass) -> Self {
        Workload::finetune([class])
    }

    /// A serving workload.
    pub fn serve(config: ServeConfig) -> Self {
        Workload::Serve(config)
    }

    /// The legacy forward-only inference task: a prefill-only serve over
    /// the model's own context and batch, no KV-cache modeling.
    pub fn inference() -> Self {
        Workload::Serve(ServeConfig::prefill_only())
    }

    /// The serve configuration, for serving workloads.
    pub fn serve_config(&self) -> Option<&ServeConfig> {
        match self {
            Workload::Serve(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// The phases this workload executes, in order.
    pub fn phases(&self) -> &'static [WorkloadPhase] {
        match self {
            Workload::Pretrain | Workload::Finetune { .. } => &[WorkloadPhase::FwdBwd],
            Workload::Serve(cfg) if cfg.decode_len > 0 => {
                &[WorkloadPhase::Prefill, WorkloadPhase::Decode]
            }
            Workload::Serve(_) => &[WorkloadPhase::Prefill],
        }
    }

    /// Whether a backward pass exists at all.
    pub fn has_backward(&self) -> bool {
        !matches!(self, Workload::Serve(_))
    }

    /// Whether layers of `class` receive gradient updates.
    pub fn trains(&self, class: LayerClass) -> bool {
        match self {
            Workload::Pretrain => true,
            Workload::Finetune { trainable } => trainable.contains(&class),
            Workload::Serve(_) => false,
        }
    }

    /// Whether activations of `class` layers must be retained for
    /// backward.
    pub fn retains_activations(&self, class: LayerClass) -> bool {
        self.trains(class)
    }

    /// The model as this workload's primary phase executes it: serving
    /// workloads override the context length with the prompt length and
    /// the global batch with the serving batch. Training workloads (and
    /// serve configs without overrides) borrow the model unchanged.
    ///
    /// The override is idempotent: applying it to an already-effective
    /// model (e.g. a pipeline stage's sub-model) changes nothing.
    pub fn effective_model<'m>(&self, model: &'m ModelArch) -> Cow<'m, ModelArch> {
        match self.serve_config() {
            Some(cfg) if cfg.prompt_len.is_some() || cfg.decode_batch.is_some() => {
                let mut m = model.clone();
                if let Some(p) = cfg.prompt_len {
                    m.context_length = p;
                }
                if let Some(b) = cfg.decode_batch {
                    m.global_batch = b;
                }
                Cow::Owned(m)
            }
            _ => Cow::Borrowed(model),
        }
    }

    /// The model as one decode step executes it — a single-token context
    /// at the serving batch — or `None` when the workload has no decode
    /// phase.
    pub fn decode_model(&self, model: &ModelArch) -> Option<ModelArch> {
        let cfg = self.serve_config().filter(|c| c.has_decode())?;
        let mut m = model.clone();
        m.context_length = 1;
        m.global_batch = cfg.effective_batch(model);
        Some(m)
    }

    /// Short display label.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            Workload::Pretrain => Cow::Borrowed("pre-training"),
            Workload::Finetune { trainable } => {
                let names: Vec<String> = trainable.iter().map(|c| c.to_string()).collect();
                Cow::Owned(format!("fine-tuning [{}]", names.join(", ")))
            }
            Workload::Serve(cfg) if cfg == &ServeConfig::prefill_only() => {
                Cow::Borrowed("inference")
            }
            Workload::Serve(cfg) => Cow::Owned(format!("serve ({cfg})")),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretrain_trains_everything() {
        for c in LayerClass::ALL {
            assert!(Workload::pretrain().trains(c));
        }
        assert!(Workload::pretrain().has_backward());
        assert_eq!(Workload::pretrain().phases(), &[WorkloadPhase::FwdBwd]);
    }

    #[test]
    fn serve_trains_nothing_and_phases_split() {
        let prefill = Workload::inference();
        assert!(!prefill.has_backward());
        assert_eq!(prefill.phases(), &[WorkloadPhase::Prefill]);
        for c in LayerClass::ALL {
            assert!(!prefill.trains(c));
            assert!(!prefill.retains_activations(c));
        }
        let serve = Workload::serve(ServeConfig::new(512, 64));
        assert_eq!(
            serve.phases(),
            &[WorkloadPhase::Prefill, WorkloadPhase::Decode]
        );
    }

    #[test]
    fn finetune_is_selective() {
        let w = Workload::finetune_only(LayerClass::Embedding);
        assert!(w.trains(LayerClass::Embedding));
        assert!(!w.trains(LayerClass::Dense));
        assert!(w.has_backward());
    }

    #[test]
    fn inference_is_the_identity_serve_shape() {
        // The legacy-inference mapping is the *identity* engine shape: no
        // prompt or batch override, no KV-cache, no decode steps.
        let cfg = *Workload::inference().serve_config().unwrap();
        assert_eq!(cfg, ServeConfig::prefill_only());
        assert!(!cfg.has_decode());
    }

    #[test]
    fn effective_model_overrides_are_idempotent() {
        let model = madmax_model::ModelId::Llama2.build();
        let w = Workload::serve(ServeConfig::new(256, 32).with_decode_batch(64));
        let eff = w.effective_model(&model);
        assert_eq!(eff.context_length, 256);
        assert_eq!(eff.global_batch, 64);
        assert_eq!(eff.name, model.name, "no rename");
        let again = w.effective_model(&eff);
        assert_eq!(again.as_ref(), eff.as_ref());
        // Legacy inference borrows the model untouched.
        assert!(matches!(
            Workload::inference().effective_model(&model),
            Cow::Borrowed(_)
        ));
    }

    #[test]
    fn decode_model_is_single_token() {
        let model = madmax_model::ModelId::Llama2.build();
        let w = Workload::serve(ServeConfig::new(256, 32).with_decode_batch(64));
        let d = w.decode_model(&model).unwrap();
        assert_eq!(d.context_length, 1);
        assert_eq!(d.global_batch, 64);
        assert!(Workload::inference().decode_model(&model).is_none());
        assert!(Workload::pretrain().decode_model(&model).is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(Workload::pretrain().to_string(), "pre-training");
        assert_eq!(Workload::inference().to_string(), "inference");
        assert!(Workload::finetune_only(LayerClass::Dense)
            .to_string()
            .contains("dense"));
        let s = Workload::serve(ServeConfig::new(512, 64)).to_string();
        assert!(s.contains("prompt=512") && s.contains("decode=64"), "{s}");
        // Borrowed labels do not allocate.
        assert!(matches!(Workload::pretrain().label(), Cow::Borrowed(_)));
    }

    #[test]
    fn serve_config_resolution() {
        let model = madmax_model::ModelId::Gpt3.build();
        let cfg = ServeConfig::prefill_only();
        assert_eq!(cfg.effective_prompt_len(&model), model.context_length);
        assert_eq!(cfg.effective_batch(&model), model.global_batch);
        let cfg = ServeConfig::new(100, 28).with_decode_batch(8);
        assert_eq!(cfg.effective_prompt_len(&model), 100);
        assert_eq!(cfg.effective_batch(&model), 8);
        assert_eq!(cfg.max_kv_len(100), 128);
        assert!(!ServeConfig::new(1, 1).without_kv_cache().kv_cache);
    }
}
