//! Parallelization plans: one hierarchical strategy per layer type, plus
//! execution options (Section IV-A's "task and parallelization strategy"
//! configuration).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use madmax_hw::units::ByteCount;
use madmax_model::{LayerClass, LayerKind, ModelArch};

use crate::strategy::{HierStrategy, Strategy};

/// Optimizer family, determining per-parameter state bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam with fp32 master weights and two fp32 moments (12 B/param) —
    /// the standard recipe for dense/transformer layers.
    AdamMixedPrecision,
    /// Row-wise Adagrad: one fp32 state per embedding row — the standard
    /// memory-frugal recipe for production embedding tables.
    RowWiseAdagrad,
    /// Plain SGD with momentum (4 B/param).
    SgdMomentum,
}

impl OptimizerKind {
    /// Optimizer state bytes for a layer holding `params` parameters.
    pub fn state_bytes(self, params: f64, kind: &LayerKind) -> f64 {
        match self {
            OptimizerKind::AdamMixedPrecision => 12.0 * params,
            OptimizerKind::SgdMomentum => 4.0 * params,
            OptimizerKind::RowWiseAdagrad => {
                let dim = match kind {
                    LayerKind::EmbeddingBag(e) => e.dim as f64,
                    LayerKind::TokenEmbedding(t) => t.dim as f64,
                    // Degenerates to one state per parameter elsewhere.
                    _ => 1.0,
                };
                4.0 * params / dim
            }
        }
    }
}

/// Memory-budget accounting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Fixed per-device overhead (CUDA context, NCCL buffers, framework).
    pub overhead: ByteCount,
    /// Fraction of the remaining capacity usable by the workload
    /// (allocator fragmentation and transient buffers consume the rest).
    pub reserve_frac: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            overhead: ByteCount::from_gb(2.0),
            reserve_frac: 0.80,
        }
    }
}

impl MemoryConfig {
    /// Usable bytes on a device of the given HBM capacity.
    pub fn usable(&self, capacity: ByteCount) -> ByteCount {
        (capacity - self.overhead).max(ByteCount::ZERO) * self.reserve_frac
    }
}

/// Plan-level execution options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanOptions {
    /// Prefetch FSDP AllGathers so they overlap with earlier-layer compute
    /// (the optimized production implementation of Fig. 9).
    pub fsdp_prefetch: bool,
    /// Retain only transformer-block inputs and recompute internals during
    /// backward (standard for LLM pre-training).
    pub activation_checkpointing: bool,
    /// Memory accounting knobs.
    pub memory: MemoryConfig,
    /// Optimizer for embedding layers.
    pub embedding_optimizer: OptimizerKind,
    /// Optimizer for all other layers.
    pub dense_optimizer: OptimizerKind,
    /// Precision used on the wire for parameter/gradient collectives
    /// (FSDP AllGather/ReduceScatter, DDP gradient AllReduce). Production
    /// mixed-precision recipes communicate in bf16 even when master
    /// parameters are fp32.
    pub collective_dtype: madmax_hw::DType,
    /// Ignore memory-capacity limits entirely: the paper's "parallelization
    /// strategies not constrained by the memory capacities of existing
    /// training platforms" analysis (orange bars of Fig. 10).
    pub ignore_memory_limits: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            fsdp_prefetch: true,
            activation_checkpointing: false,
            memory: MemoryConfig::default(),
            embedding_optimizer: OptimizerKind::RowWiseAdagrad,
            dense_optimizer: OptimizerKind::AdamMixedPrecision,
            collective_dtype: madmax_hw::DType::Bf16,
            ignore_memory_limits: false,
        }
    }
}

impl PlanOptions {
    /// The optimizer used for a layer class.
    pub fn optimizer_for(&self, class: LayerClass) -> OptimizerKind {
        if class == LayerClass::Embedding {
            self.embedding_optimizer
        } else {
            self.dense_optimizer
        }
    }
}

/// The order microbatches flow through pipeline stages (Section II-B's
/// pipeline-parallelism axis; modeled after GPipe and PipeDream-Flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PipelineSchedule {
    /// Fill-drain: all microbatch forwards, then all backwards. Retains
    /// activations for every in-flight microbatch.
    GPipe,
    /// One-forward-one-backward (PipeDream-Flush): after a warm-up of at
    /// most `p` forwards, each stage alternates backward/forward, bounding
    /// retained activations by the pipeline depth.
    OneFOneB,
}

impl std::fmt::Display for PipelineSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PipelineSchedule::GPipe => "GPipe",
            PipelineSchedule::OneFOneB => "1F1B",
        })
    }
}

/// The pipeline dimension of a plan: how many stages the model is split
/// into, how many microbatches the global batch is split into, and the
/// schedule that interleaves them.
///
/// `stages = 1` (or an absent config) means no pipeline parallelism; the
/// existing per-layer-class strategies then span the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Pipeline depth: number of contiguous layer groups (stages).
    pub stages: usize,
    /// Microbatches per iteration (the global batch is split evenly).
    pub microbatches: usize,
    /// Microbatch interleaving schedule.
    pub schedule: PipelineSchedule,
}

impl PipelineConfig {
    /// A GPipe pipeline of `stages` stages and `microbatches` microbatches.
    pub fn gpipe(stages: usize, microbatches: usize) -> Self {
        Self {
            stages,
            microbatches,
            schedule: PipelineSchedule::GPipe,
        }
    }

    /// A 1F1B pipeline of `stages` stages and `microbatches` microbatches.
    pub fn one_f_one_b(stages: usize, microbatches: usize) -> Self {
        Self {
            stages,
            microbatches,
            schedule: PipelineSchedule::OneFOneB,
        }
    }

    /// Whether this config actually pipelines (more than one stage).
    pub fn is_pipelined(&self) -> bool {
        self.stages > 1
    }

    /// The analytic pipeline-bubble fraction for uniform stages:
    /// `(p - 1) / (m + p - 1)`.
    pub fn ideal_bubble_fraction(&self) -> f64 {
        let p = self.stages as f64;
        let m = self.microbatches as f64;
        (p - 1.0) / (m + p - 1.0)
    }
}

impl std::fmt::Display for PipelineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pp={} mb={} {}",
            self.stages, self.microbatches, self.schedule
        )
    }
}

/// A complete workload-to-system mapping: one [`HierStrategy`] per layer
/// class present in the model, plus an optional pipeline dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Per-layer-class strategies (within a pipeline stage's device group
    /// when a pipeline is configured).
    pub assignments: BTreeMap<LayerClass, HierStrategy>,
    /// Pipeline-parallel dimension (`None` = no pipelining).
    pub pipeline: Option<PipelineConfig>,
    /// Execution options.
    pub options: PlanOptions,
}

/// Errors produced when validating a plan against a model and system.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A strategy was assigned to a layer class it cannot parallelize.
    InvalidStrategy {
        /// The offending class.
        class: LayerClass,
        /// The offending strategy.
        strategy: HierStrategy,
    },
    /// The per-device memory footprint exceeds usable HBM.
    OutOfMemory {
        /// Required bytes per device.
        required: ByteCount,
        /// Usable bytes per device.
        usable: ByteCount,
    },
    /// The plan configures pipeline parallelism, which the flat SPMD
    /// simulator cannot execute; use `madmax-pipeline`'s simulator.
    PipelinedPlan {
        /// Configured pipeline depth.
        stages: usize,
    },
    /// The pipeline configuration cannot be mapped onto the model/system
    /// (too few layers, indivisible device count, zero microbatches, ...).
    InvalidPipeline {
        /// What is wrong with the configuration.
        reason: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidStrategy { class, strategy } => {
                write!(f, "strategy {strategy} is not applicable to {class} layers")
            }
            PlanError::OutOfMemory { required, usable } => write!(
                f,
                "out of memory: requires {:.2} GB/device but only {:.2} GB usable",
                required.as_gb(),
                usable.as_gb()
            ),
            PlanError::PipelinedPlan { stages } => write!(
                f,
                "plan configures {stages} pipeline stages; pipelined plans must be \
                 simulated with madmax-pipeline"
            ),
            PlanError::InvalidPipeline { reason } => {
                write!(f, "invalid pipeline configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl Plan {
    /// The paper's baseline: FSDP for every compute layer type (the widely
    /// adopted feasibility-first default), naive model-parallel sharding
    /// for DLRM embedding tables (their only viable option, Insight 1), and
    /// activation checkpointing for token-based models.
    pub fn fsdp_baseline(model: &ModelArch) -> Self {
        let mut assignments = BTreeMap::new();
        for group in &model.groups {
            let strategy = match (group.class, &group.kind) {
                (LayerClass::Embedding, LayerKind::EmbeddingBag(_)) => {
                    HierStrategy::flat(Strategy::Shard)
                }
                _ => HierStrategy::flat(Strategy::Fsdp),
            };
            assignments.entry(group.class).or_insert(strategy);
        }
        // Checkpoint activations whenever transformer blocks are present
        // (LLMs and the DLRM transformer variants); retaining full
        // transformer activations at production batch sizes is not how any
        // of these models are trained.
        let has_transformer = model
            .groups
            .iter()
            .any(|g| matches!(g.kind, LayerKind::TransformerBlock(_)));
        let options = PlanOptions {
            activation_checkpointing: has_transformer
                || model.batch_unit == madmax_model::BatchUnit::Tokens,
            ..PlanOptions::default()
        };
        Self {
            assignments,
            pipeline: None,
            options,
        }
    }

    /// Replaces the strategy for one layer class (builder-style).
    #[must_use]
    pub fn with_strategy(mut self, class: LayerClass, strategy: HierStrategy) -> Self {
        self.assignments.insert(class, strategy);
        self
    }

    /// Sets the pipeline dimension (builder-style). `stages = 1` configs are
    /// normalized to `None`.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = if pipeline.is_pipelined() {
            Some(pipeline)
        } else {
            None
        };
        self
    }

    /// The effective pipeline depth (1 when no pipeline is configured).
    pub fn pipeline_stages(&self) -> usize {
        self.pipeline.map_or(1, |p| p.stages)
    }

    /// Replaces the options (builder-style).
    #[must_use]
    pub fn with_options(mut self, options: PlanOptions) -> Self {
        self.options = options;
        self
    }

    /// The strategy assigned to a class (FSDP if unassigned).
    pub fn strategy_for(&self, class: LayerClass) -> HierStrategy {
        self.assignments
            .get(&class)
            .copied()
            .unwrap_or(HierStrategy::Flat(Strategy::Fsdp))
    }

    /// Checks strategy/class compatibility for every class in the model.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidStrategy`] for the first incompatible
    /// assignment. Memory feasibility is checked separately by
    /// [`crate::memory::check_memory`].
    pub fn validate_strategies(&self, model: &ModelArch) -> Result<(), PlanError> {
        for group in &model.groups {
            let strategy = self.strategy_for(group.class);
            if !strategy.allowed_for(group.class) {
                return Err(PlanError::InvalidStrategy {
                    class: group.class,
                    strategy,
                });
            }
        }
        Ok(())
    }

    /// Compact display, e.g. `dense=(TP, DDP) embedding=(MP)` or
    /// `transformer=(FSDP) [pp=8 mb=32 1F1B]`.
    pub fn summary(&self) -> String {
        let classes = self
            .assignments
            .iter()
            .map(|(c, s)| format!("{c}={s}"))
            .collect::<Vec<_>>()
            .join(" ");
        match &self.pipeline {
            Some(pp) => format!("{classes} [{pp}]"),
            None => classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_model::ModelId;

    #[test]
    fn baseline_shards_dlrm_embeddings() {
        let m = ModelId::DlrmA.build();
        let p = Plan::fsdp_baseline(&m);
        assert_eq!(
            p.strategy_for(LayerClass::Embedding),
            HierStrategy::flat(Strategy::Shard)
        );
        assert_eq!(
            p.strategy_for(LayerClass::Dense),
            HierStrategy::flat(Strategy::Fsdp)
        );
        assert!(!p.options.activation_checkpointing);
        assert!(p.validate_strategies(&m).is_ok());
    }

    #[test]
    fn baseline_fsdp_for_llm() {
        let m = ModelId::Gpt3.build();
        let p = Plan::fsdp_baseline(&m);
        assert_eq!(
            p.strategy_for(LayerClass::Embedding),
            HierStrategy::flat(Strategy::Fsdp)
        );
        assert_eq!(
            p.strategy_for(LayerClass::Transformer),
            HierStrategy::flat(Strategy::Fsdp)
        );
        assert!(p.options.activation_checkpointing);
    }

    #[test]
    fn invalid_strategy_detected() {
        let m = ModelId::DlrmA.build();
        let p = Plan::fsdp_baseline(&m)
            .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Shard));
        let err = p.validate_strategies(&m).unwrap_err();
        assert!(matches!(
            err,
            PlanError::InvalidStrategy {
                class: LayerClass::Dense,
                ..
            }
        ));
        assert!(err.to_string().contains("not applicable"));
    }

    #[test]
    fn optimizer_routing() {
        let o = PlanOptions::default();
        assert_eq!(
            o.optimizer_for(LayerClass::Embedding),
            OptimizerKind::RowWiseAdagrad
        );
        assert_eq!(
            o.optimizer_for(LayerClass::Dense),
            OptimizerKind::AdamMixedPrecision
        );
    }

    #[test]
    fn optimizer_state_bytes() {
        use madmax_hw::DType;
        use madmax_model::layer::EmbeddingBagSpec;
        let emb = LayerKind::EmbeddingBag(EmbeddingBagSpec {
            num_tables: 1,
            rows_per_table: 1000.0,
            dim: 128,
            avg_lookups_per_table: 1.0,
            dtype: DType::Fp32,
        });
        let params = emb.params();
        // Row-wise: 4 bytes per row = params/dim rows.
        assert_eq!(
            OptimizerKind::RowWiseAdagrad.state_bytes(params, &emb),
            4.0 * 1000.0
        );
        assert_eq!(
            OptimizerKind::AdamMixedPrecision.state_bytes(params, &emb),
            12.0 * params
        );
        assert_eq!(
            OptimizerKind::SgdMomentum.state_bytes(params, &emb),
            4.0 * params
        );
    }

    #[test]
    fn memory_config_usable() {
        let c = MemoryConfig::default();
        let usable = c.usable(ByteCount::from_gb(40.0));
        assert!((usable.as_gb() - 30.4).abs() < 1e-9);
        // Overhead larger than capacity clamps to zero.
        let tiny = c.usable(ByteCount::from_gb(1.0));
        assert_eq!(tiny, ByteCount::ZERO);
    }
}
