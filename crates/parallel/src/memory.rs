//! Per-device memory footprint model and OOM feasibility checking.
//!
//! The performance model assumes the entire (sharded) model fits on the
//! devices (Section IV-A); this module decides whether it does, which is
//! what rules strategies in or out across Figs. 10-14 (gray "OOM" bars).
//!
//! Footprints are workload-phase aware: training retains activations and
//! carries gradients/optimizer state; serving carries only parameters, a
//! transient working set, and — when the serve config models it — the
//! KV-cache at its maximum length (`prompt + decode_len` tokens per
//! in-flight sequence), so decode-heavy configurations OOM honestly.

use serde::{Deserialize, Serialize};

use madmax_hw::units::ByteCount;
use madmax_hw::ClusterSpec;
use madmax_model::{LayerKind, ModelArch};

use crate::comm::instance_param_bytes;
use crate::plan::{Plan, PlanError};
use crate::workload::Workload;

/// Per-device memory footprint, itemized.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Sharded/replicated parameter bytes.
    pub params: ByteCount,
    /// Gradient buffers (training only, trainable layers only).
    pub grads: ByteCount,
    /// Optimizer state bytes.
    pub optimizer: ByteCount,
    /// Retained activations (training) or working set (inference).
    pub activations: ByteCount,
    /// Transient unsharded copies materialized by FSDP AllGathers (double
    /// buffered when prefetching is enabled).
    pub fsdp_transient: ByteCount,
    /// KV-cache bytes at its maximum length (serve workloads with
    /// `kv_cache` modeling enabled; zero otherwise).
    pub kv_cache: ByteCount,
}

impl MemoryBreakdown {
    /// Total footprint.
    pub fn total(&self) -> ByteCount {
        self.params
            + self.grads
            + self.optimizer
            + self.activations
            + self.fsdp_transient
            + self.kv_cache
    }
}

/// Computes the itemized per-device footprint of `model` mapped onto
/// `cluster` with `plan` for `workload`.
///
/// Serving workloads are resolved through
/// [`Workload::effective_model`] first (prompt length and serving batch
/// override the model's context/batch); the override is idempotent, so
/// callers may pass either the raw or an already-effective model.
pub fn memory_per_device(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> MemoryBreakdown {
    let model = workload.effective_model(model);
    let model = model.as_ref();
    let devices = cluster.total_devices() as f64;
    let local_batch = model.global_batch as f64 / devices;
    let training = workload.has_backward();
    let kv_len = workload
        .serve_config()
        .filter(|cfg| cfg.kv_cache)
        .map(|cfg| cfg.max_kv_len(model.context_length) as f64);
    let mut out = MemoryBreakdown::default();

    for group in &model.groups {
        let strategy = plan.strategy_for(group.class);
        let shard = strategy.param_shard_factor(cluster);
        let p_inst = instance_param_bytes(group, model);
        let p_group = p_inst * group.repeat as f64;

        out.params += p_group / shard;

        let trains = workload.trains(group.class);
        if training && trains {
            // Dense gradients mirror the parameter sharding; sparse
            // embedding gradients only touch looked-up rows (negligible).
            let sparse = matches!(group.kind, LayerKind::EmbeddingBag(_));
            if !sparse {
                out.grads += p_group / shard;
            }
            let opt = plan.options.optimizer_for(group.class);
            out.optimizer += ByteCount::new(opt.state_bytes(group.kind.params(), &group.kind))
                * group.repeat as f64
                / shard;
        }

        // Activations: retained through backward for trainable layers;
        // inference needs only a transient working set (largest layer).
        let act_inst = group.kind.activation_bytes_per_sample(
            model.context_length,
            model.compute_dtype,
            plan.options.activation_checkpointing,
        ) * local_batch;
        if training && trains {
            out.activations += act_inst * group.repeat as f64;
        } else {
            out.activations = out.activations.max(act_inst);
        }

        // KV-cache: each attention layer retains keys/values for every
        // in-flight token of the local batch share, split over the
        // tensor-parallel heads.
        if let Some(kv_len) = kv_len {
            let per_token = group.kind.kv_cache_bytes_per_token(model.compute_dtype);
            if !per_token.is_zero() {
                let tp_part = strategy.compute_shard_factor(cluster);
                out.kv_cache += per_token * kv_len * local_batch * group.repeat as f64 / tp_part;
            }
        }

        // FSDP transiently materializes one full (modulo TP sharding)
        // instance during compute; prefetch double-buffers it.
        let has_fsdp = strategy
            .levels(cluster)
            .iter()
            .any(|l| l.strategy == crate::strategy::Strategy::Fsdp);
        if has_fsdp {
            let tp_part = strategy.compute_shard_factor(cluster);
            // FSDP's gather unit is the largest parameter tensor it
            // materializes at once: a whole dense layer, but only one
            // expert for MoE layers.
            let unit = match &group.kind {
                LayerKind::Moe(m) => p_inst / m.num_experts as f64,
                _ => p_inst,
            };
            let buffers = if plan.options.fsdp_prefetch { 2.0 } else { 1.0 };
            out.fsdp_transient = out.fsdp_transient.max(unit / tp_part * buffers);
        }
    }
    out
}

/// Validates strategies and memory, returning the footprint on success.
///
/// # Errors
///
/// [`PlanError::InvalidStrategy`] for class/strategy mismatches;
/// [`PlanError::OutOfMemory`] when the footprint exceeds usable HBM (unless
/// the plan opts into `ignore_memory_limits`, the unconstrained analysis of
/// Fig. 10's orange bars).
pub fn check_memory(
    model: &ModelArch,
    cluster: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Result<MemoryBreakdown, PlanError> {
    plan.validate_strategies(model)?;
    let breakdown = memory_per_device(model, cluster, plan, workload);
    if plan.options.ignore_memory_limits {
        return Ok(breakdown);
    }
    let usable = plan.options.memory.usable(cluster.device.hbm_capacity);
    if breakdown.total() > usable {
        return Err(PlanError::OutOfMemory {
            required: breakdown.total(),
            usable,
        });
    }
    Ok(breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{HierStrategy, Strategy};
    use crate::workload::ServeConfig;
    use madmax_hw::catalog;
    use madmax_model::{LayerClass, ModelId};

    fn dlrm_plan(dense: HierStrategy) -> (ModelArch, ClusterSpec, Plan) {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let plan = Plan::fsdp_baseline(&model).with_strategy(LayerClass::Dense, dense);
        (model, sys, plan)
    }

    #[test]
    fn fig11_ddp_dense_is_oom_for_pretraining() {
        // Insight 1 / Fig 11: ((DDP), (MP)) replicates dense params, grads,
        // and optimizer states on every device -> OOM on 40 GB A100s.
        let (model, sys, plan) = dlrm_plan(HierStrategy::flat(Strategy::Ddp));
        let err = check_memory(&model, &sys, &plan, &Workload::pretrain()).unwrap_err();
        assert!(matches!(err, PlanError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn fig11_tp_ddp_dense_fits() {
        let (model, sys, plan) = dlrm_plan(HierStrategy::two_level(Strategy::Tp, Strategy::Ddp));
        let b = check_memory(&model, &sys, &plan, &Workload::pretrain()).unwrap();
        // Embedding shard dominates: ~24.8 GB of the footprint.
        assert!(b.params.as_gb() > 24.0 && b.params.as_gb() < 27.0, "{b:?}");
    }

    #[test]
    fn fsdp_baseline_fits_everything_in_suite() {
        for id in ModelId::ALL {
            let model = id.build();
            let sys = if id.is_dlrm() {
                catalog::zionex_dlrm_system()
            } else {
                catalog::llama_llm_system()
            };
            let plan = Plan::fsdp_baseline(&model);
            let r = check_memory(&model, &sys, &plan, &Workload::pretrain());
            assert!(r.is_ok(), "{id}: {:?}", r.err());
        }
    }

    #[test]
    fn insight2_gpt3_intra_node_replication_oom() {
        // (TP, DDP) on GPT-3: 1/8-sharded optimizer state alone is ~33 GB;
        // grads+params push far past 80 GB.
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_strategy(
            LayerClass::Transformer,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
        let err = check_memory(&model, &sys, &plan, &Workload::pretrain()).unwrap_err();
        assert!(matches!(err, PlanError::OutOfMemory { .. }));
        // But (TP, FSDP) fits.
        let plan = Plan::fsdp_baseline(&model).with_strategy(
            LayerClass::Transformer,
            HierStrategy::two_level(Strategy::Tp, Strategy::Fsdp),
        );
        assert!(check_memory(&model, &sys, &plan, &Workload::pretrain()).is_ok());
    }

    #[test]
    fn insight5_ddp_dense_valid_for_inference_and_emb_finetune() {
        // DDP dense layers: OOM in pre-training, fine for inference and for
        // fine-tuning only the embedding tables (dense is frozen).
        let (model, sys, plan) = dlrm_plan(HierStrategy::flat(Strategy::Ddp));
        assert!(check_memory(&model, &sys, &plan, &Workload::pretrain()).is_err());
        assert!(check_memory(&model, &sys, &plan, &Workload::inference()).is_ok());
        assert!(check_memory(
            &model,
            &sys,
            &plan,
            &Workload::finetune_only(LayerClass::Embedding)
        )
        .is_ok());
    }

    #[test]
    fn ignore_memory_limits_admits_everything() {
        let (model, sys, mut plan) = dlrm_plan(HierStrategy::flat(Strategy::Ddp));
        plan.options.ignore_memory_limits = true;
        assert!(check_memory(&model, &sys, &plan, &Workload::pretrain()).is_ok());
    }

    #[test]
    fn inference_footprint_is_parameters_only() {
        let (model, sys, plan) = dlrm_plan(HierStrategy::two_level(Strategy::Tp, Strategy::Ddp));
        let train = memory_per_device(&model, &sys, &plan, &Workload::pretrain());
        let infer = memory_per_device(&model, &sys, &plan, &Workload::inference());
        assert_eq!(infer.grads, ByteCount::ZERO);
        assert_eq!(infer.optimizer, ByteCount::ZERO);
        assert_eq!(infer.kv_cache, ByteCount::ZERO);
        assert!(infer.total() < train.total());
        assert_eq!(infer.params, train.params);
    }

    #[test]
    fn checkpointing_shrinks_activations() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let mut plan = Plan::fsdp_baseline(&model);
        assert!(plan.options.activation_checkpointing);
        let ckpt = memory_per_device(&model, &sys, &plan, &Workload::pretrain());
        plan.options.activation_checkpointing = false;
        let full = memory_per_device(&model, &sys, &plan, &Workload::pretrain());
        assert!(full.activations > ckpt.activations * 4.0);
    }

    #[test]
    fn ordering_changes_footprint() {
        // ((DDP),(TP)) shards by 16 nodes; ((TP),(DDP)) by 8 devices/node.
        let (model, sys, _) = dlrm_plan(HierStrategy::flat(Strategy::Ddp));
        let a = Plan::fsdp_baseline(&model).with_strategy(
            LayerClass::Dense,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
        let b = Plan::fsdp_baseline(&model).with_strategy(
            LayerClass::Dense,
            HierStrategy::two_level(Strategy::Ddp, Strategy::Tp),
        );
        let ma = memory_per_device(&model, &sys, &a, &Workload::pretrain());
        let mb = memory_per_device(&model, &sys, &b, &Workload::pretrain());
        assert!(mb.total() < ma.total());
    }

    #[test]
    fn kv_cache_counts_only_when_modeled() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let with = memory_per_device(
            &model,
            &sys,
            &plan,
            &Workload::serve(ServeConfig::new(1024, 256)),
        );
        let without = memory_per_device(
            &model,
            &sys,
            &plan,
            &Workload::serve(ServeConfig::new(1024, 256).without_kv_cache()),
        );
        assert!(with.kv_cache > ByteCount::ZERO);
        assert_eq!(without.kv_cache, ByteCount::ZERO);
        assert_eq!(with.params, without.params);
    }

    #[test]
    fn kv_cache_grows_with_decode_length_and_is_tp_sharded() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let kv = |decode: usize| {
            memory_per_device(
                &model,
                &sys,
                &plan,
                &Workload::serve(ServeConfig::new(512, decode)),
            )
            .kv_cache
        };
        assert!(kv(0) > ByteCount::ZERO, "prompt tokens are cached too");
        assert!(kv(64) > kv(0));
        assert!(kv(512) > kv(64));
        // (512 + 512) / (512 + 0) = exactly 2x the cache.
        assert!((kv(512).value() / kv(0).value() - 2.0).abs() < 1e-12);
        // TP splits the heads (and with them the cache) across the node.
        let tp = plan.clone().with_strategy(
            LayerClass::Transformer,
            HierStrategy::two_level(Strategy::Tp, Strategy::Fsdp),
        );
        let sharded = memory_per_device(
            &model,
            &sys,
            &tp,
            &Workload::serve(ServeConfig::new(512, 64)),
        );
        assert!(sharded.kv_cache < kv(64));
    }
}
