//! # madmax-parallel
//!
//! Parallelization substrate for MAD-Max: the DDP/FSDP/TP/sharding strategy
//! taxonomy (Section II-B), hierarchical `(intra, inter)` composition,
//! derivation of the communication collectives each strategy requires
//! (Section IV-C), workloads, and the per-device memory-footprint model
//! that decides which mappings are feasible.
//!
//! # Workloads and phases
//!
//! What a model executes is a [`Workload`]: [`Workload::pretrain`],
//! [`Workload::finetune`], or [`Workload::serve`]. Each workload is a
//! sequence of [`WorkloadPhase`]s with distinct FLOP, bytes-moved, and
//! memory semantics:
//!
//! - [`WorkloadPhase::FwdBwd`] — one training iteration: forward compute,
//!   backward at 2-3x the forward FLOPs, retained activations, gradient
//!   and optimizer-state memory, parameter + gradient collectives.
//! - [`WorkloadPhase::Prefill`] — a compute-bound forward pass over the
//!   prompt ([`ServeConfig::prompt_len`] tokens): forward FLOPs and
//!   activation collectives only, a transient working set, and — when
//!   [`ServeConfig::kv_cache`] is on — the prompt's keys/values written
//!   into the cache.
//! - [`WorkloadPhase::Decode`] — one autoregressive step: a single-token
//!   forward pass per sequence whose attention *reads the whole KV-cache*,
//!   making the phase bandwidth-bound; the cache grows by one token per
//!   step and its maximum footprint ([`ServeConfig::max_kv_len`]) is part
//!   of the OOM check.
//!
//! The legacy flat `Task` enum has been removed after its deprecation
//! release; `Workload` is the only task description (the old
//! `Task::Inference` shape survives as [`Workload::inference`], the
//! prefill-only serve workload with an identical engine path).
//!
//! # Example
//!
//! ```
//! use madmax_hw::catalog;
//! use madmax_model::{LayerClass, ModelId};
//! use madmax_parallel::{check_memory, HierStrategy, Plan, Strategy, Workload};
//!
//! let model = ModelId::DlrmA.build();
//! let system = catalog::zionex_dlrm_system();
//!
//! // Replicating DLRM-A's dense layers on every device runs out of memory;
//! // sharding them with TP inside each node fits (Fig. 11).
//! let ddp = Plan::fsdp_baseline(&model)
//!     .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
//! assert!(check_memory(&model, &system, &ddp, &Workload::pretrain()).is_err());
//!
//! let tp_ddp = Plan::fsdp_baseline(&model)
//!     .with_strategy(LayerClass::Dense, HierStrategy::two_level(Strategy::Tp, Strategy::Ddp));
//! assert!(check_memory(&model, &system, &tp_ddp, &Workload::pretrain()).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comm;
pub mod load;
pub mod memory;
pub mod plan;
pub mod strategy;
pub mod workload;

pub use comm::{derive_layer_comm, CollectiveKind, CommPosition, CommReq, LayerCommPlan, Urgency};
pub use load::{ArrivalSpec, LoadSpec, RequestSpec, DEFAULT_BLOCK_TOKENS};
pub use memory::{check_memory, memory_per_device, MemoryBreakdown};
pub use plan::{
    MemoryConfig, OptimizerKind, PipelineConfig, PipelineSchedule, Plan, PlanError, PlanOptions,
};
pub use strategy::{CommScope, HierStrategy, Strategy, StrategyLevel};
pub use workload::{ServeConfig, Workload, WorkloadPhase};
