//! # madmax-parallel
//!
//! Parallelization substrate for MAD-Max: the DDP/FSDP/TP/sharding strategy
//! taxonomy (Section II-B), hierarchical `(intra, inter)` composition,
//! derivation of the communication collectives each strategy requires
//! (Section IV-C), tasks, and the per-device memory-footprint model that
//! decides which mappings are feasible.
//!
//! # Example
//!
//! ```
//! use madmax_hw::catalog;
//! use madmax_model::{LayerClass, ModelId};
//! use madmax_parallel::{check_memory, HierStrategy, Plan, Strategy, Task};
//!
//! let model = ModelId::DlrmA.build();
//! let system = catalog::zionex_dlrm_system();
//!
//! // Replicating DLRM-A's dense layers on every device runs out of memory;
//! // sharding them with TP inside each node fits (Fig. 11).
//! let ddp = Plan::fsdp_baseline(&model)
//!     .with_strategy(LayerClass::Dense, HierStrategy::flat(Strategy::Ddp));
//! assert!(check_memory(&model, &system, &ddp, &Task::Pretraining).is_err());
//!
//! let tp_ddp = Plan::fsdp_baseline(&model)
//!     .with_strategy(LayerClass::Dense, HierStrategy::two_level(Strategy::Tp, Strategy::Ddp));
//! assert!(check_memory(&model, &system, &tp_ddp, &Task::Pretraining).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comm;
pub mod memory;
pub mod plan;
pub mod strategy;
pub mod task;

pub use comm::{derive_layer_comm, CollectiveKind, CommPosition, CommReq, LayerCommPlan, Urgency};
pub use memory::{check_memory, memory_per_device, MemoryBreakdown};
pub use plan::{
    MemoryConfig, OptimizerKind, PipelineConfig, PipelineSchedule, Plan, PlanError, PlanOptions,
};
pub use strategy::{CommScope, HierStrategy, Strategy, StrategyLevel};
pub use task::Task;
