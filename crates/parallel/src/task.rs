//! ML tasks: pre-training, fine-tuning, and inference (Section II-A).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use madmax_model::LayerClass;

/// The task a model is mapped onto the system for.
///
/// Pre-training stresses compute, memory capacity, and communication
/// (forward + backward + retained activations). Fine-tuning is a subset:
/// frozen layers need no weight gradients, and — following the paper's
/// modeling choice for Insight 5 — their weight/input gradient computation
/// and communication are omitted. Inference runs the forward pass only.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Full training: all layers trainable.
    Pretraining,
    /// Fine-tuning with only the listed layer classes trainable.
    Finetuning {
        /// Layer classes whose parameters are updated.
        trainable: BTreeSet<LayerClass>,
    },
    /// Forward pass only.
    Inference,
}

impl Task {
    /// Fine-tuning a single layer class (e.g. only the embedding tables or
    /// only the MLPs, as in Fig. 14).
    pub fn finetune_only(class: LayerClass) -> Self {
        Task::Finetuning {
            trainable: BTreeSet::from([class]),
        }
    }

    /// Fine-tuning several classes.
    pub fn finetune(classes: impl IntoIterator<Item = LayerClass>) -> Self {
        Task::Finetuning {
            trainable: classes.into_iter().collect(),
        }
    }

    /// Whether a backward pass exists at all.
    pub fn has_backward(&self) -> bool {
        !matches!(self, Task::Inference)
    }

    /// Whether layers of `class` receive gradient updates.
    pub fn trains(&self, class: LayerClass) -> bool {
        match self {
            Task::Pretraining => true,
            Task::Finetuning { trainable } => trainable.contains(&class),
            Task::Inference => false,
        }
    }

    /// Whether activations of `class` layers must be retained for backward.
    pub fn retains_activations(&self, class: LayerClass) -> bool {
        self.trains(class)
    }

    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            Task::Pretraining => "pre-training".to_owned(),
            Task::Finetuning { trainable } => {
                let names: Vec<String> = trainable.iter().map(|c| c.to_string()).collect();
                format!("fine-tuning [{}]", names.join(", "))
            }
            Task::Inference => "inference".to_owned(),
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretraining_trains_everything() {
        for c in LayerClass::ALL {
            assert!(Task::Pretraining.trains(c));
        }
        assert!(Task::Pretraining.has_backward());
    }

    #[test]
    fn inference_trains_nothing() {
        for c in LayerClass::ALL {
            assert!(!Task::Inference.trains(c));
        }
        assert!(!Task::Inference.has_backward());
    }

    #[test]
    fn finetuning_is_selective() {
        let t = Task::finetune_only(LayerClass::Embedding);
        assert!(t.trains(LayerClass::Embedding));
        assert!(!t.trains(LayerClass::Dense));
        assert!(t.has_backward());
        let t2 = Task::finetune([LayerClass::Dense, LayerClass::Transformer]);
        assert!(t2.trains(LayerClass::Transformer));
        assert!(!t2.trains(LayerClass::Embedding));
    }

    #[test]
    fn labels() {
        assert_eq!(Task::Pretraining.to_string(), "pre-training");
        assert_eq!(Task::Inference.to_string(), "inference");
        assert!(Task::finetune_only(LayerClass::Dense)
            .to_string()
            .contains("dense"));
    }
}
