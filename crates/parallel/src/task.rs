//! The legacy flat task enum, superseded by [`crate::Workload`].
//!
//! `Task` survives as a deprecated conversion source for one release:
//! every variant maps onto a [`crate::Workload`] via `From`, and
//! `Task::Inference` maps to the prefill-only serve workload whose engine
//! path is byte-for-byte the old forward-only simulation.
#![allow(deprecated)]

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeSet;

use madmax_model::LayerClass;

/// The task a model is mapped onto the system for.
#[deprecated(
    since = "0.3.0",
    note = "use madmax_parallel::Workload (Workload::pretrain / finetune / serve)"
)]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Full training: all layers trainable.
    Pretraining,
    /// Fine-tuning with only the listed layer classes trainable.
    Finetuning {
        /// Layer classes whose parameters are updated.
        trainable: BTreeSet<LayerClass>,
    },
    /// Forward pass only.
    Inference,
}

impl Task {
    /// Fine-tuning a single layer class.
    pub fn finetune_only(class: LayerClass) -> Self {
        Task::Finetuning {
            trainable: BTreeSet::from([class]),
        }
    }

    /// Fine-tuning several classes.
    pub fn finetune(classes: impl IntoIterator<Item = LayerClass>) -> Self {
        Task::Finetuning {
            trainable: classes.into_iter().collect(),
        }
    }

    /// Short display label (borrowed for the fixed variants, so the
    /// reporting path does not allocate per call).
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            Task::Pretraining => Cow::Borrowed("pre-training"),
            Task::Finetuning { trainable } => {
                let names: Vec<String> = trainable.iter().map(|c| c.to_string()).collect();
                Cow::Owned(format!("fine-tuning [{}]", names.join(", ")))
            }
            Task::Inference => Cow::Borrowed("inference"),
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn labels_are_borrowed_for_fixed_variants() {
        assert_eq!(Task::Pretraining.to_string(), "pre-training");
        assert_eq!(Task::Inference.to_string(), "inference");
        assert!(matches!(Task::Pretraining.label(), Cow::Borrowed(_)));
        assert!(matches!(Task::Inference.label(), Cow::Borrowed(_)));
        assert!(Task::finetune_only(LayerClass::Dense)
            .to_string()
            .contains("dense"));
    }

    #[test]
    fn every_variant_converts_to_a_workload() {
        assert_eq!(Workload::from(Task::Pretraining), Workload::pretrain());
        assert_eq!(Workload::from(Task::Inference), Workload::inference());
        assert_eq!(
            Workload::from(Task::finetune([LayerClass::Dense, LayerClass::Transformer])),
            Workload::finetune([LayerClass::Dense, LayerClass::Transformer])
        );
    }
}
