//! Per-step cost extraction: turning the synchronized-wave engines'
//! priced serve scenarios into an integer-grid **step cost model** for
//! continuous batching.
//!
//! The engines guarantee (PR 8, `madmax_core::steady`) that serve
//! iteration times are exact multiples of the `2^-38` s duration grid
//! and that decode-step durations are affine in the KV-cache position.
//! [`StepCostModel::price`] therefore recovers per-step costs from a
//! handful of *analytic* probe evaluations — O(transient) each — by
//! finite differences:
//!
//! - `F(d)` = iteration time at decode length `d`: the first difference
//!   `F(d+1) - F(d)` is the cost of one decode step, the second
//!   difference is the per-step KV growth rate;
//! - probing at one in-flight sequence and at `slots` sequences
//!   separates the per-sequence term from the base;
//! - TTFT at batch 1 prices a single request's prefill, probed at two
//!   context lengths to fit the affine `prefill(ctx)` used for
//!   admission and eviction-recompute.
//!
//! The result is a first-order interpolation of the engine's own costs:
//! exact at the probe anchors (up to integer rounding of the divided
//! coefficients), affine everywhere else — exactly the structure the
//! event layer's closed-form jumps require.

use madmax_core::collective::CollectiveModel;
use madmax_core::compute::UtilizationModel;
use madmax_core::steady::grid_units;
use madmax_core::{CostTable, EngineScratch, IterationReport};
use madmax_hw::ClusterSpec;
use madmax_model::ModelArch;
use madmax_parallel::{Plan, PlanError, ServeConfig, Workload};
use madmax_pipeline::PipelineCostTable;

use crate::arrival::ArrivalEvent;
use crate::LoadError;

/// Decode length of the first probe: comfortably past
/// `MIN_ANALYTIC_DECODE` so the analytic path engages and the steady
/// regime is established.
const PROBE_DECODE: usize = 48;

/// Integer grid-unit cost model of a continuously-batched serve
/// deployment:
///
/// ```text
/// prefill(ctx) = prefill_base + prefill_slope * ctx          (one request)
/// step(B, K)   = step_base + step_seq * B + step_rate * K    (one decode step)
/// ```
///
/// with `B` in-flight sequences and `K` total resident KV tokens. All
/// coefficients are grid units (`2^-38` s); see [`crate::sim`] for how
/// runs of steps advance as exact arithmetic series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepCostModel {
    /// Prefill base cost, grid units.
    pub prefill_base: i64,
    /// Prefill cost per context token, grid units.
    pub prefill_slope: i64,
    /// Decode-step base cost, grid units.
    pub step_base: i64,
    /// Decode-step cost per in-flight sequence, grid units.
    pub step_seq: i64,
    /// Decode-step cost per resident KV token, grid units.
    pub step_rate: i64,
    /// In-flight slot count this model was priced for (its upper
    /// interpolation anchor).
    pub slots: usize,
}

/// Rounds `a / b` to the nearest integer (`b > 0`), half away from zero
/// deterministic via euclidean remainder.
fn div_round(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let q = a.div_euclid(b);
    let r = a.rem_euclid(b);
    if 2 * r >= b {
        q + 1
    } else {
        q
    }
}

/// Runs one probe scenario through the matching engine and returns its
/// report.
fn probe(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    cfg: ServeConfig,
    collectives: &dyn CollectiveModel,
    utilization: UtilizationModel,
    scratch: &mut EngineScratch,
) -> Result<IterationReport, PlanError> {
    let workload = Workload::serve(cfg);
    if plan.pipeline.is_some_and(|c| c.is_pipelined()) {
        let mut table = PipelineCostTable::new(
            model,
            system,
            workload,
            plan.options,
            collectives,
            utilization,
        );
        table.set_analytic_serve(true);
        table.ensure_plan(plan);
        madmax_pipeline::run_pipelined_cached(&table, plan, scratch)
    } else {
        let mut table = CostTable::new(
            model,
            system,
            workload,
            plan.options,
            collectives,
            utilization,
        );
        table.set_analytic_serve(true);
        table.ensure_plan(plan);
        madmax_core::run_flat_cached(&table, plan, scratch)
    }
}

/// The exact grid-unit count of a probed duration.
fn units(d: madmax_hw::units::Seconds, what: &str) -> Result<i64, LoadError> {
    grid_units(d).ok_or_else(|| LoadError::GridRange(format!("probed {what} {d:?} off-grid")))
}

impl StepCostModel {
    /// Prices a step cost model for `plan` serving `serve`-shaped
    /// requests with up to `slots` in flight, against the request shapes
    /// in `arrivals` (their prompt/decode extremes pick the probe
    /// anchors and the worst-case feasibility check).
    ///
    /// # Errors
    ///
    /// [`LoadError::Plan`] when any probe fails (OOM holding `slots`
    /// sequences at the worst-case context, unmappable pipeline, ...);
    /// [`LoadError::GridRange`] when probed durations are off-grid or
    /// degenerate; [`LoadError::Spec`] for an empty arrival set or zero
    /// `slots`.
    #[allow(clippy::too_many_arguments)]
    pub fn price(
        model: &ModelArch,
        system: &ClusterSpec,
        plan: &Plan,
        serve: &ServeConfig,
        slots: usize,
        arrivals: &[ArrivalEvent],
        collectives: &dyn CollectiveModel,
        utilization: UtilizationModel,
    ) -> Result<Self, LoadError> {
        if slots == 0 {
            return Err(LoadError::Spec("slots must be >= 1".to_owned()));
        }
        let Some(first) = arrivals.first() else {
            return Err(LoadError::Spec("no arrivals to price against".to_owned()));
        };
        let (mut p_lo, mut p_hi, mut d_max) = (first.prompt_len, first.prompt_len, 0usize);
        for a in arrivals {
            p_lo = p_lo.min(a.prompt_len);
            p_hi = p_hi.max(a.prompt_len);
            d_max = d_max.max(a.decode_len);
        }
        // A pipelined plan cannot run a batch smaller than its
        // microbatch count, so the low-batch anchor (and the prefill
        // probes) sit at the plan's minimum feasible batch; batches
        // below it are priced by affine extrapolation.
        let b_lo = plan
            .pipeline
            .filter(|c| c.is_pipelined())
            .map_or(1, |c| c.microbatches.max(1))
            .min(slots);
        let cfg = |prompt: usize, decode: usize, batch: usize| ServeConfig {
            prompt_len: Some(prompt),
            decode_len: decode,
            decode_batch: Some(batch),
            kv_cache: serve.kv_cache,
        };
        let mut scratch = EngineScratch::new();
        let mut run = |prompt: usize, decode: usize, batch: usize| {
            probe(
                model,
                system,
                plan,
                cfg(prompt, decode, batch),
                collectives,
                utilization,
                &mut scratch,
            )
            .map_err(LoadError::from)
        };

        // Worst-case feasibility: `slots` sequences at the largest
        // context must fit device memory (the paged-block budget is a
        // separate, runtime constraint).
        let d_feas = d_max.max(PROBE_DECODE + 2);
        run(p_hi, d_feas, slots)?;

        // Batch = slots: three consecutive decode lengths give the last
        // step's cost (first difference) and the per-step KV growth
        // (second difference).
        let f1 = units(run(p_lo, PROBE_DECODE, slots)?.iteration_time, "iteration")?;
        let f2 = units(
            run(p_lo, PROBE_DECODE + 1, slots)?.iteration_time,
            "iteration",
        )?;
        let f3 = units(
            run(p_lo, PROBE_DECODE + 2, slots)?.iteration_time,
            "iteration",
        )?;
        let p_cap = f3 - f2;
        let r_cap = (f3 - f2) - (f2 - f1);
        if p_cap <= 0 {
            return Err(LoadError::GridRange(format!(
                "degenerate decode-step probe: step cost {p_cap} units"
            )));
        }
        let step_rate = div_round(r_cap.max(0), slots as i64);

        // Batch = b_lo: separates the per-sequence term, and its TTFT
        // prices a request's prefill.
        let (p_one, ttft_lo) = if slots == b_lo {
            let g1 = run(p_lo, PROBE_DECODE, b_lo)?;
            let serve_stats = g1.serve.expect("serve probe reports serve stats");
            (f2 - f1, units(serve_stats.ttft, "ttft")?)
        } else {
            let g1 = run(p_lo, PROBE_DECODE, b_lo)?;
            let g2 = run(p_lo, PROBE_DECODE + 1, b_lo)?;
            let serve_stats = g1.serve.expect("serve probe reports serve stats");
            (
                units(g2.iteration_time, "iteration")? - units(g1.iteration_time, "iteration")?,
                units(serve_stats.ttft, "ttft")?,
            )
        };
        if p_one <= 0 {
            return Err(LoadError::GridRange(format!(
                "degenerate decode-step probe: step cost {p_one} units at batch {b_lo}"
            )));
        }

        // Prefill slope: the second anchor sits at the largest context a
        // recomputed prefill can see (prompt + generated tokens).
        let ctx_hi = p_hi + d_max;
        let g_hi = run(ctx_hi, PROBE_DECODE, b_lo)?;
        let ttft_hi = units(g_hi.serve.expect("serve stats").ttft, "ttft")?;
        let span = (ctx_hi - p_lo) as i64;
        let prefill_slope = div_round((ttft_hi - ttft_lo).max(0), span);
        let prefill_base = ttft_lo - prefill_slope * p_lo as i64;

        // Solve the two decode anchors for (step_base, step_seq):
        //   step(b_lo, K_lo)   = p_one,  K_lo  = b_lo * (p_lo + PROBE_DECODE)
        //   step(slots, K_cap) = p_cap,  K_cap = slots * (p_lo + PROBE_DECODE + 1)
        // (the first difference F(d+1) - F(d) is decode step d+1, which
        // reads a cache of ctx + d tokens per sequence).
        let k1 = b_lo as i64 * (p_lo + PROBE_DECODE) as i64;
        let k_cap = slots as i64 * (p_lo + PROBE_DECODE + 1) as i64;
        let q1 = p_one - step_rate * k1;
        let qc = p_cap - step_rate * k_cap;
        let (step_base, step_seq) = if slots == b_lo {
            (qc, 0)
        } else {
            let seq = div_round(qc - q1, (slots - b_lo) as i64);
            (q1 - seq * b_lo as i64, seq)
        };

        let model = StepCostModel {
            prefill_base,
            prefill_slope,
            step_base,
            step_seq,
            step_rate,
            slots,
        };
        // The model must price every anchor positively; a run that drove
        // any anchor sub-unit is outside the interpolation's domain.
        model.prefill_units(p_lo as u64)?;
        model.prefill_units(ctx_hi as u64)?;
        model.step_units(b_lo as u64, k1)?;
        model.step_units(slots as u64, k_cap)?;
        Ok(model)
    }

    /// Cost of prefilling one request with `ctx` context tokens, grid
    /// units.
    ///
    /// # Errors
    ///
    /// [`LoadError::GridRange`] when the affine model prices the prefill
    /// below one grid unit (outside its interpolation domain).
    pub fn prefill_units(&self, ctx: u64) -> Result<i64, LoadError> {
        let u = self.prefill_base + self.prefill_slope * ctx as i64;
        if u < 1 {
            return Err(LoadError::GridRange(format!(
                "prefill({ctx}) priced at {u} grid units"
            )));
        }
        Ok(u)
    }

    /// Cost of one decode step with `batch` in-flight sequences reading
    /// `kv` total resident KV tokens, grid units.
    ///
    /// # Errors
    ///
    /// [`LoadError::GridRange`] when the affine model prices the step
    /// below one grid unit (outside its interpolation domain).
    pub fn step_units(&self, batch: u64, kv: i64) -> Result<i64, LoadError> {
        let u = self.step_base + self.step_seq * batch as i64 + self.step_rate * kv;
        if u < 1 {
            return Err(LoadError::GridRange(format!(
                "step(batch={batch}, kv={kv}) priced at {u} grid units"
            )));
        }
        Ok(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_core::collective::HierarchicalNccl;
    use madmax_hw::catalog;
    use madmax_model::ModelId;
    use madmax_parallel::PipelineConfig;

    fn arrivals(prompt: usize, decode: usize, n: usize) -> Vec<ArrivalEvent> {
        (0..n)
            .map(|i| ArrivalEvent {
                at: i as i64 * 1000,
                prompt_len: prompt,
                decode_len: decode,
            })
            .collect()
    }

    #[test]
    fn priced_models_predict_probe_differences() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let serve = ServeConfig::new(256, 64).with_decode_batch(8);
        let slots = 8usize;
        let m = StepCostModel::price(
            &model,
            &sys,
            &plan,
            &serve,
            slots,
            &arrivals(256, 64, 4),
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap();
        assert!(m.step_rate >= 0);
        assert!(m.prefill_slope >= 0);
        // Held-out check: the model's step cost reproduces the engine's
        // first difference at an unprobed decode length.
        let mut scratch = EngineScratch::new();
        let run = |d: usize, scratch: &mut EngineScratch| {
            probe(
                &model,
                &sys,
                &plan,
                ServeConfig::new(256, d).with_decode_batch(slots),
                &HierarchicalNccl,
                UtilizationModel::Constant,
                scratch,
            )
            .unwrap()
        };
        let a = grid_units(run(72, &mut scratch).iteration_time).unwrap();
        let b = grid_units(run(73, &mut scratch).iteration_time).unwrap();
        let actual = b - a;
        let predicted = m
            .step_units(slots as u64, slots as i64 * (256 + 72))
            .unwrap();
        let rel = (predicted - actual).abs() as f64 / actual as f64;
        assert!(rel < 1e-3, "predicted {predicted} vs actual {actual}");
    }

    #[test]
    fn prefill_scales_with_context_and_pipelined_plans_price() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::gpipe(4, 4));
        let serve = ServeConfig::new(128, 32).with_decode_batch(4);
        let m = StepCostModel::price(
            &model,
            &sys,
            &plan,
            &serve,
            4,
            &arrivals(128, 32, 2),
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap();
        let short = m.prefill_units(128).unwrap();
        let long = m.prefill_units(160).unwrap();
        assert!(long >= short);
        assert!(short >= 1);
    }

    #[test]
    fn oom_probes_surface_as_plan_errors() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        let serve = ServeConfig::new(4096, 2_000_000).with_decode_batch(1 << 14);
        let err = StepCostModel::price(
            &model,
            &sys,
            &plan,
            &serve,
            1 << 14,
            &arrivals(4096, 2_000_000, 1),
            &HierarchicalNccl,
            UtilizationModel::Constant,
        )
        .unwrap_err();
        assert!(err.is_oom(), "{err}");
    }
}
