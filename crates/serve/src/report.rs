//! The [`LoadReport`]: everything a load run reports — per-request
//! outcomes, TTFT/TPOT percentiles, queue statistics, and goodput.
//!
//! Reports are derived purely from the integer-time [`LoadTrace`], so
//! the event-driven and per-token simulation modes produce byte-equal
//! reports (asserted by `tests/serve_load_invariants.rs`).

use madmax_core::steady::grid_seconds;
use madmax_hw::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::trace::LoadTrace;

/// Latency summary of one metric across requests (nearest-rank
/// percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: Seconds,
    /// 95th percentile.
    pub p95: Seconds,
    /// 99th percentile.
    pub p99: Seconds,
    /// Arithmetic mean.
    pub mean: Seconds,
    /// Maximum.
    pub max: Seconds,
    /// Samples summarized.
    pub count: usize,
}

impl Percentiles {
    /// Summarizes a set of grid-unit samples; `None` when empty.
    fn from_units(mut samples: Vec<i64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let n = samples.len();
        // Nearest-rank: the smallest sample with at least q*n samples at
        // or below it.
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        let sum: i128 = samples.iter().map(|s| i128::from(*s)).sum();
        Some(Percentiles {
            p50: grid_seconds(rank(0.50)),
            p95: grid_seconds(rank(0.95)),
            p99: grid_seconds(rank(0.99)),
            mean: Seconds::new(sum as f64 / n as f64 * grid_seconds(1).as_secs()),
            max: grid_seconds(samples[n - 1]),
            count: n,
        })
    }
}

/// Per-request outcome row of a [`LoadReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request id (arrival order).
    pub id: u32,
    /// Arrival time.
    pub arrival: Seconds,
    /// Time to first token (arrival -> end of first prefill), if the
    /// request produced one.
    pub ttft: Option<Seconds>,
    /// Time per output token after the first (completion - first token)
    /// / decode_len, for completed requests.
    pub tpot: Option<Seconds>,
    /// Output tokens produced (first token + decode tokens); partial for
    /// requests still in flight at the horizon.
    pub output_tokens: u64,
    /// Whether the request completed.
    pub completed: bool,
    /// Whether the request was rejected.
    pub rejected: bool,
    /// Times the request was evicted.
    pub evictions: u32,
    /// Fault interruptions the request survived.
    #[serde(default)]
    pub retries: u32,
    /// Whether the request was dropped by a fault (retry budget
    /// exhausted or timeout exceeded).
    #[serde(default)]
    pub failed: bool,
}

/// Aggregate report of one load run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests that arrived (including rejected ones).
    pub arrivals: usize,
    /// Requests ever admitted.
    pub admitted: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests rejected at arrival.
    pub rejected: usize,
    /// Requests still queued when the run ended.
    pub queued_at_end: usize,
    /// Requests still decoding when the run ended.
    pub in_flight_at_end: usize,
    /// Requests dropped by faults (retry budget exhausted or timeout).
    #[serde(default)]
    pub failed: usize,
    /// Total fault-interruption retries across requests.
    #[serde(default)]
    pub retries: u64,
    /// Fraction of the makespan with no fault window open (capacity
    /// whole, no slowdown): `1.0` for fault-free runs.
    #[serde(default)]
    pub availability: f64,
    /// Total evictions across requests.
    pub evictions: u64,
    /// End of the run.
    pub makespan: Seconds,
    /// TTFT percentiles over requests that produced a first token.
    pub ttft: Option<Percentiles>,
    /// TPOT percentiles over completed requests.
    pub tpot: Option<Percentiles>,
    /// Output tokens produced by completed requests.
    pub output_tokens: u64,
    /// Completed output tokens per second of makespan.
    pub tokens_per_sec: f64,
    /// Peak KV blocks allocated.
    pub peak_kv_blocks: u64,
    /// Deepest admission queue seen.
    pub max_queue_depth: u32,
    /// Time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Per-request outcomes, by id.
    pub requests: Vec<RequestOutcome>,
}

impl LoadReport {
    /// Derives the report from a run's trace.
    pub fn from_trace(trace: &LoadTrace) -> Self {
        let mut ttfts = Vec::new();
        let mut tpots = Vec::new();
        let mut requests = Vec::with_capacity(trace.records.len());
        let (mut admitted, mut completed, mut rejected, mut evictions) =
            (0usize, 0usize, 0usize, 0u64);
        let (mut failed, mut retries) = (0usize, 0u64);
        let mut output_tokens = 0u64;
        for rec in &trace.records {
            let ttft_u = rec.first_token.map(|t| t - rec.arrival);
            if let Some(u) = ttft_u {
                ttfts.push(u);
            }
            let mut tpot = None;
            let mut tokens = 0u64;
            if rec.admitted.is_some() {
                admitted += 1;
            }
            if rec.rejected.is_some() {
                rejected += 1;
            }
            evictions += u64::from(rec.evictions);
            retries += u64::from(rec.retries);
            if rec.failed.is_some() {
                failed += 1;
            }
            if rec.first_token.is_some() {
                // The prefill's token, plus whatever decoded.
                tokens = 1 + trace.steps_of(rec.id) as u64;
            }
            if let Some(done) = rec.completion {
                completed += 1;
                output_tokens += 1 + rec.decode_len;
                let per = (done - rec.first_token.expect("completed implies first token")) as f64
                    / rec.decode_len as f64;
                // TPOT percentiles rank in grid units (rounded); the
                // per-request row keeps the exact ratio.
                tpots.push(per.round() as i64);
                tpot = Some(Seconds::new(per * grid_seconds(1).as_secs()));
            }
            requests.push(RequestOutcome {
                id: rec.id,
                arrival: grid_seconds(rec.arrival),
                ttft: ttft_u.map(grid_seconds),
                tpot,
                output_tokens: tokens,
                completed: rec.completion.is_some(),
                rejected: rec.rejected.is_some(),
                evictions: rec.evictions,
                retries: rec.retries,
                failed: rec.failed.is_some(),
            });
        }
        let open = |r: &&crate::trace::RequestRecord| {
            r.admitted.is_some() && r.completion.is_none() && r.failed.is_none()
        };
        let in_flight_at_end = trace
            .records
            .iter()
            .filter(|r| open(r) && !requeued(trace, r.id))
            .count();
        let queued_at_end = trace.records.len() - rejected - admitted
            + trace
                .records
                .iter()
                .filter(|r| open(r) && requeued(trace, r.id))
                .count();
        let makespan = grid_seconds(trace.end);
        let secs = makespan.as_secs();
        let (max_q, mean_q) = queue_stats(trace);
        LoadReport {
            arrivals: trace.records.len(),
            admitted,
            completed,
            rejected,
            queued_at_end,
            in_flight_at_end,
            failed,
            retries,
            availability: availability(trace),
            evictions,
            makespan,
            ttft: Percentiles::from_units(ttfts),
            tpot: Percentiles::from_units(tpots),
            output_tokens,
            tokens_per_sec: if secs > 0.0 {
                output_tokens as f64 / secs
            } else {
                0.0
            },
            peak_kv_blocks: trace.peak_blocks,
            max_queue_depth: max_q,
            mean_queue_depth: mean_q,
            requests,
        }
    }

    /// Goodput under an SLO: completed output tokens per second counting
    /// only requests whose TTFT met `slo`.
    pub fn goodput_tokens_per_sec(&self, slo: Seconds) -> f64 {
        let secs = self.makespan.as_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests
            .iter()
            .filter(|r| r.completed && r.ttft.is_some_and(|t| t <= slo))
            .map(|r| r.output_tokens as f64)
            .sum::<f64>()
            / secs
    }

    /// Whether the run's p99 TTFT met `slo` (vacuously true when nothing
    /// produced a first token yet).
    pub fn meets_ttft_slo(&self, slo: Seconds) -> bool {
        self.ttft.is_none_or(|t| t.p99 <= slo)
    }

    /// SLO-violation windows: maximal runs of consecutive arrivals (in
    /// id order) that violated the TTFT `slo` — failed, or first token
    /// later than `slo` after arrival — reported as `(first arrival,
    /// last arrival)` spans. Requests with no verdict yet (queued or in
    /// flight at the horizon) do not open or extend a window.
    pub fn slo_violation_windows(&self, slo: Seconds) -> Vec<(Seconds, Seconds)> {
        let mut windows: Vec<(Seconds, Seconds)> = Vec::new();
        let mut open = false;
        for r in &self.requests {
            let verdict = if r.failed {
                Some(true)
            } else {
                r.ttft.map(|t| t > slo)
            };
            match verdict {
                Some(true) => {
                    if open {
                        windows.last_mut().expect("open window exists").1 = r.arrival;
                    } else {
                        windows.push((r.arrival, r.arrival));
                        open = true;
                    }
                }
                Some(false) => open = false,
                None => {}
            }
        }
        windows
    }
}

/// Fraction of the trace's makespan with no fault window open: the
/// complement of the union of fault spans, clipped to `[0, end]`.
fn availability(trace: &LoadTrace) -> f64 {
    if trace.faults.is_empty() || trace.end <= 0 {
        return 1.0;
    }
    // Spans are recorded in application order, so starts are monotone;
    // merge the union with one pass.
    let mut degraded: i128 = 0;
    let mut cover = 0i64;
    for f in &trace.faults {
        let start = f.start.max(cover);
        let end = f.end.min(trace.end);
        if end > start {
            degraded += i128::from(end - start);
        }
        cover = cover.max(end);
    }
    (1.0 - degraded as f64 / trace.end as f64).clamp(0.0, 1.0)
}

/// Whether an admitted, uncompleted request sits in the queue (evicted,
/// awaiting re-admission) rather than in flight: its last lifecycle
/// event is an eviction, i.e. it has no open residency span.
fn requeued(trace: &LoadTrace, id: u32) -> bool {
    !trace
        .residency
        .iter()
        .any(|s| s.request == id && s.end.is_none())
}

/// Max and time-weighted mean queue depth from the change events.
fn queue_stats(trace: &LoadTrace) -> (u32, f64) {
    let mut max = 0u32;
    let mut integral: i128 = 0;
    let mut last_t = 0i64;
    let mut last_d = 0u32;
    for &(t, d) in &trace.queue_depth {
        integral += i128::from(last_d) * i128::from(t - last_t);
        last_t = t;
        last_d = d;
        max = max.max(d);
    }
    integral += i128::from(last_d) * i128::from(trace.end - last_t);
    let mean = if trace.end > 0 {
        integral as f64 / trace.end as f64
    } else {
        0.0
    };
    (max, mean)
}
