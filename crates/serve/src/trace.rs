//! The load-run trace: per-request lifecycle records, prefill and
//! decode-run spans, KV-block residency intervals, and the queue-depth
//! timeline.
//!
//! All timestamps are **grid units** (`2^-38` s, see
//! `madmax_core::steady`): the trace is the exact integer ledger the
//! verifier's load rules and the Perfetto exporter consume. Note that
//! the two simulation modes serialize decode work differently — the
//! event mode records one [`StepRun`] per homogeneous run, the per-token
//! reference one per step — so traces are *structurally* mode-dependent
//! even though every request-visible timestamp is byte-identical.

use madmax_fault::FaultKind;
use serde::{Deserialize, Serialize};

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The admission queue was at capacity when the request arrived.
    QueueFull,
    /// The request can never run: its worst-case KV footprint exceeds
    /// the whole paged budget.
    Infeasible,
}

/// Lifecycle record of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (arrival order).
    pub id: u32,
    /// Arrival time, grid units.
    pub arrival: i64,
    /// Prompt tokens.
    pub prompt_len: usize,
    /// Decode tokens requested.
    pub decode_len: u64,
    /// First admission time (prefill start), if admitted.
    pub admitted: Option<i64>,
    /// First-token time (end of the first prefill), if admitted.
    pub first_token: Option<i64>,
    /// Completion time (end of the last decode step), if completed.
    pub completion: Option<i64>,
    /// Rejection, if rejected at arrival.
    pub rejected: Option<RejectReason>,
    /// Times this request was evicted (and later re-prefilled).
    pub evictions: u32,
    /// Fault interruptions this request survived (each consumed one
    /// retry of the run's [`RetryPolicy`](madmax_fault::RetryPolicy)).
    #[serde(default)]
    pub retries: u32,
    /// When the request was dropped by a fault (retry budget exhausted
    /// or timeout exceeded), if it failed.
    #[serde(default)]
    pub failed: Option<i64>,
}

/// One prefill execution (initial admission or eviction-recompute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefillRun {
    /// The request being prefilled.
    pub request: u32,
    /// Start time, grid units.
    pub start: i64,
    /// End time, grid units.
    pub end: i64,
    /// Context tokens prefilled (prompt, plus generated tokens on a
    /// recompute).
    pub ctx_tokens: usize,
    /// Whether this is an eviction-recompute.
    pub resumed: bool,
}

/// One in-flight sequence of a decode run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepSeq {
    /// The request.
    pub request: u32,
    /// Its resident KV tokens before the run's first step.
    pub kv_start: i64,
}

/// A run of consecutive decode steps over a stable in-flight set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRun {
    /// Start time, grid units.
    pub start: i64,
    /// End time, grid units.
    pub end: i64,
    /// Steps in the run (each emits one token per participant).
    pub steps: i64,
    /// The in-flight set, in admission order.
    pub participants: Vec<StepSeq>,
    /// Total resident KV tokens before the first step.
    pub kv_total_start: i64,
    /// KV blocks held by the participants at the end of the run.
    pub blocks_held: u64,
}

/// A KV-block residency interval: one request's blocks, from prefill
/// start until release (completion or eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidencySpan {
    /// The request holding the blocks.
    pub request: u32,
    /// Allocation time (prefill start), grid units.
    pub start: i64,
    /// Release time; `None` when still held at the end of the run.
    pub end: Option<i64>,
    /// Blocks held when the span closed (eviction-mode caches grow
    /// within the span; this is the high-water count).
    pub blocks: u64,
}

/// One fault window as the simulator applied it: the span the
/// deployment actually spent degraded (clock overshoot past the event
/// time is possible when the event lands inside an atomic prefill), plus
/// the in-flight requests the window interrupted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpan {
    /// When the simulator applied the event, grid units.
    pub start: i64,
    /// When the window closed (capacity recovered / slowdown lifted),
    /// grid units.
    pub end: i64,
    /// What the window did.
    pub kind: FaultKind,
    /// Serving slots lost for the window.
    pub slots_lost: usize,
    /// Step-cost multiplier for the window, percent (>= 100).
    pub slowdown_pct: u32,
    /// Requests interrupted when the window opened (youngest first).
    pub interrupted: Vec<u32>,
}

/// The complete integer-time ledger of one load run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    /// Per-request lifecycle records, indexed by id.
    pub records: Vec<RequestRecord>,
    /// Every prefill execution, in time order.
    pub prefills: Vec<PrefillRun>,
    /// Every decode run, in time order.
    pub runs: Vec<StepRun>,
    /// KV-block residency intervals, in allocation order.
    pub residency: Vec<ResidencySpan>,
    /// Queue-depth change events `(time, depth)`.
    pub queue_depth: Vec<(i64, u32)>,
    /// Whether `queue_depth` hit its recording cap and stopped.
    pub queue_depth_truncated: bool,
    /// Paging granularity, tokens per block.
    pub block_tokens: usize,
    /// Paged budget, if any.
    pub total_blocks: Option<u64>,
    /// Peak blocks allocated.
    pub peak_blocks: u64,
    /// End of the run, grid units.
    pub end: i64,
    /// Fault windows the run applied, in application order.
    #[serde(default)]
    pub faults: Vec<FaultSpan>,
    /// The retry budget in force, when the run had fault events.
    #[serde(default)]
    pub retry_limit: Option<u32>,
    /// Decode slots the deployment was priced for (0 in traces predating
    /// the fault ledger).
    #[serde(default)]
    pub slots: usize,
}

impl LoadTrace {
    /// Decode steps executed for `request` across all runs it
    /// participated in.
    pub fn steps_of(&self, request: u32) -> i64 {
        self.runs
            .iter()
            .filter(|r| r.participants.iter().any(|p| p.request == request))
            .map(|r| r.steps)
            .sum()
    }
}
