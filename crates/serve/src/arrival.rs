//! Request arrival processes: seeded-deterministic Poisson streams and
//! trace-driven (JSONL) request lists, materialized onto the exact
//! integer duration grid.
//!
//! Every arrival timestamp is snapped to the grid
//! (`madmax_core::steady::grid_units_round`) at materialization, so the
//! whole load run — arrivals included — lives in the closed form's
//! exactness domain and the event-driven and per-token simulators see
//! bit-identical clocks.

use madmax_core::steady::grid_units_round;
use madmax_hw::units::Seconds;
use madmax_model::ModelArch;
use madmax_parallel::{ArrivalSpec, RequestSpec, ServeConfig};

use crate::LoadError;

/// One materialized arrival: grid-time plus the request's token shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Arrival time in grid units.
    pub at: i64,
    /// Prompt tokens.
    pub prompt_len: usize,
    /// Decode tokens to generate.
    pub decode_len: usize,
}

/// xorshift64*: a tiny, seeded, platform-independent PRNG — enough to
/// make Poisson streams exactly reproducible from their seed.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform draw in `(0, 1]` from the high 53 bits (never 0, so `ln` is
/// finite).
fn uniform_01(state: &mut u64) -> f64 {
    let bits = next_u64(state) >> 11;
    (bits + 1) as f64 / (1u64 << 53) as f64
}

/// Materializes an arrival process into grid-time events, resolving
/// Poisson request shapes against the serve workload (prompt length and
/// decode length come from `serve`; trace-driven requests carry their
/// own).
///
/// # Errors
///
/// [`LoadError::Spec`] when a request has zero prompt/decode tokens,
/// [`LoadError::GridRange`] when an arrival time leaves the exact grid
/// range (~16384 s).
pub fn materialize_arrivals(
    spec: &ArrivalSpec,
    serve: &ServeConfig,
    model: &ModelArch,
) -> Result<Vec<ArrivalEvent>, LoadError> {
    match spec {
        ArrivalSpec::Poisson { rate, count, seed } => {
            if !rate.is_finite() || *rate <= 0.0 {
                return Err(LoadError::Spec(format!("Poisson rate {rate} must be > 0")));
            }
            let prompt_len = serve.effective_prompt_len(model);
            let decode_len = serve.decode_len;
            if prompt_len == 0 || decode_len == 0 {
                return Err(LoadError::Spec(
                    "Poisson arrivals need a serve workload with prompt_len >= 1 \
                     and decode_len >= 1"
                        .to_owned(),
                ));
            }
            // Seed 0 is a fixed point of xorshift; remap it.
            let mut state = if *seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                *seed
            };
            let mut at = 0i64;
            let mut events = Vec::with_capacity(*count);
            for _ in 0..*count {
                let gap = -uniform_01(&mut state).ln() / rate;
                let gap_units = grid_units_round(Seconds::new(gap)).ok_or_else(|| {
                    LoadError::GridRange(format!("inter-arrival gap {gap} s off-grid"))
                })?;
                at = at
                    .checked_add(gap_units)
                    .filter(|t| *t < 1 << 52)
                    .ok_or_else(|| {
                        LoadError::GridRange("arrival clock beyond 2^52 grid units".to_owned())
                    })?;
                events.push(ArrivalEvent {
                    at,
                    prompt_len,
                    decode_len,
                });
            }
            Ok(events)
        }
        ArrivalSpec::Bursty {
            rate,
            on_secs,
            off_secs,
            count,
            seed,
        } => {
            if !rate.is_finite() || *rate <= 0.0 {
                return Err(LoadError::Spec(format!("bursty rate {rate} must be > 0")));
            }
            if !on_secs.is_finite() || *on_secs <= 0.0 || !off_secs.is_finite() || *off_secs <= 0.0
            {
                return Err(LoadError::Spec(format!(
                    "bursty phase means on={on_secs} off={off_secs} must be > 0"
                )));
            }
            let prompt_len = serve.effective_prompt_len(model);
            let decode_len = serve.decode_len;
            if prompt_len == 0 || decode_len == 0 {
                return Err(LoadError::Spec(
                    "bursty arrivals need a serve workload with prompt_len >= 1 \
                     and decode_len >= 1"
                        .to_owned(),
                ));
            }
            let mut state = if *seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                *seed
            };
            let snap = |gap: f64| {
                grid_units_round(Seconds::new(gap))
                    .ok_or_else(|| LoadError::GridRange(format!("bursty gap {gap} s off-grid")))
            };
            let advance = |at: i64, delta: i64| {
                at.checked_add(delta)
                    .filter(|t| *t < 1 << 52)
                    .ok_or_else(|| {
                        LoadError::GridRange("arrival clock beyond 2^52 grid units".to_owned())
                    })
            };
            // On-off modulated Poisson by time-rescaling: arrival gaps
            // are exponential in ON-time; OFF phases are skipped over
            // without consuming any of the gap. The run starts in an ON
            // phase at t = 0.
            let mut at = 0i64;
            let mut phase_end = snap(-uniform_01(&mut state).ln() * on_secs)?;
            let mut events = Vec::with_capacity(*count);
            for _ in 0..*count {
                let mut gap = snap(-uniform_01(&mut state).ln() / rate)?;
                while advance(at, gap)? > phase_end {
                    gap -= phase_end - at;
                    let off = snap(-uniform_01(&mut state).ln() * off_secs)?;
                    at = advance(phase_end, off)?;
                    let on = snap(-uniform_01(&mut state).ln() * on_secs)?;
                    phase_end = advance(at, on)?;
                }
                at = advance(at, gap)?;
                events.push(ArrivalEvent {
                    at,
                    prompt_len,
                    decode_len,
                });
            }
            Ok(events)
        }
        ArrivalSpec::Trace { requests } => requests
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if r.prompt_len == 0 || r.decode_len == 0 {
                    return Err(LoadError::Spec(format!(
                        "request {i}: prompt_len and decode_len must be >= 1"
                    )));
                }
                let at = grid_units_round(Seconds::new(r.arrival)).ok_or_else(|| {
                    LoadError::GridRange(format!("request {i}: arrival {} s off-grid", r.arrival))
                })?;
                Ok(ArrivalEvent {
                    at,
                    prompt_len: r.prompt_len,
                    decode_len: r.decode_len,
                })
            })
            .collect(),
    }
}

/// Parses a JSONL request trace: one JSON object per non-empty line with
/// `arrival` (seconds), `prompt_len`, and `decode_len` fields. Requests
/// are stably sorted by arrival time.
///
/// # Errors
///
/// [`LoadError::Spec`] naming the first malformed line.
pub fn parse_request_jsonl(text: &str) -> Result<Vec<RequestSpec>, LoadError> {
    let mut requests = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let req: RequestSpec = serde_json::from_str(line)
            .map_err(|e| LoadError::Spec(format!("trace line {}: {e}", lineno + 1)))?;
        requests.push(req);
    }
    requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_model::ModelId;
    use madmax_parallel::ArrivalSpec;

    fn serve_cfg() -> ServeConfig {
        ServeConfig::new(128, 32)
    }

    #[test]
    fn poisson_streams_are_seed_deterministic() {
        let model = ModelId::Llama2.build();
        let spec = ArrivalSpec::Poisson {
            rate: 10.0,
            count: 50,
            seed: 7,
        };
        let a = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
        let b = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        let other = materialize_arrivals(
            &ArrivalSpec::Poisson {
                rate: 10.0,
                count: 50,
                seed: 8,
            },
            &serve_cfg(),
            &model,
        )
        .unwrap();
        assert_ne!(a, other, "seed changes the stream");
    }

    #[test]
    fn poisson_rate_scales_the_mean_gap() {
        let model = ModelId::Llama2.build();
        let mean_at = |rate: f64| {
            let spec = ArrivalSpec::Poisson {
                rate,
                count: 400,
                seed: 3,
            };
            let ev = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
            ev.last().unwrap().at as f64 / ev.len() as f64
        };
        let slow = mean_at(2.0);
        let fast = mean_at(20.0);
        // 10x the rate ~ 1/10th the mean gap (same seed, same uniforms).
        assert!((slow / fast - 10.0).abs() < 0.5, "{slow} vs {fast}");
    }

    #[test]
    fn bursty_streams_are_seed_deterministic_and_clumped() {
        let model = ModelId::Llama2.build();
        let spec = ArrivalSpec::Bursty {
            rate: 20.0,
            on_secs: 1.0,
            off_secs: 4.0,
            count: 400,
            seed: 11,
        };
        let a = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
        let b = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        // Burstiness: an on-off stream at the same in-burst rate has a
        // higher gap variance than the plain Poisson stream (the OFF
        // phases insert rare, huge gaps).
        let squared_cv = |ev: &[ArrivalEvent]| {
            let gaps: Vec<f64> = ev.windows(2).map(|w| (w[1].at - w[0].at) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let plain = materialize_arrivals(
            &ArrivalSpec::Poisson {
                rate: 20.0,
                count: 400,
                seed: 11,
            },
            &serve_cfg(),
            &model,
        )
        .unwrap();
        assert!(
            squared_cv(&a) > 2.0 * squared_cv(&plain),
            "{} vs {}",
            squared_cv(&a),
            squared_cv(&plain)
        );
    }

    #[test]
    fn bursty_off_phases_stretch_the_stream() {
        let model = ModelId::Llama2.build();
        let span = |off_secs: f64| {
            let spec = ArrivalSpec::Bursty {
                rate: 10.0,
                on_secs: 0.5,
                off_secs,
                count: 200,
                seed: 5,
            };
            materialize_arrivals(&spec, &serve_cfg(), &model)
                .unwrap()
                .last()
                .unwrap()
                .at
        };
        // Longer OFF phases push the same request count further out.
        assert!(span(8.0) > 2 * span(0.5), "{} vs {}", span(8.0), span(0.5));
    }

    #[test]
    fn jsonl_traces_parse_and_sort() {
        let text = r#"
            {"arrival": 0.5, "prompt_len": 64, "decode_len": 16}

            {"arrival": 0.25, "prompt_len": 32, "decode_len": 8}
        "#;
        let reqs = parse_request_jsonl(text).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].arrival, 0.25);
        assert_eq!(reqs[1].prompt_len, 64);
        assert!(parse_request_jsonl("{broken").is_err());
    }

    #[test]
    fn zero_token_requests_are_rejected() {
        let model = ModelId::Llama2.build();
        let spec = ArrivalSpec::Trace {
            requests: vec![RequestSpec {
                arrival: 0.0,
                prompt_len: 8,
                decode_len: 0,
            }],
        };
        assert!(matches!(
            materialize_arrivals(&spec, &serve_cfg(), &model),
            Err(LoadError::Spec(_))
        ));
    }
}
