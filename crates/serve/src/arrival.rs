//! Request arrival processes: seeded-deterministic Poisson streams and
//! trace-driven (JSONL) request lists, materialized onto the exact
//! integer duration grid.
//!
//! Every arrival timestamp is snapped to the grid
//! (`madmax_core::steady::grid_units_round`) at materialization, so the
//! whole load run — arrivals included — lives in the closed form's
//! exactness domain and the event-driven and per-token simulators see
//! bit-identical clocks.

use madmax_core::steady::grid_units_round;
use madmax_hw::units::Seconds;
use madmax_model::ModelArch;
use madmax_parallel::{ArrivalSpec, RequestSpec, ServeConfig};

use crate::LoadError;

/// One materialized arrival: grid-time plus the request's token shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Arrival time in grid units.
    pub at: i64,
    /// Prompt tokens.
    pub prompt_len: usize,
    /// Decode tokens to generate.
    pub decode_len: usize,
}

/// xorshift64*: a tiny, seeded, platform-independent PRNG — enough to
/// make Poisson streams exactly reproducible from their seed.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform draw in `(0, 1]` from the high 53 bits (never 0, so `ln` is
/// finite).
fn uniform_01(state: &mut u64) -> f64 {
    let bits = next_u64(state) >> 11;
    (bits + 1) as f64 / (1u64 << 53) as f64
}

/// Materializes an arrival process into grid-time events, resolving
/// Poisson request shapes against the serve workload (prompt length and
/// decode length come from `serve`; trace-driven requests carry their
/// own).
///
/// # Errors
///
/// [`LoadError::Spec`] when a request has zero prompt/decode tokens,
/// [`LoadError::GridRange`] when an arrival time leaves the exact grid
/// range (~16384 s).
pub fn materialize_arrivals(
    spec: &ArrivalSpec,
    serve: &ServeConfig,
    model: &ModelArch,
) -> Result<Vec<ArrivalEvent>, LoadError> {
    match spec {
        ArrivalSpec::Poisson { rate, count, seed } => {
            if !rate.is_finite() || *rate <= 0.0 {
                return Err(LoadError::Spec(format!("Poisson rate {rate} must be > 0")));
            }
            let prompt_len = serve.effective_prompt_len(model);
            let decode_len = serve.decode_len;
            if prompt_len == 0 || decode_len == 0 {
                return Err(LoadError::Spec(
                    "Poisson arrivals need a serve workload with prompt_len >= 1 \
                     and decode_len >= 1"
                        .to_owned(),
                ));
            }
            // Seed 0 is a fixed point of xorshift; remap it.
            let mut state = if *seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                *seed
            };
            let mut at = 0i64;
            let mut events = Vec::with_capacity(*count);
            for _ in 0..*count {
                let gap = -uniform_01(&mut state).ln() / rate;
                let gap_units = grid_units_round(Seconds::new(gap)).ok_or_else(|| {
                    LoadError::GridRange(format!("inter-arrival gap {gap} s off-grid"))
                })?;
                at = at
                    .checked_add(gap_units)
                    .filter(|t| *t < 1 << 52)
                    .ok_or_else(|| {
                        LoadError::GridRange("arrival clock beyond 2^52 grid units".to_owned())
                    })?;
                events.push(ArrivalEvent {
                    at,
                    prompt_len,
                    decode_len,
                });
            }
            Ok(events)
        }
        ArrivalSpec::Trace { requests } => requests
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if r.prompt_len == 0 || r.decode_len == 0 {
                    return Err(LoadError::Spec(format!(
                        "request {i}: prompt_len and decode_len must be >= 1"
                    )));
                }
                let at = grid_units_round(Seconds::new(r.arrival)).ok_or_else(|| {
                    LoadError::GridRange(format!("request {i}: arrival {} s off-grid", r.arrival))
                })?;
                Ok(ArrivalEvent {
                    at,
                    prompt_len: r.prompt_len,
                    decode_len: r.decode_len,
                })
            })
            .collect(),
    }
}

/// Parses a JSONL request trace: one JSON object per non-empty line with
/// `arrival` (seconds), `prompt_len`, and `decode_len` fields. Requests
/// are stably sorted by arrival time.
///
/// # Errors
///
/// [`LoadError::Spec`] naming the first malformed line.
pub fn parse_request_jsonl(text: &str) -> Result<Vec<RequestSpec>, LoadError> {
    let mut requests = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let req: RequestSpec = serde_json::from_str(line)
            .map_err(|e| LoadError::Spec(format!("trace line {}: {e}", lineno + 1)))?;
        requests.push(req);
    }
    requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_model::ModelId;
    use madmax_parallel::ArrivalSpec;

    fn serve_cfg() -> ServeConfig {
        ServeConfig::new(128, 32)
    }

    #[test]
    fn poisson_streams_are_seed_deterministic() {
        let model = ModelId::Llama2.build();
        let spec = ArrivalSpec::Poisson {
            rate: 10.0,
            count: 50,
            seed: 7,
        };
        let a = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
        let b = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        let other = materialize_arrivals(
            &ArrivalSpec::Poisson {
                rate: 10.0,
                count: 50,
                seed: 8,
            },
            &serve_cfg(),
            &model,
        )
        .unwrap();
        assert_ne!(a, other, "seed changes the stream");
    }

    #[test]
    fn poisson_rate_scales_the_mean_gap() {
        let model = ModelId::Llama2.build();
        let mean_at = |rate: f64| {
            let spec = ArrivalSpec::Poisson {
                rate,
                count: 400,
                seed: 3,
            };
            let ev = materialize_arrivals(&spec, &serve_cfg(), &model).unwrap();
            ev.last().unwrap().at as f64 / ev.len() as f64
        };
        let slow = mean_at(2.0);
        let fast = mean_at(20.0);
        // 10x the rate ~ 1/10th the mean gap (same seed, same uniforms).
        assert!((slow / fast - 10.0).abs() < 0.5, "{slow} vs {fast}");
    }

    #[test]
    fn jsonl_traces_parse_and_sort() {
        let text = r#"
            {"arrival": 0.5, "prompt_len": 64, "decode_len": 16}

            {"arrival": 0.25, "prompt_len": 32, "decode_len": 8}
        "#;
        let reqs = parse_request_jsonl(text).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].arrival, 0.25);
        assert_eq!(reqs[1].prompt_len, 64);
        assert!(parse_request_jsonl("{broken").is_err());
    }

    #[test]
    fn zero_token_requests_are_rejected() {
        let model = ModelId::Llama2.build();
        let spec = ArrivalSpec::Trace {
            requests: vec![RequestSpec {
                arrival: 0.0,
                prompt_len: 8,
                decode_len: 0,
            }],
        };
        assert!(matches!(
            materialize_arrivals(&spec, &serve_cfg(), &model),
            Err(LoadError::Spec(_))
        ));
    }
}
