//! The paged KV-cache block allocator: a vLLM-style budget of
//! fixed-size token blocks shared by every in-flight request.
//!
//! The pager is deliberately simple — integer block accounting, no free
//! lists — because the simulator only needs *counts*: can this admission
//! reserve its blocks, can this decode run grow its caches, and what was
//! the peak. Backpressure (queueing) and eviction policy live in the
//! simulator loop; the pager just enforces the budget.

/// Paged KV-cache accounting for one load run.
#[derive(Debug, Clone)]
pub struct KvPager {
    /// Tokens per block.
    block_tokens: usize,
    /// Total budget in blocks; `None` is unpaged (unbounded).
    total: Option<u64>,
    /// Blocks currently allocated.
    used: u64,
    /// High-water mark of `used`.
    peak: u64,
}

impl KvPager {
    /// A pager with `total` blocks of `block_tokens` tokens each.
    pub fn new(block_tokens: usize, total: Option<u64>) -> Self {
        assert!(block_tokens >= 1, "block_tokens must be >= 1");
        Self {
            block_tokens,
            total,
            used: 0,
            peak: 0,
        }
    }

    /// Blocks needed to hold `tokens` cache entries.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_tokens as u64)
    }

    /// Blocks currently free, or `u64::MAX` when unpaged.
    pub fn free(&self) -> u64 {
        match self.total {
            Some(t) => t - self.used,
            None => u64::MAX,
        }
    }

    /// Allocates `blocks` if the budget allows, returning whether it did.
    pub fn try_alloc(&mut self, blocks: u64) -> bool {
        if self.free() < blocks {
            return false;
        }
        self.used += blocks;
        self.peak = self.peak.max(self.used);
        true
    }

    /// Releases `blocks` back to the budget.
    pub fn release(&mut self, blocks: u64) {
        debug_assert!(blocks <= self.used, "releasing more blocks than held");
        self.used -= blocks;
    }

    /// Blocks currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of allocated blocks.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// The budget, if paged.
    pub fn total(&self) -> Option<u64> {
        self.total
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math_rounds_up() {
        let pager = KvPager::new(16, Some(10));
        assert_eq!(pager.blocks_for(0), 0);
        assert_eq!(pager.blocks_for(1), 1);
        assert_eq!(pager.blocks_for(16), 1);
        assert_eq!(pager.blocks_for(17), 2);
    }

    #[test]
    fn budget_is_enforced_and_peak_tracked() {
        let mut pager = KvPager::new(16, Some(4));
        assert!(pager.try_alloc(3));
        assert!(!pager.try_alloc(2), "over budget");
        assert!(pager.try_alloc(1));
        assert_eq!(pager.free(), 0);
        pager.release(2);
        assert_eq!(pager.used(), 2);
        assert_eq!(pager.peak(), 4);
        assert!(pager.try_alloc(2));
    }

    #[test]
    fn unpaged_budget_never_blocks() {
        let mut pager = KvPager::new(16, None);
        assert!(pager.try_alloc(1 << 40));
        assert_eq!(pager.free(), u64::MAX);
        assert_eq!(pager.peak(), 1 << 40);
    }
}
