//! # madmax-serve
//!
//! An event-driven **continuous-batching serve simulator** on top of the
//! MAD-Max per-step cost machinery: instead of pricing one synchronized
//! (prefill, decode) wave, it executes a *request stream* — arrivals,
//! admission queueing, in-flight batching where new requests join the
//! decode batch as others finish, and a paged, evictable KV-cache budget
//! — and reports latency percentiles (TTFT/TPOT), queue depth, and
//! goodput under load.
//!
//! ## How it prices a step
//!
//! The synchronized-wave engines (`madmax-core` / `madmax-pipeline`)
//! already price every per-step serve cost on an exact integer duration
//! grid, and their closed-form steady-state path (`madmax_core::steady`)
//! guarantees decode-step durations form exact affine series in the
//! KV-cache position. [`StepCostModel::price`] extracts that affine
//! structure with a handful of analytic probe evaluations (first/second
//! differences of consecutive decode lengths, at one and at `slots`
//! in-flight sequences) into integer grid-unit coefficients:
//!
//! ```text
//! prefill(ctx)   = prefill_base + prefill_slope * ctx
//! step(B, K)     = step_base + step_seq * B + step_rate * K
//! ```
//!
//! where `B` is the in-flight batch and `K` the total resident KV tokens.
//!
//! ## How it advances time
//!
//! Between arrival / completion / eviction events the in-flight set is
//! stable, so every decode step of a run costs `c + r*k` grid units —
//! exactly the arithmetic series the PR-8 quadratic jump certifies. The
//! event-driven mode ([`SimMode::Event`]) advances whole runs as
//! closed-form series sums through the re-entry helpers
//! (`madmax_core::steady::affine_series_units`), localizing
//! arrival/horizon crossings by integer binary search
//! (`first_series_crossing`); the per-token reference mode
//! ([`SimMode::PerToken`]) executes the same loop one step at a time.
//! Because both modes run the identical integer recurrence, their
//! [`LoadReport`]s and per-request records are **byte-identical** — the
//! event mode is purely a wall-clock optimization, validated by
//! `tests/serve_load_invariants.rs`.
//!
//! ## Entry points
//!
//! Most callers go through `madmax_engine::Scenario::serve_load`; the
//! crate-level [`simulate_load`] is the direct path when you already hold
//! a priced [`StepCostModel`]. See `crates/serve/README.md` for a
//! walkthrough.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod cost;
pub mod kv;
pub mod report;
pub mod sim;
pub mod trace;

pub use arrival::{materialize_arrivals, parse_request_jsonl, ArrivalEvent};
pub use cost::StepCostModel;
pub use report::{LoadReport, Percentiles, RequestOutcome};
pub use sim::{simulate_load, simulate_load_faulty, LoadOutcome, SimCounters, SimMode};
pub use trace::{
    FaultSpan, LoadTrace, PrefillRun, RejectReason, RequestRecord, ResidencySpan, StepRun, StepSeq,
};

use madmax_parallel::PlanError;

/// Everything a load simulation can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The candidate plan cannot serve this workload at all (OOM while
    /// holding `slots` sequences, unmappable pipeline, ...): the probe
    /// evaluations failed.
    Plan(PlanError),
    /// The load spec is structurally invalid (see
    /// `madmax_parallel::LoadSpec::validate`).
    Spec(String),
    /// The run left the exact integer duration grid (a timestamp or
    /// series total at or beyond `2^52` grid units, or a probed cost that
    /// is not a grid multiple): results would no longer be exact.
    GridRange(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Plan(e) => write!(f, "load probe failed: {e}"),
            LoadError::Spec(m) => write!(f, "invalid load spec: {m}"),
            LoadError::GridRange(m) => write!(f, "load run left the exact grid: {m}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for LoadError {
    fn from(e: PlanError) -> Self {
        LoadError::Plan(e)
    }
}

impl LoadError {
    /// Whether the candidate failed for memory capacity (the OOM bars of
    /// load sweeps).
    pub fn is_oom(&self) -> bool {
        matches!(self, LoadError::Plan(PlanError::OutOfMemory { .. }))
    }
}
