//! The continuous-batching load simulator: one integer-time loop, two
//! execution modes.
//!
//! ## The loop
//!
//! A single serialized engine (the priced deployment) alternates between
//! prefills and batched decode steps. Each iteration performs exactly
//! one action, in fixed priority order:
//!
//! 1. stop at the horizon;
//! 2. ingest arrivals due by `now` (rejecting on queue overflow or
//!    infeasible KV footprints);
//! 3. admit the queue head if a slot and its KV blocks are available —
//!    admission runs the request's prefill (first token at its end);
//! 4. otherwise run decode steps over the in-flight set;
//! 5. otherwise (idle) jump the clock to the next arrival.
//!
//! ## Event mode vs per-token mode
//!
//! Between events the in-flight set is stable, so every decode step
//! costs `c + r*k` grid units (`r` = KV growth rate x batch). The
//! **event mode** advances a whole run of steps with one closed-form
//! series sum, bounding the run length by the next completion (smallest
//! remaining token count), the next arrival and the horizon (integer
//! binary search via `first_series_crossing`), and — under a paged KV
//! budget — the first step whose cache growth exceeds the free blocks.
//! The **per-token mode** caps every run at one step. Both modes
//! execute the identical integer recurrence at the identical decision
//! boundaries, so their per-request records and [`LoadReport`]s are
//! byte-identical; the event mode is purely a wall-clock optimization.
//!
//! ## Paged KV and eviction
//!
//! Without eviction, admission reserves a request's worst-case block
//! count (prompt + decode tokens), so running requests never stall.
//! With eviction, admission is optimistic — blocks for the prefilled
//! context, plus a watermark of one growth block per in-flight request
//! — and a decode step that cannot grow its caches evicts the youngest
//! request (blocks freed, re-queued at the front, prefill recomputed
//! over prompt + generated tokens on re-admission). The watermark
//! guarantees at least one decode step between a request's admission and
//! any eviction, so every episode makes progress and the run terminates.

use std::collections::VecDeque;

use madmax_core::steady::{affine_series_units, first_series_crossing, grid_units_round};
use madmax_fault::{FaultEvent, FaultKind, RetryPolicy};
use madmax_hw::units::Seconds;
use madmax_model::ModelArch;
use madmax_parallel::{LoadSpec, ServeConfig};

use crate::arrival::{materialize_arrivals, ArrivalEvent};
use crate::cost::StepCostModel;
use crate::kv::KvPager;
use crate::report::LoadReport;
use crate::trace::{
    FaultSpan, LoadTrace, PrefillRun, RejectReason, RequestRecord, ResidencySpan, StepRun, StepSeq,
};
use crate::LoadError;

/// Exact-range ceiling: timestamps must stay below `2^52` grid units.
const MAX_UNITS: i64 = 1 << 52;

/// Queue-depth events recorded before the timeline stops sampling.
const QUEUE_DEPTH_CAP: usize = 16_384;

/// How the simulator advances decode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Closed-form runs between events (the fast path).
    Event,
    /// One decode step at a time (the reference the event mode is
    /// validated against).
    PerToken,
}

/// Work counters of one simulation (mode-dependent; excluded from the
/// byte-identity contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Decode-run actions executed.
    pub decode_runs: u64,
    /// Decode steps executed (sum of run lengths).
    pub decode_steps: u64,
    /// Longest single run, in steps.
    pub max_run: u64,
    /// Evictions performed.
    pub evictions: u64,
}

/// Everything one load simulation produces.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// The aggregate + per-request report (mode-independent).
    pub report: LoadReport,
    /// The integer-time ledger (structurally mode-dependent).
    pub trace: LoadTrace,
    /// Work counters (mode-dependent).
    pub counters: SimCounters,
}

/// A queued request (fresh, evicted, or fault-interrupted awaiting
/// re-admission).
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u32,
    /// Context tokens to prefill (prompt, plus generated tokens on a
    /// resume).
    ctx: u64,
    /// Decode steps still owed.
    remaining: i64,
    resumed: bool,
    /// Earliest re-admission time (retry backoff), grid units.
    eligible_at: i64,
}

/// An in-flight request.
#[derive(Debug, Clone, Copy)]
struct Flight {
    id: u32,
    /// Resident KV tokens (context + generated so far).
    kv: i64,
    /// Decode steps still owed.
    remaining: i64,
    /// Worst-case tokens this request will ever cache (for reserve-mode
    /// accounting).
    max_tokens: u64,
    /// KV blocks currently allocated.
    blocks: u64,
    /// Index of its open residency span.
    span: usize,
}

struct Sim<'a, 'h> {
    costs: &'a StepCostModel,
    hook: Option<&'h mut dyn FnMut(&RequestRecord)>,
    mode: SimMode,
    eviction: bool,
    queue_capacity: Option<usize>,
    horizon: Option<i64>,
    arrivals: &'a [ArrivalEvent],
    next_arrival: usize,
    faults: &'a [FaultEvent],
    next_fault: usize,
    /// Fault windows currently open (`until > now`).
    active: Vec<FaultEvent>,
    retry: RetryPolicy,
    /// Retry backoff, grid units.
    backoff_units: i64,
    /// Retry timeout, grid units.
    timeout_units: Option<i64>,
    now: i64,
    queue: VecDeque<Pending>,
    inflight: Vec<Flight>,
    pager: KvPager,
    trace: LoadTrace,
    counters: SimCounters,
}

impl Sim<'_, '_> {
    fn advance(&mut self, delta: i64) -> Result<(), LoadError> {
        self.now = self
            .now
            .checked_add(delta)
            .filter(|t| *t < MAX_UNITS)
            .ok_or_else(|| {
                LoadError::GridRange("simulated clock beyond 2^52 grid units".to_owned())
            })?;
        Ok(())
    }

    fn note_queue_depth(&mut self) {
        if self.trace.queue_depth.len() >= QUEUE_DEPTH_CAP {
            self.trace.queue_depth_truncated = true;
            return;
        }
        self.trace
            .queue_depth
            .push((self.now, self.queue.len() as u32));
    }

    /// Ingests every arrival due by `now`. Returns whether anything
    /// changed.
    fn ingest(&mut self) -> bool {
        let mut changed = false;
        while let Some(a) = self.arrivals.get(self.next_arrival) {
            if a.at > self.now {
                break;
            }
            let id = self.next_arrival as u32;
            self.next_arrival += 1;
            changed = true;
            let worst = a.prompt_len as u64 + a.decode_len as u64;
            if self
                .pager
                .total()
                .is_some_and(|t| self.pager.blocks_for(worst) > t)
            {
                self.trace.records[id as usize].rejected = Some(RejectReason::Infeasible);
                continue;
            }
            if self
                .queue_capacity
                .is_some_and(|cap| self.queue.len() >= cap)
            {
                self.trace.records[id as usize].rejected = Some(RejectReason::QueueFull);
                continue;
            }
            self.queue.push_back(Pending {
                id,
                ctx: a.prompt_len as u64,
                remaining: a.decode_len as i64,
                resumed: false,
                eligible_at: a.at,
            });
            self.note_queue_depth();
        }
        changed
    }

    /// Decode slots usable right now: the priced slot count minus the
    /// capacity drained by open fault windows.
    fn effective_slots(&self) -> usize {
        let lost: usize = self.active.iter().map(|f| f.slots_lost).sum();
        self.costs.slots.saturating_sub(lost)
    }

    /// Step-cost multiplier of the open fault windows, percent (`100`
    /// when none is open; overlapping windows take the worst factor).
    fn slowdown_pct(&self) -> i64 {
        self.active
            .iter()
            .map(|f| i64::from(f.slowdown_pct))
            .max()
            .unwrap_or(100)
            .max(100)
    }

    /// Scales a grid cost by the open windows' slowdown factor (exact
    /// identity at 100%).
    fn slowed(&self, units: i64) -> i64 {
        let pct = self.slowdown_pct();
        (units * pct + 99) / 100
    }

    /// Interrupts the youngest in-flight request: frees its blocks and
    /// either re-queues it at the front (consuming one retry) or fails
    /// it (budget exhausted / timeout exceeded). Returns its id.
    fn interrupt_youngest(&mut self) -> u32 {
        let f = self.inflight.pop().expect("interruption needs a flight");
        self.pager.release(f.blocks);
        let span = &mut self.trace.residency[f.span];
        span.end = Some(self.now);
        span.blocks = f.blocks;
        let now = self.now;
        let rec = &mut self.trace.records[f.id as usize];
        let timed_out = self.timeout_units.is_some_and(|t| now - rec.arrival > t);
        if rec.retries >= self.retry.max_retries || timed_out {
            rec.failed = Some(now);
            return f.id;
        }
        rec.retries += 1;
        self.queue.push_front(Pending {
            id: f.id,
            ctx: f.kv as u64,
            remaining: f.remaining,
            resumed: true,
            eligible_at: now.saturating_add(self.backoff_units),
        });
        self.note_queue_depth();
        f.id
    }

    /// Applies every fault event due by `now`: expires closed windows,
    /// opens new ones (interrupting in-flight work on lost slots for
    /// fatal and maintenance windows), and records the spans. Overshoot
    /// past the event time is possible when it lands inside an atomic
    /// prefill; the recorded span starts at the application time.
    fn apply_faults(&mut self) {
        self.active.retain(|f| f.until > self.now);
        while let Some(f) = self.faults.get(self.next_fault) {
            if f.at > self.now {
                break;
            }
            let f = *f;
            self.next_fault += 1;
            let mut interrupted = Vec::new();
            if matches!(f.kind, FaultKind::Fatal | FaultKind::Maintenance) {
                let victims = f.slots_lost.min(self.inflight.len());
                for _ in 0..victims {
                    interrupted.push(self.interrupt_youngest());
                }
            }
            if f.until > self.now {
                self.active.push(f);
            }
            self.trace.faults.push(FaultSpan {
                start: self.now,
                end: f.until.max(self.now),
                kind: f.kind,
                slots_lost: f.slots_lost,
                slowdown_pct: f.slowdown_pct,
                interrupted,
            });
        }
    }

    /// Blocks the queue head needs admitted *now* (reserve: worst case;
    /// eviction: the prefilled context).
    fn admission_blocks(&self, head: &Pending) -> u64 {
        if self.eviction {
            self.pager.blocks_for(head.ctx)
        } else {
            self.pager.blocks_for(head.ctx + head.remaining as u64)
        }
    }

    /// Whether the queue head can be admitted.
    fn can_admit(&self) -> bool {
        let Some(head) = self.queue.front() else {
            return false;
        };
        if head.eligible_at > self.now {
            return false;
        }
        if self.inflight.len() >= self.effective_slots() {
            return false;
        }
        if self.eviction {
            // Watermark: context + next token, plus one growth block per
            // in-flight request, so the next decode step cannot evict a
            // zero-progress admission.
            let need = self.pager.blocks_for(head.ctx + 1) + self.inflight.len() as u64;
            self.pager.free() >= need
        } else {
            self.pager.free() >= self.admission_blocks(head)
        }
    }

    /// Admits the queue head: allocates its blocks, runs its prefill,
    /// stamps first-token on a fresh admission.
    fn admit(&mut self) -> Result<(), LoadError> {
        let head = self.queue.pop_front().expect("checked by can_admit");
        self.note_queue_depth();
        let blocks = self.admission_blocks(&head);
        assert!(self.pager.try_alloc(blocks), "checked by can_admit");
        let start = self.now;
        let prefill = self.slowed(self.costs.prefill_units(head.ctx)?);
        self.advance(prefill)?;
        let rec = &mut self.trace.records[head.id as usize];
        if !head.resumed {
            rec.admitted = Some(start);
            rec.first_token = Some(self.now);
        }
        self.trace.prefills.push(PrefillRun {
            request: head.id,
            start,
            end: self.now,
            ctx_tokens: head.ctx as usize,
            resumed: head.resumed,
        });
        let span = self.trace.residency.len();
        self.trace.residency.push(ResidencySpan {
            request: head.id,
            start,
            end: None,
            blocks,
        });
        let rec = &self.trace.records[head.id as usize];
        self.inflight.push(Flight {
            id: head.id,
            kv: head.ctx as i64,
            remaining: head.remaining,
            max_tokens: rec.prompt_len as u64 + rec.decode_len,
            blocks,
            span,
        });
        Ok(())
    }

    /// Evicts the youngest in-flight request: frees its blocks and
    /// re-queues it at the front for a recomputed prefill.
    fn evict_youngest(&mut self) {
        let f = self.inflight.pop().expect("eviction needs a flight");
        self.pager.release(f.blocks);
        let span = &mut self.trace.residency[f.span];
        span.end = Some(self.now);
        span.blocks = f.blocks;
        self.trace.records[f.id as usize].evictions += 1;
        self.counters.evictions += 1;
        self.queue.push_front(Pending {
            id: f.id,
            ctx: f.kv as u64,
            remaining: f.remaining,
            resumed: true,
            eligible_at: self.now,
        });
        self.note_queue_depth();
    }

    /// Total block growth the in-flight set needs to run `j` more steps.
    fn growth_demand(&self, j: i64) -> u64 {
        self.inflight
            .iter()
            .map(|f| {
                let need = if self.eviction {
                    self.pager.blocks_for((f.kv + j) as u64)
                } else {
                    // Reserve mode pre-allocated the worst case.
                    self.pager.blocks_for(f.max_tokens)
                };
                need.saturating_sub(f.blocks)
            })
            .sum()
    }

    /// Runs decode steps over the in-flight set — the per-mode core.
    /// Returns `false` when a block shortage forced an eviction instead
    /// (the outer loop re-enters).
    fn decode_run(&mut self) -> Result<bool, LoadError> {
        let batch = self.inflight.len() as u64;
        let kv_total: i64 = self.inflight.iter().map(|f| f.kv).sum();
        // Open slowdown windows scale both coefficients; at 100% the
        // scaling is the identity, so fault-free runs are untouched.
        let c = self.slowed(self.costs.step_units(batch, kv_total)?);
        let r = self.slowed(self.costs.step_rate * batch as i64);

        // Run length: next completion, capped to one step in per-token
        // mode.
        let mut n = self
            .inflight
            .iter()
            .map(|f| f.remaining)
            .min()
            .expect("decode_run needs flights");
        if self.mode == SimMode::PerToken {
            n = n.min(1);
        }
        // Next arrival and horizon: stop at the first step whose end
        // reaches them (the per-token loop would ingest/stop there).
        if let Some(a) = self.arrivals.get(self.next_arrival) {
            debug_assert!(a.at > self.now, "due arrivals are ingested first");
            if let Some(k) = first_series_crossing(c, r, 0, n, a.at - self.now) {
                n = k;
            }
        }
        if let Some(h) = self.horizon {
            debug_assert!(h > self.now, "the loop stops at the horizon");
            if let Some(k) = first_series_crossing(c, r, 0, n, h - self.now) {
                n = k;
            }
        }
        // Fault boundaries: the next fault event, the close of any open
        // window (capacity/slowdown change), and the queue head's retry
        // eligibility are all decision points the per-token loop would
        // stop at.
        if let Some(f) = self.faults.get(self.next_fault) {
            debug_assert!(f.at > self.now, "due faults are applied first");
            if let Some(k) = first_series_crossing(c, r, 0, n, f.at - self.now) {
                n = k;
            }
        }
        if let Some(u) = self.active.iter().map(|f| f.until).min() {
            debug_assert!(u > self.now, "closed windows are expired first");
            if let Some(k) = first_series_crossing(c, r, 0, n, u - self.now) {
                n = k;
            }
        }
        if let Some(head) = self.queue.front() {
            if head.eligible_at > self.now {
                if let Some(k) = first_series_crossing(c, r, 0, n, head.eligible_at - self.now) {
                    n = k;
                }
            }
        }
        // Paged budget: largest prefix of the run whose cache growth
        // fits the free blocks.
        if self.pager.total().is_some() && self.growth_demand(n) > self.pager.free() {
            let (mut lo, mut hi) = (0i64, n);
            while lo < hi {
                let mid = lo + (hi - lo + 1) / 2;
                if self.growth_demand(mid) <= self.pager.free() {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            n = lo;
            if n == 0 {
                debug_assert!(self.eviction, "reserve mode never runs short of blocks");
                self.evict_youngest();
                return Ok(false);
            }
        }

        let total = affine_series_units(c, r, 0, n).ok_or_else(|| {
            LoadError::GridRange(format!("decode run of {n} steps leaves the exact grid"))
        })?;
        let growth = self.growth_demand(n);
        assert!(self.pager.try_alloc(growth), "bounded by the binary search");
        let start = self.now;
        self.advance(total)?;
        let participants: Vec<StepSeq> = self
            .inflight
            .iter()
            .map(|f| StepSeq {
                request: f.id,
                kv_start: f.kv,
            })
            .collect();
        for f in &mut self.inflight {
            if self.eviction {
                f.blocks = f.blocks.max(self.pager.blocks_for((f.kv + n) as u64));
            }
            f.kv += n;
            f.remaining -= n;
        }
        self.trace.runs.push(StepRun {
            start,
            end: self.now,
            steps: n,
            participants,
            kv_total_start: kv_total,
            blocks_held: self.pager.used(),
        });
        self.counters.decode_runs += 1;
        self.counters.decode_steps += n as u64;
        self.counters.max_run = self.counters.max_run.max(n as u64);
        Ok(true)
    }

    /// Completes every flight that ran out of decode steps, in admission
    /// order.
    fn complete_finished(&mut self) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].remaining > 0 {
                i += 1;
                continue;
            }
            let f = self.inflight.remove(i);
            self.pager.release(f.blocks);
            let span = &mut self.trace.residency[f.span];
            span.end = Some(self.now);
            span.blocks = f.blocks;
            let rec = &mut self.trace.records[f.id as usize];
            rec.completion = Some(self.now);
            if let Some(h) = self.hook.as_deref_mut() {
                h(&self.trace.records[f.id as usize]);
            }
        }
    }
}

/// Executes a load spec against a priced deployment.
///
/// `costs` carries the slot count it was priced for; `spec` supplies the
/// arrival process, queue, paging, and horizon knobs; `serve` and
/// `model` resolve Poisson request shapes. `on_complete` (if given) is
/// invoked once per completed request, in completion order.
///
/// # Errors
///
/// [`LoadError::Spec`] for invalid specs, [`LoadError::GridRange`] when
/// the run leaves the exact integer grid, [`LoadError::Plan`] never
/// (pricing already happened).
pub fn simulate_load(
    spec: &LoadSpec,
    serve: &ServeConfig,
    model: &ModelArch,
    costs: &StepCostModel,
    mode: SimMode,
    on_complete: Option<&mut dyn FnMut(&RequestRecord)>,
) -> Result<LoadOutcome, LoadError> {
    simulate_load_faulty(
        spec,
        serve,
        model,
        costs,
        mode,
        &[],
        &RetryPolicy::default(),
        on_complete,
    )
}

/// Executes a load spec against a priced deployment under a fault-event
/// stream (see `madmax_fault::materialize_faults`).
///
/// When a **fatal** or **maintenance** window opens, the youngest
/// in-flight requests on the lost slots are interrupted: each
/// interruption consumes one retry of `retry` (re-queued at the front,
/// eligible after the backoff) or fails the request outright once the
/// budget or timeout is exhausted. Capacity stays degraded and
/// **transient** windows scale step costs until the window closes. With
/// an empty `faults` slice the run is byte-identical to
/// [`simulate_load`] (pinned by `tests/engine_equivalence.rs`).
///
/// # Errors
///
/// As [`simulate_load`], plus [`LoadError::Spec`] for an invalid retry
/// policy or an unsorted fault stream.
#[allow(clippy::too_many_arguments)]
pub fn simulate_load_faulty(
    spec: &LoadSpec,
    serve: &ServeConfig,
    model: &ModelArch,
    costs: &StepCostModel,
    mode: SimMode,
    faults: &[FaultEvent],
    retry: &RetryPolicy,
    on_complete: Option<&mut dyn FnMut(&RequestRecord)>,
) -> Result<LoadOutcome, LoadError> {
    spec.validate().map_err(LoadError::Spec)?;
    retry.validate().map_err(LoadError::Spec)?;
    if faults.windows(2).any(|w| w[0].at > w[1].at) {
        return Err(LoadError::Spec(
            "fault events must be sorted by start time".to_owned(),
        ));
    }
    if faults.iter().any(|f| f.at < 0 || f.until < f.at) {
        return Err(LoadError::Spec(
            "fault windows must have 0 <= at <= until".to_owned(),
        ));
    }
    let backoff_units = grid_units_round(Seconds::new(retry.backoff)).ok_or_else(|| {
        LoadError::GridRange(format!("retry backoff {} s off-grid", retry.backoff))
    })?;
    let timeout_units = match retry.timeout {
        Some(t) => Some(
            grid_units_round(Seconds::new(t))
                .ok_or_else(|| LoadError::GridRange(format!("retry timeout {t} s off-grid")))?,
        ),
        None => None,
    };
    let arrivals = materialize_arrivals(&spec.arrivals, serve, model)?;
    let horizon =
        match spec.horizon {
            Some(h) => Some(grid_units_round(Seconds::new(h)).ok_or_else(|| {
                LoadError::GridRange(format!("horizon {h} s beyond the exact grid"))
            })?),
            None => None,
        };
    let records = arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| RequestRecord {
            id: i as u32,
            arrival: a.at,
            prompt_len: a.prompt_len,
            decode_len: a.decode_len as u64,
            admitted: None,
            first_token: None,
            completion: None,
            rejected: None,
            evictions: 0,
            retries: 0,
            failed: None,
        })
        .collect();
    let pager = KvPager::new(spec.block_tokens, spec.kv_blocks);
    let mut sim = Sim {
        costs,
        hook: on_complete,
        mode,
        eviction: spec.eviction && spec.kv_blocks.is_some(),
        queue_capacity: spec.queue_capacity,
        horizon,
        arrivals: &arrivals,
        next_arrival: 0,
        faults,
        next_fault: 0,
        active: Vec::new(),
        retry: *retry,
        backoff_units,
        timeout_units,
        now: 0,
        queue: VecDeque::new(),
        inflight: Vec::new(),
        pager,
        trace: LoadTrace {
            records,
            prefills: Vec::new(),
            runs: Vec::new(),
            residency: Vec::new(),
            queue_depth: Vec::new(),
            queue_depth_truncated: false,
            block_tokens: spec.block_tokens,
            total_blocks: spec.kv_blocks,
            peak_blocks: 0,
            end: 0,
            faults: Vec::new(),
            retry_limit: if faults.is_empty() {
                None
            } else {
                Some(retry.max_retries)
            },
            slots: costs.slots,
        },
        counters: SimCounters::default(),
    };

    loop {
        if sim.horizon.is_some_and(|h| sim.now >= h) {
            break;
        }
        sim.apply_faults();
        sim.ingest();
        if sim.can_admit() {
            sim.admit()?;
            continue;
        }
        if !sim.inflight.is_empty() {
            if sim.decode_run()? {
                sim.complete_finished();
            }
            continue;
        }
        if !sim.queue.is_empty() {
            // With faults in play an idle engine can hold an
            // unadmittable queue: the head is backing off, or open fault
            // windows drained the capacity. Jump to the next time
            // anything can change.
            let wakes = [
                sim.arrivals.get(sim.next_arrival).map(|a| a.at),
                sim.faults.get(sim.next_fault).map(|f| f.at),
                sim.active.iter().map(|f| f.until).min(),
                sim.queue
                    .front()
                    .map(|h| h.eligible_at)
                    .filter(|&t| t > sim.now),
            ];
            if let Some(t) = wakes.into_iter().flatten().min().filter(|&t| t > sim.now) {
                sim.now = t;
                continue;
            }
            // Unreachable by construction (a fault-free empty engine can
            // always admit a feasible head); kept as a defensive
            // livelock breaker.
            debug_assert!(false, "queue head unadmittable with an idle engine");
            let head = sim.queue.pop_front().expect("checked non-empty");
            sim.trace.records[head.id as usize].rejected = Some(RejectReason::Infeasible);
            sim.note_queue_depth();
            continue;
        }
        // Fully idle: jump to the next arrival (or the next fault event,
        // if it comes first, so its window is applied at its true start).
        match (
            sim.arrivals.get(sim.next_arrival),
            sim.faults.get(sim.next_fault),
        ) {
            (Some(a), Some(f)) => sim.now = a.at.min(f.at),
            (Some(a), None) => sim.now = a.at,
            // Remaining fault events with no work left cannot affect any
            // request; stop.
            (None, _) => break,
        }
    }

    sim.trace.end = sim.now;
    sim.trace.peak_blocks = sim.pager.peak();
    // Close nothing: in-flight residency spans stay open (end = None)
    // but report their current block counts.
    for f in &sim.inflight {
        sim.trace.residency[f.span].blocks = f.blocks;
    }
    let report = LoadReport::from_trace(&sim.trace);
    Ok(LoadOutcome {
        report,
        trace: sim.trace,
        counters: sim.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built cost model: prefill = 100 + ctx units, step =
    /// 10 + 2*B + K units, 4 slots.
    fn toy_costs() -> StepCostModel {
        StepCostModel {
            prefill_base: 100,
            prefill_slope: 1,
            step_base: 10,
            step_seq: 2,
            step_rate: 1,
            slots: 4,
        }
    }

    fn toy_model() -> madmax_model::ModelArch {
        madmax_model::ModelId::Llama2.build()
    }

    fn trace_spec(n: usize, gap: f64) -> LoadSpec {
        LoadSpec::trace(
            (0..n)
                .map(|i| madmax_parallel::RequestSpec {
                    arrival: i as f64 * gap,
                    prompt_len: 16,
                    decode_len: 8,
                })
                .collect(),
        )
    }

    fn run(spec: &LoadSpec, mode: SimMode) -> LoadOutcome {
        let serve = ServeConfig::new(16, 8);
        simulate_load(spec, &serve, &toy_model(), &toy_costs(), mode, None).unwrap()
    }

    #[test]
    fn modes_agree_and_all_requests_complete() {
        let spec = trace_spec(6, 1e-6);
        let ev = run(&spec, SimMode::Event);
        let tok = run(&spec, SimMode::PerToken);
        assert_eq!(ev.report, tok.report);
        assert_eq!(ev.trace.records, tok.trace.records);
        assert_eq!(ev.report.completed, 6);
        assert_eq!(ev.report.rejected, 0);
        assert!(ev.counters.decode_runs <= tok.counters.decode_runs);
        assert_eq!(ev.counters.decode_steps, tok.counters.decode_steps);
    }

    #[test]
    fn ttft_covers_queue_wait_and_prefill() {
        let spec = trace_spec(4, 0.0);
        let out = run(&spec, SimMode::Event);
        for r in &out.report.requests {
            let ttft = r.ttft.unwrap();
            // Prefill of a 16-token context in the toy model.
            let prefill = madmax_core::steady::grid_seconds(116);
            assert!(ttft >= prefill, "{ttft:?} < {prefill:?}");
        }
        // Simultaneous arrivals: later admissions wait behind earlier
        // prefills, so TTFTs strictly increase.
        let ttfts: Vec<_> = out
            .report
            .requests
            .iter()
            .map(|r| r.ttft.unwrap())
            .collect();
        assert!(ttfts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn queue_capacity_rejects_overflow() {
        let mut spec = trace_spec(8, 0.0);
        spec.queue_capacity = Some(2);
        let out = run(&spec, SimMode::Event);
        assert!(out.report.rejected > 0);
        assert_eq!(
            out.report.completed + out.report.rejected,
            out.report.arrivals
        );
        let again = run(&spec, SimMode::PerToken);
        assert_eq!(out.report, again.report);
    }

    #[test]
    fn horizon_conserves_requests() {
        // 16 simultaneous arrivals, a horizon that lands mid-run (a few
        // hundred grid units covers 2-3 toy prefills).
        let mut spec = trace_spec(16, 0.0);
        spec.horizon = Some(1e-9);
        let out = run(&spec, SimMode::Event);
        let r = &out.report;
        assert!(r.completed < 16, "horizon cuts the run short");
        assert_eq!(
            r.completed + r.rejected + r.queued_at_end + r.in_flight_at_end,
            // Only requests that arrived before the horizon count.
            out.trace
                .records
                .iter()
                .filter(|rec| {
                    rec.rejected.is_some() || rec.admitted.is_some() || rec.arrival <= out.trace.end
                })
                .count()
        );
        assert_eq!(run(&spec, SimMode::PerToken).report, out.report);
    }

    #[test]
    fn paged_budget_backpressures_admissions() {
        // 8-token blocks, budget of 6 blocks; each request needs
        // ceil((16+8)/8) = 3 -> at most two in flight despite 4 slots.
        let mut spec = trace_spec(6, 0.0);
        spec.kv_blocks = Some(6);
        spec.block_tokens = 8;
        let out = run(&spec, SimMode::Event);
        assert_eq!(out.report.completed, 6);
        assert!(out.report.peak_kv_blocks <= 6);
        for run in &out.trace.runs {
            assert!(run.participants.len() <= 2);
        }
        assert_eq!(run(&spec, SimMode::PerToken).report, out.report);
    }

    #[test]
    fn infeasible_requests_are_rejected_not_hung() {
        let mut spec = trace_spec(3, 0.0);
        // A single block of 8 tokens can never hold 16 + 8.
        spec.kv_blocks = Some(1);
        spec.block_tokens = 8;
        let out = run(&spec, SimMode::Event);
        assert_eq!(out.report.rejected, 3);
        assert_eq!(out.report.completed, 0);
    }

    #[test]
    fn eviction_makes_progress_under_pressure() {
        // Budget fits one worst-case request (3 blocks) plus change:
        // optimistic admission over-commits, eviction resolves it.
        let mut spec = trace_spec(4, 0.0);
        spec.kv_blocks = Some(4);
        spec.block_tokens = 8;
        spec.eviction = true;
        let out = run(&spec, SimMode::Event);
        assert_eq!(out.report.completed, 4, "{:?}", out.report);
        let tok = run(&spec, SimMode::PerToken);
        assert_eq!(out.report, tok.report);
        assert_eq!(out.trace.records, tok.trace.records);
        // Evicted requests re-prefill over prompt + generated tokens.
        if out.report.evictions > 0 {
            assert!(out.trace.prefills.iter().any(|p| p.resumed));
        }
    }

    #[test]
    fn idle_gaps_jump_to_the_next_arrival() {
        let spec = trace_spec(3, 1.0);
        let out = run(&spec, SimMode::Event);
        assert_eq!(out.report.completed, 3);
        // Makespan covers the last arrival plus its service.
        assert!(out.report.makespan.as_secs() > 2.0);
        assert_eq!(run(&spec, SimMode::PerToken).report, out.report);
    }

    fn run_faulty(
        spec: &LoadSpec,
        mode: SimMode,
        faults: &[FaultEvent],
        retry: &RetryPolicy,
    ) -> LoadOutcome {
        let serve = ServeConfig::new(16, 8);
        simulate_load_faulty(
            spec,
            &serve,
            &toy_model(),
            &toy_costs(),
            mode,
            faults,
            retry,
            None,
        )
        .unwrap()
    }

    /// One fatal window at `at` grid units lasting `len` units.
    fn fatal_at(at: i64, len: i64, slots_lost: usize) -> FaultEvent {
        FaultEvent {
            at,
            until: at + len,
            kind: FaultKind::Fatal,
            slots_lost,
            slowdown_pct: 100,
        }
    }

    #[test]
    fn empty_fault_stream_is_byte_identical_to_the_plain_path() {
        let spec = trace_spec(6, 1e-6);
        let plain = run(&spec, SimMode::Event);
        let faulty = run_faulty(&spec, SimMode::Event, &[], &RetryPolicy::default());
        assert_eq!(plain.report, faulty.report);
        assert_eq!(plain.trace, faulty.trace);
    }

    #[test]
    fn fatal_windows_interrupt_and_retry_in_both_modes() {
        // Simultaneous arrivals: admissions end ~464, decode runs past
        // ~1100, so both windows land mid-decode.
        let spec = trace_spec(6, 0.0);
        let faults = [fatal_at(600, 50, 1), fatal_at(900, 50, 1)];
        let retry = RetryPolicy::retries(3);
        let ev = run_faulty(&spec, SimMode::Event, &faults, &retry);
        let tok = run_faulty(&spec, SimMode::PerToken, &faults, &retry);
        assert_eq!(ev.report, tok.report, "modes agree under faults");
        assert_eq!(ev.trace.records, tok.trace.records);
        assert_eq!(ev.trace.faults, tok.trace.faults);
        assert!(ev.report.retries > 0, "{:?}", ev.report);
        assert_eq!(ev.report.completed, 6, "retries recover all work");
        assert!(ev.report.availability < 1.0);
        // Interrupted requests re-prefill their grown context.
        assert!(ev.trace.prefills.iter().any(|p| p.resumed));
    }

    #[test]
    fn exhausted_retry_budget_fails_requests() {
        let spec = trace_spec(4, 0.0);
        // A zero-retry policy: the first interruption kills the request.
        let faults = [fatal_at(600, 10, 4)];
        let retry = RetryPolicy::retries(0);
        let out = run_faulty(&spec, SimMode::Event, &faults, &retry);
        assert!(out.report.failed > 0, "{:?}", out.report);
        assert_eq!(out.report.retries, 0);
        assert_eq!(
            out.report.completed + out.report.failed + out.report.rejected,
            out.report.arrivals
        );
        assert_eq!(
            run_faulty(&spec, SimMode::PerToken, &faults, &retry).report,
            out.report
        );
    }

    #[test]
    fn capacity_stays_degraded_until_recovery() {
        let spec = trace_spec(8, 0.0);
        // Lose 3 of 4 slots for a long window starting before any work.
        let faults = [FaultEvent {
            at: 0,
            until: 1 << 24,
            kind: FaultKind::Maintenance,
            slots_lost: 3,
            slowdown_pct: 100,
        }];
        let retry = RetryPolicy::default();
        let out = run_faulty(&spec, SimMode::Event, &faults, &retry);
        for r in out
            .trace
            .runs
            .iter()
            .filter(|r| r.end <= out.trace.faults[0].end)
        {
            assert!(r.participants.len() <= 1, "degraded to one slot");
        }
        assert_eq!(out.report.completed, 8);
        assert_eq!(
            run_faulty(&spec, SimMode::PerToken, &faults, &retry).report,
            out.report
        );
    }

    #[test]
    fn transient_windows_slow_the_clock() {
        let spec = trace_spec(4, 0.0);
        let slow = [FaultEvent {
            at: 0,
            until: 1 << 30,
            kind: FaultKind::Transient,
            slots_lost: 0,
            slowdown_pct: 200,
        }];
        let retry = RetryPolicy::default();
        let normal = run(&spec, SimMode::Event);
        let slowed = run_faulty(&spec, SimMode::Event, &slow, &retry);
        assert_eq!(slowed.report.completed, 4);
        assert_eq!(slowed.report.retries, 0, "transients interrupt nothing");
        assert!(
            slowed.report.makespan.as_secs() > 1.5 * normal.report.makespan.as_secs(),
            "{:?} vs {:?}",
            slowed.report.makespan,
            normal.report.makespan
        );
        assert_eq!(
            run_faulty(&spec, SimMode::PerToken, &slow, &retry).report,
            slowed.report
        );
    }

    #[test]
    fn backoff_delays_readmission() {
        let spec = trace_spec(2, 1e-6);
        let faults = [fatal_at(300, 10, 2)];
        let eager = run_faulty(&spec, SimMode::Event, &faults, &RetryPolicy::retries(3));
        let lazy = run_faulty(
            &spec,
            SimMode::Event,
            &faults,
            &RetryPolicy::retries(3).with_backoff(1.0),
        );
        assert!(
            lazy.report.makespan.as_secs() >= eager.report.makespan.as_secs() + 0.9,
            "{:?} vs {:?}",
            lazy.report.makespan,
            eager.report.makespan
        );
        assert_eq!(
            run_faulty(
                &spec,
                SimMode::PerToken,
                &faults,
                &RetryPolicy::retries(3).with_backoff(1.0),
            )
            .report,
            lazy.report
        );
    }
}
