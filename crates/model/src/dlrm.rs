//! Builders for the paper's production-scale recommendation models:
//! DLRM-A, DLRM-B, and their Transformer / MoE feature-interaction variants
//! (Table II, Section II-A).
//!
//! The architectures below are synthesized to match the published
//! model-level characteristics (parameter count and split, forward FLOPs
//! per sample, sparse lookup bytes per sample, global batch size); exact
//! production layer dimensions are Meta-internal. Tests in this module and
//! `table2` assert the match.

use madmax_hw::DType;

use crate::arch::{BatchUnit, LayerClass, LayerGroup, ModelArch};
use crate::layer::{
    EmbeddingBagSpec, FfnKind, InteractionSpec, LayerKind, MlpSpec, MoeSpec, SeqSource,
    TransformerBlockSpec,
};

/// Flavor of the feature-interaction stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlrmVariant {
    /// Concatenation/dot-product interaction (canonical DLRM).
    Base,
    /// Transformer-encoder feature interaction (4 layers, seq 80).
    Transformer,
    /// Mixture-of-experts top MLPs (16 experts, 2 active).
    Moe,
}

impl std::fmt::Display for DlrmVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DlrmVariant::Base => "",
            DlrmVariant::Transformer => " Transformer",
            DlrmVariant::Moe => " MoE",
        };
        f.write_str(s)
    }
}

/// Down-sampled sequence length of the transformer interaction variants.
pub const DLRM_TRANSFORMER_SEQ: usize = 80;
/// Experts per MoE layer (2 active) for all MoE variants.
pub const DLRM_MOE_EXPERTS: usize = 16;
/// Active experts per sample.
pub const DLRM_MOE_ACTIVE: usize = 2;

fn interaction_transformer() -> LayerKind {
    LayerKind::TransformerBlock(TransformerBlockSpec {
        hidden: 512,
        heads: 8,
        kv_dim: 512,
        ffn_hidden: 1920,
        ffn: FfnKind::Gelu,
        seq: SeqSource::Fixed(DLRM_TRANSFORMER_SEQ),
    })
}

/// DLRM-A: the 793-billion-parameter production recommendation model of
/// [Mudigere et al., ISCA'22]; 638 MFLOPs and 22.61 MB of sparse lookups
/// per sample, 64K global batch.
pub fn dlrm_a(variant: DlrmVariant) -> ModelArch {
    // 99.96% of parameters are embeddings.
    let (tables, rows, lookups) = match variant {
        // 700 x 8.85M x 128 = 793B params; 700 * 63.1 * 128 * 4B = 22.61 MB.
        DlrmVariant::Base | DlrmVariant::Moe => (700, 8.85e6, 63.1),
        // The transformer variant models sequence relationships instead of
        // wide pooling: fewer tables/lookups (13.19 MB) but more rows.
        DlrmVariant::Transformer => (409, 15.18e6, 63.1),
    };
    let emb = LayerGroup::single(
        "embedding_tables",
        LayerClass::Embedding,
        LayerKind::EmbeddingBag(EmbeddingBagSpec {
            num_tables: tables,
            rows_per_table: rows,
            dim: 128,
            avg_lookups_per_table: lookups,
            dtype: DType::Fp32,
        }),
    );
    let bottom = LayerGroup::single(
        "bottom_mlp",
        LayerClass::Dense,
        LayerKind::Mlp(MlpSpec::new([2048, 4096, 4096, 256])),
    );
    let interaction = LayerGroup::single(
        "feature_interaction",
        LayerClass::Dense,
        LayerKind::Interaction(InteractionSpec {
            num_features: 128,
            dim: 256,
        }),
    );
    let top_dims = [8384, 8192, 8192, 8192, 8192, 2048, 512, 1];

    let mut groups = vec![emb, bottom, interaction];
    match variant {
        DlrmVariant::Base => {
            groups.push(LayerGroup::single(
                "top_mlp",
                LayerClass::Dense,
                LayerKind::Mlp(MlpSpec::new(top_dims)),
            ));
        }
        DlrmVariant::Transformer => {
            groups.push(LayerGroup::repeated(
                "interaction_transformer",
                LayerClass::Transformer,
                interaction_transformer(),
                4,
            ));
            groups.push(LayerGroup::single(
                "top_mlp",
                LayerClass::Dense,
                LayerKind::Mlp(MlpSpec::new(top_dims)),
            ));
        }
        DlrmVariant::Moe => {
            groups.push(LayerGroup::single(
                "moe_top_mlps",
                LayerClass::Moe,
                LayerKind::Moe(MoeSpec::new(
                    DLRM_MOE_EXPERTS,
                    DLRM_MOE_ACTIVE,
                    MlpSpec::new([8384, 8192, 8192, 8192, 2048, 512, 1]),
                )),
            ));
        }
    }
    ModelArch {
        name: format!("DLRM-A{variant}"),
        groups,
        context_length: 1,
        batch_unit: BatchUnit::Samples,
        global_batch: 64 * 1024,
        compute_dtype: DType::Tf32,
        param_dtype: DType::Fp32,
    }
}

/// DLRM-B: the 332-billion-parameter production model with lighter compute
/// (60 MFLOPs/sample) and a 256K global batch. Table II does not publish
/// DLRM-B's per-sample lookup volume (the 49.2 KB / 32.8 KB entries in that
/// row are the LLM token-embedding lookups: exactly 12288 x 4 B and
/// 8192 x 4 B); the embedding configuration here is calibrated against the
/// published 3.4 MQPS Table I validation point instead (~12 MB/sample,
/// roughly half of DLRM-A's per-sample lookup traffic).
pub fn dlrm_b(variant: DlrmVariant) -> ModelArch {
    let (tables, rows) = match variant {
        // 366 x 7.1M x 128 = 332.6B params; 366 * 64 * 128 * 4B = 12.0 MB.
        DlrmVariant::Base | DlrmVariant::Moe => (366, 7.1e6),
        // 214 x 12.16M x 128 = 333.1B params; ~7.0 MB lookups.
        DlrmVariant::Transformer => (214, 12.16e6),
    };
    let emb = LayerGroup::single(
        "embedding_tables",
        LayerClass::Embedding,
        LayerKind::EmbeddingBag(EmbeddingBagSpec {
            num_tables: tables,
            rows_per_table: rows,
            dim: 128,
            avg_lookups_per_table: 64.0,
            dtype: DType::Fp32,
        }),
    );
    let bottom = LayerGroup::single(
        "bottom_mlp",
        LayerClass::Dense,
        LayerKind::Mlp(MlpSpec::new([512, 1024, 1024, 128])),
    );
    let interaction = LayerGroup::single(
        "feature_interaction",
        LayerClass::Dense,
        LayerKind::Interaction(InteractionSpec {
            num_features: 97,
            dim: 128,
        }),
    );
    let top_dims = [4784, 2432, 2432, 2048, 1024, 512, 1];

    let mut groups = vec![emb, bottom, interaction];
    match variant {
        DlrmVariant::Base => {
            groups.push(LayerGroup::single(
                "top_mlp",
                LayerClass::Dense,
                LayerKind::Mlp(MlpSpec::new(top_dims)),
            ));
        }
        DlrmVariant::Transformer => {
            groups.push(LayerGroup::repeated(
                "interaction_transformer",
                LayerClass::Transformer,
                LayerKind::TransformerBlock(TransformerBlockSpec {
                    hidden: 512,
                    heads: 8,
                    kv_dim: 512,
                    ffn_hidden: 2048,
                    ffn: FfnKind::Gelu,
                    seq: SeqSource::Fixed(DLRM_TRANSFORMER_SEQ),
                }),
                4,
            ));
            groups.push(LayerGroup::single(
                "top_mlp",
                LayerClass::Dense,
                LayerKind::Mlp(MlpSpec::new(top_dims)),
            ));
        }
        DlrmVariant::Moe => {
            groups.push(LayerGroup::single(
                "moe_top_mlps",
                LayerClass::Moe,
                LayerKind::Moe(MoeSpec::new(
                    DLRM_MOE_EXPERTS,
                    DLRM_MOE_ACTIVE,
                    MlpSpec::new([4784, 2048, 2048, 2048, 1024, 512, 1]),
                )),
            ));
        }
    }
    ModelArch {
        name: format!("DLRM-B{variant}"),
        groups,
        context_length: 1,
        batch_unit: BatchUnit::Samples,
        global_batch: 256 * 1024,
        compute_dtype: DType::Tf32,
        param_dtype: DType::Fp32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_err(got: f64, want: f64) -> f64 {
        ((got - want) / want).abs() * 100.0
    }

    #[test]
    fn dlrm_a_matches_table_ii() {
        let s = dlrm_a(DlrmVariant::Base).stats();
        assert!(
            pct_err(s.params_total, 793e9) < 1.0,
            "params {}",
            s.params_total
        );
        assert!(
            pct_err(s.flops_fwd_per_sample.value(), 638e6) < 3.0,
            "flops {}",
            s.flops_fwd_per_sample
        );
        assert!(pct_err(s.lookup_bytes_per_sample.value(), 22.61e6) < 1.0);
        assert_eq!(s.global_batch, 65536);
        // Insight 1: embeddings are 99.96% of DLRM-A parameters.
        assert!(s.embedding_param_fraction() > 0.999);
    }

    #[test]
    fn dlrm_a_transformer_matches_table_ii() {
        let s = dlrm_a(DlrmVariant::Transformer).stats();
        assert!(
            pct_err(s.params_total, 795e9) < 1.0,
            "params {}",
            s.params_total
        );
        assert!(
            pct_err(s.flops_fwd_per_sample.value(), 2.6e9) < 4.0,
            "flops {}",
            s.flops_fwd_per_sample
        );
        assert!(pct_err(s.lookup_bytes_per_sample.value(), 13.19e6) < 1.0);
    }

    #[test]
    fn dlrm_a_moe_matches_table_ii() {
        let s = dlrm_a(DlrmVariant::Moe).stats();
        assert!(
            pct_err(s.flops_fwd_per_sample.value(), 957e6) < 3.0,
            "flops {}",
            s.flops_fwd_per_sample
        );
        // MoE capacity grows faster than compute: params exceed base.
        let base = dlrm_a(DlrmVariant::Base).stats();
        assert!(s.params_total > base.params_total);
        assert!(s.flops_fwd_per_sample.value() < 2.0 * base.flops_fwd_per_sample.value() * 4.0);
    }

    #[test]
    fn dlrm_b_matches_table_ii() {
        let s = dlrm_b(DlrmVariant::Base).stats();
        assert!(
            pct_err(s.params_total, 332e9) < 1.0,
            "params {}",
            s.params_total
        );
        assert!(
            pct_err(s.flops_fwd_per_sample.value(), 60e6) < 3.0,
            "flops {}",
            s.flops_fwd_per_sample
        );
        // Calibrated (not published): ~12 MB of pooled lookups per sample.
        assert!(pct_err(s.lookup_bytes_per_sample.value(), 12.0e6) < 2.0);
        assert_eq!(s.global_batch, 262144);
    }

    #[test]
    fn dlrm_b_transformer_matches_table_ii() {
        let s = dlrm_b(DlrmVariant::Transformer).stats();
        assert!(pct_err(s.params_total, 333e9) < 1.0);
        assert!(
            pct_err(s.flops_fwd_per_sample.value(), 2.1e9) < 3.0,
            "flops {}",
            s.flops_fwd_per_sample
        );
        assert!(pct_err(s.lookup_bytes_per_sample.value(), 7.0e6) < 2.0);
    }

    #[test]
    fn dlrm_b_moe_matches_table_ii() {
        let s = dlrm_b(DlrmVariant::Moe).stats();
        assert!(
            pct_err(s.flops_fwd_per_sample.value(), 90e6) < 3.5,
            "flops {}",
            s.flops_fwd_per_sample
        );
    }

    #[test]
    fn variants_share_embedding_dominance() {
        for v in [
            DlrmVariant::Base,
            DlrmVariant::Transformer,
            DlrmVariant::Moe,
        ] {
            let s = dlrm_a(v).stats();
            assert!(s.embedding_param_fraction() > 0.99, "{v:?}");
        }
    }
}
