//! Whole-model architecture descriptions and derived statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use madmax_hw::units::{ByteCount, FlopCount};
use madmax_hw::DType;

use crate::layer::LayerKind;

/// Parallelization-relevant layer classes. The paper applies *one*
/// parallelization strategy per layer type (Section II-B), so strategies in
/// a plan are keyed by this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerClass {
    /// Embedding tables / token embeddings.
    Embedding,
    /// Base dense layers (bottom/top MLPs, interaction).
    Dense,
    /// Transformer blocks.
    Transformer,
    /// Mixture-of-experts layers.
    Moe,
}

impl LayerClass {
    /// All classes, in canonical order.
    pub const ALL: [LayerClass; 4] = [
        LayerClass::Embedding,
        LayerClass::Dense,
        LayerClass::Transformer,
        LayerClass::Moe,
    ];
}

impl std::fmt::Display for LayerClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayerClass::Embedding => "embedding",
            LayerClass::Dense => "dense",
            LayerClass::Transformer => "transformer",
            LayerClass::Moe => "moe",
        };
        f.write_str(s)
    }
}

/// A named group of `repeat` identical layers sharing a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerGroup {
    /// Display name, e.g. `"bottom_mlp"` or `"transformer_blocks"`.
    pub name: String,
    /// Parallelization class.
    pub class: LayerClass,
    /// The layer's architecture.
    pub kind: LayerKind,
    /// Number of identical instances executed in sequence.
    pub repeat: usize,
}

impl LayerGroup {
    /// Creates a group of one layer.
    pub fn single(name: impl Into<String>, class: LayerClass, kind: LayerKind) -> Self {
        Self {
            name: name.into(),
            class,
            kind,
            repeat: 1,
        }
    }

    /// Creates a group of `repeat` identical layers.
    ///
    /// # Panics
    ///
    /// Panics if `repeat` is zero.
    pub fn repeated(
        name: impl Into<String>,
        class: LayerClass,
        kind: LayerKind,
        repeat: usize,
    ) -> Self {
        assert!(repeat > 0, "layer group repeat must be positive");
        Self {
            name: name.into(),
            class,
            kind,
            repeat,
        }
    }

    /// Parameters across all instances.
    pub fn params(&self) -> f64 {
        self.kind.params() * self.repeat as f64
    }
}

/// Whether throughput is counted in samples (queries) or tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchUnit {
    /// Recommendation queries (throughput in MQPS).
    Samples,
    /// Language-model tokens (throughput in tokens/s); a "sample" is one
    /// sequence of `context_length` tokens.
    Tokens,
}

/// A complete model architecture plus its task-level defaults (Table II
/// row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArch {
    /// Model name, e.g. `"DLRM-A"` or `"GPT-3 175B"`.
    pub name: String,
    /// Ordered layer groups (forward execution order).
    pub groups: Vec<LayerGroup>,
    /// Tokens per sample for token-based models (1 for DLRMs).
    pub context_length: usize,
    /// Throughput accounting unit.
    pub batch_unit: BatchUnit,
    /// Global batch size in samples (sequences for LLMs), as fixed by the
    /// paper's accuracy-preserving recipes (Table II).
    pub global_batch: usize,
    /// Precision used for matrix compute.
    pub compute_dtype: DType,
    /// Precision of stored dense parameters (and their gradients).
    pub param_dtype: DType,
}

impl ModelArch {
    /// Iterates over groups of a given class.
    pub fn groups_of(&self, class: LayerClass) -> impl Iterator<Item = &LayerGroup> {
        self.groups.iter().filter(move |g| g.class == class)
    }

    /// Returns a copy with a different context length (architecture
    /// constant), the knob of the paper's Fig. 15 study.
    #[must_use]
    pub fn with_context_length(&self, context_length: usize) -> Self {
        let mut m = self.clone();
        m.context_length = context_length;
        // Keep the global token budget constant when scaling context so the
        // comparison holds work fixed (4M-token batches in the paper).
        if self.batch_unit == BatchUnit::Tokens && self.context_length > 0 {
            let tokens = self.global_batch * self.context_length;
            m.global_batch = (tokens / context_length).max(1);
        }
        m.name = format!("{} (ctx {context_length})", self.name);
        m
    }

    /// Tokens processed per iteration (== samples for sample-based models).
    pub fn tokens_per_iteration(&self) -> f64 {
        match self.batch_unit {
            BatchUnit::Samples => self.global_batch as f64,
            BatchUnit::Tokens => (self.global_batch * self.context_length) as f64,
        }
    }

    /// Computes the model's aggregate statistics.
    pub fn stats(&self) -> ModelStats {
        let mut params_by_class: BTreeMap<LayerClass, f64> = BTreeMap::new();
        let mut flops = 0.0;
        let mut lookup = 0.0;
        for g in &self.groups {
            *params_by_class.entry(g.class).or_insert(0.0) += g.params();
            flops += g.kind.flops_fwd_per_sample(self.context_length).value() * g.repeat as f64;
            lookup += g.kind.lookup_bytes_per_sample(self.context_length).value() * g.repeat as f64;
        }
        ModelStats {
            params_total: params_by_class.values().sum(),
            params_by_class,
            flops_fwd_per_sample: FlopCount::new(flops),
            lookup_bytes_per_sample: ByteCount::new(lookup),
            context_length: self.context_length,
            batch_unit: self.batch_unit,
            global_batch: self.global_batch,
        }
    }
}

/// Aggregate per-model statistics: the quantities of the paper's Table II
/// and Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Total parameters.
    pub params_total: f64,
    /// Parameters per layer class.
    pub params_by_class: BTreeMap<LayerClass, f64>,
    /// Forward FLOPs per sample (per sequence for LLMs).
    pub flops_fwd_per_sample: FlopCount,
    /// Sparse lookup bytes per sample (per sequence for LLMs).
    pub lookup_bytes_per_sample: ByteCount,
    /// Tokens per sample.
    pub context_length: usize,
    /// Throughput accounting unit.
    pub batch_unit: BatchUnit,
    /// Global batch size.
    pub global_batch: usize,
}

impl ModelStats {
    /// Forward FLOPs per token (Table II reports LLM compute per token).
    pub fn flops_fwd_per_token(&self) -> FlopCount {
        match self.batch_unit {
            BatchUnit::Samples => self.flops_fwd_per_sample,
            BatchUnit::Tokens => self.flops_fwd_per_sample / self.context_length as f64,
        }
    }

    /// Lookup bytes per token.
    pub fn lookup_bytes_per_token(&self) -> ByteCount {
        match self.batch_unit {
            BatchUnit::Samples => self.lookup_bytes_per_sample,
            BatchUnit::Tokens => self.lookup_bytes_per_sample / self.context_length as f64,
        }
    }

    /// Fraction of parameters living in embeddings (Fig. 3 / Observation 1:
    /// ~100% for DLRMs, <1% for LLMs).
    pub fn embedding_param_fraction(&self) -> f64 {
        let emb = self
            .params_by_class
            .get(&LayerClass::Embedding)
            .copied()
            .unwrap_or(0.0);
        if self.params_total == 0.0 {
            0.0
        } else {
            emb / self.params_total
        }
    }

    /// Parameters outside embeddings ("compute" parameters).
    pub fn dense_params(&self) -> f64 {
        self.params_total
            - self
                .params_by_class
                .get(&LayerClass::Embedding)
                .copied()
                .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{EmbeddingBagSpec, MlpSpec};

    fn tiny_dlrm() -> ModelArch {
        ModelArch {
            name: "tiny".into(),
            groups: vec![
                LayerGroup::single(
                    "emb",
                    LayerClass::Embedding,
                    LayerKind::EmbeddingBag(EmbeddingBagSpec {
                        num_tables: 4,
                        rows_per_table: 1000.0,
                        dim: 8,
                        avg_lookups_per_table: 2.0,
                        dtype: DType::Fp32,
                    }),
                ),
                LayerGroup::single(
                    "mlp",
                    LayerClass::Dense,
                    LayerKind::Mlp(MlpSpec::new([8, 16, 1])),
                ),
            ],
            context_length: 1,
            batch_unit: BatchUnit::Samples,
            global_batch: 1024,
            compute_dtype: DType::Tf32,
            param_dtype: DType::Fp32,
        }
    }

    #[test]
    fn stats_aggregate_classes() {
        let s = tiny_dlrm().stats();
        assert_eq!(s.params_by_class.len(), 2);
        assert!(
            (s.params_total - (4.0 * 1000.0 * 8.0 + (8 * 16 + 16 + 16 + 1) as f64)).abs() < 1e-9
        );
        assert!(s.embedding_param_fraction() > 0.99);
        assert!(s.dense_params() > 0.0);
        assert_eq!(s.lookup_bytes_per_sample.value(), 4.0 * 2.0 * 8.0 * 4.0);
    }

    #[test]
    fn token_vs_sample_units() {
        let mut m = tiny_dlrm();
        m.batch_unit = BatchUnit::Tokens;
        m.context_length = 128;
        let s = m.stats();
        assert_eq!(
            s.flops_fwd_per_token().value() * 128.0,
            s.flops_fwd_per_sample.value()
        );
        assert_eq!(m.tokens_per_iteration(), 1024.0 * 128.0);
    }

    #[test]
    fn context_scaling_keeps_token_budget() {
        let mut m = tiny_dlrm();
        m.batch_unit = BatchUnit::Tokens;
        m.context_length = 2048;
        m.global_batch = 2048; // 4M tokens
        let doubled = m.with_context_length(4096);
        assert_eq!(doubled.context_length, 4096);
        assert_eq!(doubled.global_batch, 1024);
        assert_eq!(doubled.tokens_per_iteration(), m.tokens_per_iteration());
    }

    #[test]
    fn groups_of_filters_class() {
        let m = tiny_dlrm();
        assert_eq!(m.groups_of(LayerClass::Embedding).count(), 1);
        assert_eq!(m.groups_of(LayerClass::Transformer).count(), 0);
    }

    #[test]
    #[should_panic(expected = "repeat must be positive")]
    fn zero_repeat_rejected() {
        let _ = LayerGroup::repeated(
            "x",
            LayerClass::Dense,
            LayerKind::Mlp(MlpSpec::new([2, 2])),
            0,
        );
    }
}
