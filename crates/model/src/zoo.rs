//! The paper's model suite (Table II) as a single enumerable zoo.

use crate::arch::ModelArch;
use crate::dlrm::{dlrm_a, dlrm_b, DlrmVariant};
use crate::llm::{gpt3_175b, llama2_70b, llama_65b, llm_moe_1_8t};

/// Identifier for each of Table II's ten workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// DLRM-A (793B params).
    DlrmA,
    /// DLRM-A with transformer feature interaction.
    DlrmATransformer,
    /// DLRM-A with MoE top MLPs.
    DlrmAMoe,
    /// DLRM-B (332B params).
    DlrmB,
    /// DLRM-B with transformer feature interaction.
    DlrmBTransformer,
    /// DLRM-B with MoE top MLPs.
    DlrmBMoe,
    /// GPT-3 175B.
    Gpt3,
    /// LLaMA-65B.
    Llama,
    /// LLaMA-2 70B.
    Llama2,
    /// Hypothetical 1.8T LLM-MoE.
    LlmMoe,
}

impl ModelId {
    /// Table II column order.
    pub const ALL: [ModelId; 10] = [
        ModelId::DlrmA,
        ModelId::DlrmATransformer,
        ModelId::DlrmAMoe,
        ModelId::DlrmB,
        ModelId::DlrmBTransformer,
        ModelId::DlrmBMoe,
        ModelId::Gpt3,
        ModelId::Llama,
        ModelId::Llama2,
        ModelId::LlmMoe,
    ];

    /// Builds the architecture for this workload.
    pub fn build(self) -> ModelArch {
        match self {
            ModelId::DlrmA => dlrm_a(DlrmVariant::Base),
            ModelId::DlrmATransformer => dlrm_a(DlrmVariant::Transformer),
            ModelId::DlrmAMoe => dlrm_a(DlrmVariant::Moe),
            ModelId::DlrmB => dlrm_b(DlrmVariant::Base),
            ModelId::DlrmBTransformer => dlrm_b(DlrmVariant::Transformer),
            ModelId::DlrmBMoe => dlrm_b(DlrmVariant::Moe),
            ModelId::Gpt3 => gpt3_175b(),
            ModelId::Llama => llama_65b(),
            ModelId::Llama2 => llama2_70b(),
            ModelId::LlmMoe => llm_moe_1_8t(),
        }
    }

    /// Whether the workload is a recommendation model.
    pub fn is_dlrm(self) -> bool {
        matches!(
            self,
            ModelId::DlrmA
                | ModelId::DlrmATransformer
                | ModelId::DlrmAMoe
                | ModelId::DlrmB
                | ModelId::DlrmBTransformer
                | ModelId::DlrmBMoe
        )
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelId::DlrmA => "DLRM-A",
            ModelId::DlrmATransformer => "DLRM-A Transformer",
            ModelId::DlrmAMoe => "DLRM-A MoE",
            ModelId::DlrmB => "DLRM-B",
            ModelId::DlrmBTransformer => "DLRM-B Transformer",
            ModelId::DlrmBMoe => "DLRM-B MoE",
            ModelId::Gpt3 => "GPT-3",
            ModelId::Llama => "LLaMA",
            ModelId::Llama2 => "LLaMA2",
            ModelId::LlmMoe => "LLM-MoE",
        })
    }
}

/// Builds the full Table II suite in column order.
pub fn full_suite() -> Vec<ModelArch> {
    ModelId::ALL.iter().map(|id| id.build()).collect()
}

/// The six models characterized in Fig. 3 (DLRM-A/B/C stand-ins plus the
/// three public LLMs). DLRM-C is represented by the DLRM-B transformer
/// variant, the closest published configuration.
pub fn characterization_suite() -> Vec<ModelArch> {
    vec![
        dlrm_a(DlrmVariant::Base),
        dlrm_b(DlrmVariant::Base),
        dlrm_b(DlrmVariant::Transformer),
        gpt3_175b(),
        llama_65b(),
        llama2_70b(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_distinct() {
        let suite = full_suite();
        assert_eq!(suite.len(), 10);
        let mut names: Vec<&str> = suite.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "duplicate model names");
    }

    #[test]
    fn dlrm_classification() {
        assert!(ModelId::DlrmA.is_dlrm());
        assert!(ModelId::DlrmBMoe.is_dlrm());
        assert!(!ModelId::Gpt3.is_dlrm());
        assert!(!ModelId::LlmMoe.is_dlrm());
    }

    #[test]
    fn observation_1_param_spread() {
        // O1: parameter counts vary by orders of magnitude; GPT-3 has
        // roughly 2-68x fewer parameters than the recommendation models.
        let gpt3 = ModelId::Gpt3.build().stats().params_total;
        let a = ModelId::DlrmA.build().stats().params_total;
        let b = ModelId::DlrmB.build().stats().params_total;
        assert!(a / gpt3 > 4.0 && a / gpt3 < 5.0);
        assert!(b / gpt3 > 1.8);
    }

    #[test]
    fn observation_2_flops_vs_lookup() {
        // O2: LLMs need orders of magnitude more FLOPs per sample unit;
        // DLRMs need >20x the sparse lookup bandwidth.
        let gpt3 = ModelId::Gpt3.build().stats();
        let dlrm = ModelId::DlrmA.build().stats();
        assert!(gpt3.flops_fwd_per_token().value() > 100.0 * dlrm.flops_fwd_per_sample.value());
        assert!(
            dlrm.lookup_bytes_per_sample.value() > 20.0 * gpt3.lookup_bytes_per_token().value()
        );
    }
}
