//! # madmax-model
//!
//! Model-architecture substrate for MAD-Max: the layer taxonomy with
//! analytical parameter/FLOPs/bytes counting (Section IV-B of the paper)
//! and builders for the full evaluation suite of Table II — DLRM-A/B with
//! Transformer and MoE variants, GPT-3 175B, LLaMA-65B, LLaMA-2 70B, the
//! 1.8T LLM-MoE, and the ViT validation family.
//!
//! # Example
//!
//! ```
//! use madmax_model::zoo::ModelId;
//!
//! let gpt3 = ModelId::Gpt3.build();
//! let stats = gpt3.stats();
//! assert!((stats.params_total / 175e9 - 1.0).abs() < 0.01);
//! assert!((stats.flops_fwd_per_token().as_gflops() / 350.0 - 1.0).abs() < 0.03);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod dlrm;
pub mod layer;
pub mod llm;
pub mod vit;
pub mod zoo;

pub use arch::{BatchUnit, LayerClass, LayerGroup, ModelArch, ModelStats};
pub use dlrm::DlrmVariant;
pub use layer::LayerKind;
pub use zoo::ModelId;

#[cfg(test)]
mod zoo_serde_tests {
    use crate::zoo::ModelId;
    use crate::ModelArch;

    #[test]
    fn every_zoo_model_serde_round_trips() {
        for id in ModelId::ALL {
            let m = id.build();
            let js = serde_json::to_string(&m).unwrap();
            let back: ModelArch = serde_json::from_str(&js).unwrap();
            assert_eq!(m, back, "{id}");
            // Stats are a pure function of the architecture.
            assert_eq!(m.stats(), back.stats(), "{id}");
        }
    }

    #[test]
    fn vit_family_serde_round_trips() {
        for cfg in &crate::vit::VIT_FAMILY {
            let m = crate::vit::vit(cfg, 2048);
            let js = serde_json::to_string(&m).unwrap();
            let back: ModelArch = serde_json::from_str(&js).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn context_scaled_name_is_distinct() {
        let base = ModelId::Llama2.build();
        let scaled = base.with_context_length(8192);
        assert_ne!(base.name, scaled.name);
        assert!(scaled.name.contains("8192"));
    }

    #[test]
    fn checkpointing_reduces_transformer_activations_only() {
        use madmax_hw::DType;
        let m = ModelId::Gpt3.build();
        for g in &m.groups {
            let full = g
                .kind
                .activation_bytes_per_sample(m.context_length, DType::Bf16, false);
            let ckpt = g
                .kind
                .activation_bytes_per_sample(m.context_length, DType::Bf16, true);
            assert!(ckpt <= full, "{}", g.name);
            if matches!(g.kind, crate::layer::LayerKind::TransformerBlock(_)) {
                assert!(full.value() / ckpt.value() >= 4.0, "{}", g.name);
            }
        }
    }

    #[test]
    fn dlrm_transformer_seq_is_fixed_at_80() {
        use crate::layer::LayerKind;
        let m = ModelId::DlrmATransformer.build();
        let block = m
            .groups
            .iter()
            .find_map(|g| match &g.kind {
                LayerKind::TransformerBlock(t) => Some(t),
                _ => None,
            })
            .unwrap();
        // DLRM context is 1, but the interaction transformer runs seq 80.
        assert_eq!(block.seq_len(m.context_length), 80);
    }
}
