//! Layer taxonomy and per-layer analytical resource math.
//!
//! MAD-Max treats ML model layers as discrete blocks characterized by their
//! primary system requirement (Section IV-B): compute blocks are bound by
//! FLOPs, embedding bags by HBM lookup bytes. This module provides the
//! per-layer counting rules for parameters, forward FLOPs, lookup bytes,
//! activation sizes, and the tensor-parallel/All2All communication volumes
//! that the parallelization layer needs.

use serde::{Deserialize, Serialize};

use madmax_hw::units::{ByteCount, FlopCount};
use madmax_hw::DType;

/// A fully-connected stack: `dims = [in, h1, ..., out]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpSpec {
    /// Layer widths, input first. Must contain at least two entries.
    pub dims: Vec<usize>,
}

impl MlpSpec {
    /// Creates an MLP from its layer widths.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-width MLP layer");
        Self { dims }
    }

    /// Weight parameters (biases are counted as one per output unit).
    pub fn params(&self) -> f64 {
        self.dims
            .windows(2)
            .map(|w| (w[0] * w[1] + w[1]) as f64)
            .sum()
    }

    /// Forward FLOPs for one sample: 2 multiply-accumulates per weight.
    pub fn flops_fwd_per_sample(&self) -> f64 {
        self.dims
            .windows(2)
            .map(|w| 2.0 * (w[0] * w[1]) as f64)
            .sum()
    }

    /// Bytes of intermediate activations retained per sample for backward.
    pub fn activation_bytes_per_sample(&self, act_dtype: DType) -> f64 {
        let elems: usize = self.dims[1..].iter().sum();
        elems as f64 * f64::from(act_dtype.size_bytes())
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        *self.dims.last().expect("validated non-empty")
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.dims[0]
    }
}

/// A set of categorical-feature embedding tables accessed with pooled
/// lookups (the dominant component of DLRMs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingBagSpec {
    /// Number of embedding tables.
    pub num_tables: usize,
    /// Rows per table (average).
    pub rows_per_table: f64,
    /// Embedding vector dimension.
    pub dim: usize,
    /// Average pooled lookups per table per sample (may be fractional).
    pub avg_lookups_per_table: f64,
    /// Element precision of the stored embeddings.
    pub dtype: DType,
}

impl EmbeddingBagSpec {
    /// Total embedding parameters.
    pub fn params(&self) -> f64 {
        self.num_tables as f64 * self.rows_per_table * self.dim as f64
    }

    /// Bytes fetched from HBM per sample across all tables — the paper's
    /// "Lookup bytes" quantity.
    pub fn lookup_bytes_per_sample(&self) -> f64 {
        self.num_tables as f64
            * self.avg_lookups_per_table
            * self.dim as f64
            * f64::from(self.dtype.size_bytes())
    }

    /// Bytes of pooled output per sample (one vector per table) — the unit
    /// of the All2All exchange when tables are sharded.
    pub fn pooled_output_bytes_per_sample(&self) -> f64 {
        self.num_tables as f64 * self.dim as f64 * f64::from(self.dtype.size_bytes())
    }
}

/// A token-embedding table (LLM word embeddings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenEmbeddingSpec {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding/hidden dimension.
    pub dim: usize,
    /// Element precision.
    pub dtype: DType,
}

impl TokenEmbeddingSpec {
    /// Total parameters.
    pub fn params(&self) -> f64 {
        self.vocab as f64 * self.dim as f64
    }

    /// Bytes looked up per token.
    pub fn lookup_bytes_per_token(&self) -> f64 {
        self.dim as f64 * f64::from(self.dtype.size_bytes())
    }
}

/// Pairwise-dot-product feature interaction (canonical DLRM).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionSpec {
    /// Number of interacting feature vectors.
    pub num_features: usize,
    /// Dimension of each feature vector.
    pub dim: usize,
}

impl InteractionSpec {
    /// Forward FLOPs per sample (2 per multiply-accumulate over all pairs).
    pub fn flops_fwd_per_sample(&self) -> f64 {
        let f = self.num_features as f64;
        2.0 * f * f * self.dim as f64
    }

    /// Width of the interaction output (upper-triangular pairs plus a dense
    /// passthrough of one feature vector).
    pub fn out_dim(&self) -> usize {
        self.num_features * (self.num_features - 1) / 2 + self.dim
    }
}

/// Feed-forward style inside a transformer block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FfnKind {
    /// Two matrices (up + down), GELU-style: GPT-3, ViT.
    Gelu,
    /// Three matrices (gate + up + down), SwiGLU-style: LLaMA.
    SwiGlu,
}

impl FfnKind {
    fn matrices(self) -> f64 {
        match self {
            FfnKind::Gelu => 2.0,
            FfnKind::SwiGlu => 3.0,
        }
    }
}

/// Where a transformer block obtains its sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeqSource {
    /// Use the model-level context length (LLMs; enables context scaling
    /// studies that keep the architecture constant, Fig. 15).
    ModelContext,
    /// A fixed sequence length owned by the block (DLRM feature-interaction
    /// transformers use a down-sampled length of 80).
    Fixed(usize),
}

/// One transformer encoder/decoder block: self-attention + feed-forward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerBlockSpec {
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Combined key/value projection width (`hidden` for MHA; smaller for
    /// grouped-query attention, e.g. 1024 for LLaMA-2 70B).
    pub kv_dim: usize,
    /// Feed-forward inner width.
    pub ffn_hidden: usize,
    /// Feed-forward flavor.
    pub ffn: FfnKind,
    /// Sequence-length source.
    pub seq: SeqSource,
}

impl TransformerBlockSpec {
    /// Linear-layer parameters of one block (QKVO + FFN + layer norms).
    pub fn params(&self) -> f64 {
        let h = self.hidden as f64;
        let kv = self.kv_dim as f64;
        let ff = self.ffn_hidden as f64;
        let attn = 2.0 * h * h + 2.0 * h * kv; // Q,O: h*h; K,V: h*kv
        let ffn = self.ffn.matrices() * h * ff;
        let norms = 4.0 * h;
        attn + ffn + norms
    }

    /// Sequence length seen by this block given the model context.
    pub fn seq_len(&self, model_context: usize) -> usize {
        match self.seq {
            SeqSource::ModelContext => model_context,
            SeqSource::Fixed(s) => s,
        }
    }

    /// Forward FLOPs per *token*: `2 * params` for the linear layers plus
    /// `4 * seq * hidden` for the attention score/value matmuls (the term
    /// that makes compute grow with context length, Fig. 15).
    pub fn flops_fwd_per_token(&self, model_context: usize) -> f64 {
        let s = self.seq_len(model_context) as f64;
        2.0 * self.params() + 4.0 * s * self.hidden as f64
    }

    /// Bytes of activations retained per token for backward when full
    /// activations are kept (no checkpointing); a standard first-order
    /// estimate of ~16 hidden-sized tensors per block.
    pub fn activation_bytes_per_token_full(&self, act_dtype: DType) -> f64 {
        16.0 * self.hidden as f64 * f64::from(act_dtype.size_bytes())
    }

    /// Bytes retained per token with activation checkpointing (block inputs
    /// only).
    pub fn activation_bytes_per_token_checkpointed(&self, act_dtype: DType) -> f64 {
        2.0 * self.hidden as f64 * f64::from(act_dtype.size_bytes())
    }

    /// Bytes all-reduced per token by tensor parallelism in the forward
    /// pass (two partial-sum reductions per block, Megatron-style).
    pub fn tp_allreduce_bytes_per_token(&self, act_dtype: DType) -> f64 {
        2.0 * self.hidden as f64 * f64::from(act_dtype.size_bytes())
    }

    /// KV-cache bytes per cached token per sequence: one key and one value
    /// row of `kv_dim` each (grouped-query attention caches the shared KV
    /// heads only, which is what makes GQA serve-friendly).
    pub fn kv_cache_bytes_per_token(&self, act_dtype: DType) -> f64 {
        2.0 * self.kv_dim as f64 * f64::from(act_dtype.size_bytes())
    }
}

/// A mixture-of-experts layer: `num_experts` parallel expert MLPs of which
/// `active_experts` fire per sample/token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeSpec {
    /// Total experts.
    pub num_experts: usize,
    /// Experts activated per sample/token.
    pub active_experts: usize,
    /// One expert's architecture.
    pub expert: MlpSpec,
}

impl MoeSpec {
    /// Creates an MoE layer.
    ///
    /// # Panics
    ///
    /// Panics if `active_experts` is zero or exceeds `num_experts`.
    pub fn new(num_experts: usize, active_experts: usize, expert: MlpSpec) -> Self {
        assert!(
            active_experts > 0 && active_experts <= num_experts,
            "invalid expert activation"
        );
        Self {
            num_experts,
            active_experts,
            expert,
        }
    }

    /// Total parameters across all experts.
    pub fn params(&self) -> f64 {
        self.num_experts as f64 * self.expert.params()
    }

    /// Forward FLOPs per sample: only active experts compute, so FLOPs grow
    /// slower than capacity (Section II-A).
    pub fn flops_fwd_per_sample(&self) -> f64 {
        self.active_experts as f64 * self.expert.flops_fwd_per_sample()
    }

    /// Bytes each sample contributes to the expert-dispatch All2All (input
    /// routed to each active expert), one direction.
    pub fn dispatch_bytes_per_sample(&self, act_dtype: DType) -> f64 {
        self.active_experts as f64 * self.expert.in_dim() as f64 * f64::from(act_dtype.size_bytes())
    }
}

/// Any layer MAD-Max can model, dispatched by its primary system
/// requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Compute-bound fully-connected stack.
    Mlp(MlpSpec),
    /// HBM-bound pooled embedding lookups.
    EmbeddingBag(EmbeddingBagSpec),
    /// LLM token embedding.
    TokenEmbedding(TokenEmbeddingSpec),
    /// DLRM pairwise feature interaction.
    Interaction(InteractionSpec),
    /// Transformer block (self-attention + FFN).
    TransformerBlock(TransformerBlockSpec),
    /// Mixture-of-experts layer.
    Moe(MoeSpec),
}

impl LayerKind {
    /// Parameter count of one instance of this layer.
    pub fn params(&self) -> f64 {
        match self {
            LayerKind::Mlp(m) => m.params(),
            LayerKind::EmbeddingBag(e) => e.params(),
            LayerKind::TokenEmbedding(t) => t.params(),
            LayerKind::Interaction(_) => 0.0,
            LayerKind::TransformerBlock(t) => t.params(),
            LayerKind::Moe(m) => m.params(),
        }
    }

    /// Forward FLOPs per sample. `tokens_per_sample` is the model context
    /// length for token-based layers (1 for DLRM sample-based layers).
    pub fn flops_fwd_per_sample(&self, tokens_per_sample: usize) -> FlopCount {
        let f = match self {
            LayerKind::Mlp(m) => m.flops_fwd_per_sample(),
            LayerKind::EmbeddingBag(e) => {
                // Pooling additions, negligible but nonzero.
                e.num_tables as f64 * e.avg_lookups_per_table * e.dim as f64
            }
            LayerKind::TokenEmbedding(_) => 0.0,
            LayerKind::Interaction(i) => i.flops_fwd_per_sample(),
            LayerKind::TransformerBlock(t) => {
                let s = t.seq_len(tokens_per_sample) as f64;
                t.flops_fwd_per_token(tokens_per_sample) * s
            }
            // MoE routing happens per token: one sample of `tokens_per_sample`
            // tokens dispatches each token to its active experts (DLRMs have
            // one "token" per sample).
            LayerKind::Moe(m) => m.flops_fwd_per_sample() * tokens_per_sample as f64,
        };
        FlopCount::new(f)
    }

    /// HBM bytes fetched per sample for sparse lookups.
    pub fn lookup_bytes_per_sample(&self, tokens_per_sample: usize) -> ByteCount {
        let b = match self {
            LayerKind::EmbeddingBag(e) => e.lookup_bytes_per_sample(),
            LayerKind::TokenEmbedding(t) => t.lookup_bytes_per_token() * tokens_per_sample as f64,
            _ => 0.0,
        };
        ByteCount::new(b)
    }

    /// Whether this layer is served by embedding lookups rather than
    /// matrix compute.
    pub fn is_memory_bound(&self) -> bool {
        matches!(
            self,
            LayerKind::EmbeddingBag(_) | LayerKind::TokenEmbedding(_)
        )
    }

    /// Activation bytes retained per sample for the backward pass.
    ///
    /// With `checkpointing`, transformer blocks keep only their inputs and
    /// recompute internals during backward (standard for LLM pre-training).
    pub fn activation_bytes_per_sample(
        &self,
        tokens_per_sample: usize,
        act_dtype: DType,
        checkpointing: bool,
    ) -> ByteCount {
        let bytes = f64::from(act_dtype.size_bytes());
        let b = match self {
            LayerKind::Mlp(m) => m.activation_bytes_per_sample(act_dtype),
            LayerKind::EmbeddingBag(e) => e.pooled_output_bytes_per_sample(),
            LayerKind::TokenEmbedding(t) => t.dim as f64 * bytes * tokens_per_sample as f64,
            LayerKind::Interaction(i) => i.out_dim() as f64 * bytes,
            LayerKind::TransformerBlock(t) => {
                let per_token = if checkpointing {
                    t.activation_bytes_per_token_checkpointed(act_dtype)
                } else {
                    t.activation_bytes_per_token_full(act_dtype)
                };
                per_token * t.seq_len(tokens_per_sample) as f64
            }
            LayerKind::Moe(m) => {
                let per_token = if checkpointing {
                    // Only the routed input is retained; expert internals
                    // are recomputed.
                    m.expert.in_dim() as f64 * bytes
                } else {
                    m.active_experts as f64 * m.expert.activation_bytes_per_sample(act_dtype)
                };
                per_token * tokens_per_sample as f64
            }
        };
        ByteCount::new(b)
    }

    /// Bytes of partial sums all-reduced per sample by tensor parallelism
    /// in one direction (forward activations; the backward gradient volume
    /// is symmetric). This is the volume that grows with context length and
    /// drives Insight 3/6.
    pub fn tp_comm_bytes_per_sample(
        &self,
        tokens_per_sample: usize,
        act_dtype: DType,
    ) -> ByteCount {
        let bytes = f64::from(act_dtype.size_bytes());
        // Megatron-style TP pairs a column-split with a row-split layer and
        // all-reduces once per pair, so MLP stacks reduce roughly half of
        // their intermediate activations; transformer blocks reduce twice
        // per block (attention out + FFN out).
        let mlp_volume =
            |m: &MlpSpec| -> f64 { m.dims[1..].iter().sum::<usize>() as f64 * bytes / 2.0 };
        let b = match self {
            LayerKind::Mlp(m) => mlp_volume(m),
            LayerKind::EmbeddingBag(_) | LayerKind::TokenEmbedding(_) => 0.0,
            LayerKind::Interaction(_) => 0.0,
            LayerKind::TransformerBlock(t) => {
                t.tp_allreduce_bytes_per_token(act_dtype) * t.seq_len(tokens_per_sample) as f64
            }
            LayerKind::Moe(m) => {
                m.active_experts as f64 * mlp_volume(&m.expert) * tokens_per_sample as f64
            }
        };
        ByteCount::new(b)
    }

    /// KV-cache bytes per cached token per sequence: what serving retains
    /// (and a decode step re-reads) for every token already processed.
    /// Only attention layers cache keys/values.
    pub fn kv_cache_bytes_per_token(&self, act_dtype: DType) -> ByteCount {
        let b = match self {
            LayerKind::TransformerBlock(t) => t.kv_cache_bytes_per_token(act_dtype),
            _ => 0.0,
        };
        ByteCount::new(b)
    }

    /// Bytes each sample contributes to an expert-parallel All2All dispatch
    /// (one direction; a combine of the same size follows).
    pub fn moe_dispatch_bytes_per_sample(
        &self,
        tokens_per_sample: usize,
        act_dtype: DType,
    ) -> ByteCount {
        let b = match self {
            LayerKind::Moe(m) => m.dispatch_bytes_per_sample(act_dtype) * tokens_per_sample as f64,
            _ => 0.0,
        };
        ByteCount::new(b)
    }

    /// Bytes of pooled embedding output each sample contributes to the
    /// sharded-embedding All2All (one direction).
    pub fn embedding_exchange_bytes_per_sample(&self, tokens_per_sample: usize) -> ByteCount {
        let b = match self {
            LayerKind::EmbeddingBag(e) => e.pooled_output_bytes_per_sample(),
            LayerKind::TokenEmbedding(t) => t.lookup_bytes_per_token() * tokens_per_sample as f64,
            _ => 0.0,
        };
        ByteCount::new(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_math() {
        let m = MlpSpec::new([4, 8, 2]);
        assert_eq!(m.params(), (4 * 8 + 8 + 8 * 2 + 2) as f64);
        assert_eq!(m.flops_fwd_per_sample(), (2 * (4 * 8 + 8 * 2)) as f64);
        assert_eq!(m.activation_bytes_per_sample(DType::Fp32), (10 * 4) as f64);
        assert_eq!(m.in_dim(), 4);
        assert_eq!(m.out_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_dims() {
        let _ = MlpSpec::new([4]);
    }

    #[test]
    fn embedding_bag_math() {
        // 700 tables x 63.1 lookups x 128 dim x fp32 = DLRM-A's 22.61 MB.
        let e = EmbeddingBagSpec {
            num_tables: 700,
            rows_per_table: 8.85e6,
            dim: 128,
            avg_lookups_per_table: 63.1,
            dtype: DType::Fp32,
        };
        assert!((e.lookup_bytes_per_sample() / 1e6 - 22.61).abs() < 0.02);
        assert!((e.params() / 1e9 - 793.0).abs() < 1.0);
        assert_eq!(e.pooled_output_bytes_per_sample(), 700.0 * 128.0 * 4.0);
    }

    #[test]
    fn token_embedding_matches_gpt3_lookup_bytes() {
        // GPT-3: 12288-dim fp32 embedding = 49.2 KB per token.
        let t = TokenEmbeddingSpec {
            vocab: 50257,
            dim: 12288,
            dtype: DType::Fp32,
        };
        assert!((t.lookup_bytes_per_token() / 1e3 - 49.152).abs() < 1e-9);
    }

    #[test]
    fn transformer_block_gpt3_scale() {
        let b = TransformerBlockSpec {
            hidden: 12288,
            heads: 96,
            kv_dim: 12288,
            ffn_hidden: 4 * 12288,
            ffn: FfnKind::Gelu,
            seq: SeqSource::ModelContext,
        };
        // ~12 h^2 per block.
        assert!((b.params() / (12.0 * 12288.0f64.powi(2)) - 1.0).abs() < 1e-3);
        // flops/token ~ 2 * params + attention term.
        let f = b.flops_fwd_per_token(2048);
        assert!(f > 2.0 * b.params());
        assert!((f - (2.0 * b.params() + 4.0 * 2048.0 * 12288.0)).abs() < 1.0);
    }

    #[test]
    fn transformer_flops_grow_with_context() {
        let b = TransformerBlockSpec {
            hidden: 8192,
            heads: 64,
            kv_dim: 8192,
            ffn_hidden: 22016,
            ffn: FfnKind::SwiGlu,
            seq: SeqSource::ModelContext,
        };
        assert!(b.flops_fwd_per_token(8192) > b.flops_fwd_per_token(2048));
        // Fixed-seq blocks ignore model context.
        let fixed = TransformerBlockSpec {
            seq: SeqSource::Fixed(80),
            ..b
        };
        assert_eq!(
            fixed.flops_fwd_per_token(2048),
            fixed.flops_fwd_per_token(8192)
        );
        assert_eq!(fixed.seq_len(4096), 80);
    }

    #[test]
    fn gqa_reduces_params() {
        let mha = TransformerBlockSpec {
            hidden: 8192,
            heads: 64,
            kv_dim: 8192,
            ffn_hidden: 28672,
            ffn: FfnKind::SwiGlu,
            seq: SeqSource::ModelContext,
        };
        let gqa = TransformerBlockSpec {
            kv_dim: 1024,
            ..mha.clone()
        };
        assert!(gqa.params() < mha.params());
    }

    #[test]
    fn kv_cache_bytes_follow_kv_dim() {
        let mha = TransformerBlockSpec {
            hidden: 8192,
            heads: 64,
            kv_dim: 8192,
            ffn_hidden: 28672,
            ffn: FfnKind::SwiGlu,
            seq: SeqSource::ModelContext,
        };
        let gqa = TransformerBlockSpec {
            kv_dim: 1024,
            ..mha.clone()
        };
        // K + V at bf16: 2 * kv_dim * 2 bytes per cached token.
        assert_eq!(
            mha.kv_cache_bytes_per_token(DType::Bf16),
            2.0 * 8192.0 * 2.0
        );
        assert_eq!(
            gqa.kv_cache_bytes_per_token(DType::Bf16),
            mha.kv_cache_bytes_per_token(DType::Bf16) / 8.0
        );
        // Only attention layers cache.
        let block = LayerKind::TransformerBlock(mha);
        assert!(!block.kv_cache_bytes_per_token(DType::Bf16).is_zero());
        let mlp = LayerKind::Mlp(MlpSpec::new([8, 8]));
        assert!(mlp.kv_cache_bytes_per_token(DType::Bf16).is_zero());
    }

    #[test]
    fn moe_flops_scale_with_active_not_total() {
        let expert = MlpSpec::new([1024, 4096, 1024]);
        let a = MoeSpec::new(16, 2, expert.clone());
        let b = MoeSpec::new(64, 2, expert.clone());
        assert_eq!(a.flops_fwd_per_sample(), b.flops_fwd_per_sample());
        assert!(b.params() > a.params());
        assert_eq!(a.dispatch_bytes_per_sample(DType::Fp16), 2.0 * 1024.0 * 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid expert activation")]
    fn moe_rejects_zero_active() {
        let _ = MoeSpec::new(16, 0, MlpSpec::new([8, 8]));
    }

    #[test]
    fn layer_kind_dispatch() {
        let emb = LayerKind::EmbeddingBag(EmbeddingBagSpec {
            num_tables: 10,
            rows_per_table: 100.0,
            dim: 16,
            avg_lookups_per_table: 2.0,
            dtype: DType::Fp32,
        });
        assert!(emb.is_memory_bound());
        assert!(emb.lookup_bytes_per_sample(1).value() > 0.0);
        let mlp = LayerKind::Mlp(MlpSpec::new([16, 16]));
        assert!(!mlp.is_memory_bound());
        assert!(mlp.lookup_bytes_per_sample(1).is_zero());
        assert!(mlp.flops_fwd_per_sample(1).value() > 0.0);
    }

    #[test]
    fn interaction_output_dim() {
        let i = InteractionSpec {
            num_features: 128,
            dim: 256,
        };
        assert_eq!(i.out_dim(), 128 * 127 / 2 + 256);
        assert_eq!(i.flops_fwd_per_sample(), 2.0 * 128.0 * 128.0 * 256.0);
    }
}
