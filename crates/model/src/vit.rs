//! Vision Transformer family used for the paper's Fig. 8 validation:
//! ViT-L (300M) through ViT-120B, trained with FSDP on AWS
//! `p4d.24xlarge` instances at global batch sizes of 2K or 4K.

use madmax_hw::DType;

use crate::arch::{BatchUnit, LayerClass, LayerGroup, ModelArch};
use crate::layer::{FfnKind, LayerKind, SeqSource, TokenEmbeddingSpec, TransformerBlockSpec};

/// One named ViT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VitConfig {
    /// Family name, e.g. `"ViT-L"`.
    pub name: &'static str,
    /// Hidden dimension.
    pub hidden: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN inner width.
    pub ffn_hidden: usize,
}

/// The scaling ladder from ViT-L (~300M) to ViT-120B.
pub const VIT_FAMILY: [VitConfig; 5] = [
    VitConfig {
        name: "ViT-L",
        hidden: 1024,
        layers: 24,
        heads: 16,
        ffn_hidden: 4096,
    },
    VitConfig {
        name: "ViT-H",
        hidden: 1280,
        layers: 32,
        heads: 16,
        ffn_hidden: 5120,
    },
    VitConfig {
        name: "ViT-G",
        hidden: 1664,
        layers: 48,
        heads: 16,
        ffn_hidden: 8192,
    },
    VitConfig {
        name: "ViT-22B",
        hidden: 6144,
        layers: 48,
        heads: 48,
        ffn_hidden: 24_576,
    },
    VitConfig {
        name: "ViT-120B",
        hidden: 10_240,
        layers: 96,
        heads: 80,
        ffn_hidden: 40_960,
    },
];

/// Patch tokens per image: 224x224 input, 16x16 patches, plus `[CLS]`.
pub const VIT_SEQ_LEN: usize = 197;

/// Builds a ViT encoder as a token-based model: patches play the role of
/// tokens and the patch-projection layer plays the embedding role.
pub fn vit(config: &VitConfig, global_batch_images: usize) -> ModelArch {
    ModelArch {
        name: config.name.to_owned(),
        groups: vec![
            LayerGroup::single(
                "patch_embedding",
                LayerClass::Embedding,
                // 16x16x3 patch projection behaves like a small per-token
                // lookup + matmul; modeled on the lookup side for capacity.
                LayerKind::TokenEmbedding(TokenEmbeddingSpec {
                    vocab: 16 * 16 * 3,
                    dim: config.hidden,
                    dtype: DType::Fp16,
                }),
            ),
            LayerGroup::repeated(
                "encoder_blocks",
                LayerClass::Transformer,
                LayerKind::TransformerBlock(TransformerBlockSpec {
                    hidden: config.hidden,
                    heads: config.heads,
                    kv_dim: config.hidden,
                    ffn_hidden: config.ffn_hidden,
                    ffn: FfnKind::Gelu,
                    seq: SeqSource::ModelContext,
                }),
                config.layers,
            ),
        ],
        context_length: VIT_SEQ_LEN,
        batch_unit: BatchUnit::Tokens,
        global_batch: global_batch_images,
        compute_dtype: DType::Bf16,
        param_dtype: DType::Bf16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_of(name: &str) -> f64 {
        let cfg = VIT_FAMILY.iter().find(|c| c.name == name).unwrap();
        vit(cfg, 2048).stats().params_total
    }

    #[test]
    fn family_spans_published_sizes() {
        assert!(
            (params_of("ViT-L") / 300e6 - 1.0).abs() < 0.05,
            "{}",
            params_of("ViT-L")
        );
        assert!(
            (params_of("ViT-H") / 632e6 - 1.0).abs() < 0.05,
            "{}",
            params_of("ViT-H")
        );
        assert!(
            (params_of("ViT-G") / 1.85e9 - 1.0).abs() < 0.05,
            "{}",
            params_of("ViT-G")
        );
        assert!((params_of("ViT-22B") / 21.7e9 - 1.0).abs() < 0.05);
        assert!((params_of("ViT-120B") / 120e9 - 1.0).abs() < 0.05);
    }

    #[test]
    fn monotone_scaling() {
        let sizes: Vec<f64> = VIT_FAMILY
            .iter()
            .map(|c| vit(c, 2048).stats().params_total)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn vit_is_image_batched() {
        let cfg = &VIT_FAMILY[0];
        let m = vit(cfg, 4096);
        assert_eq!(m.global_batch, 4096);
        assert_eq!(m.tokens_per_iteration(), 4096.0 * VIT_SEQ_LEN as f64);
    }
}
