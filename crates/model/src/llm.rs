//! Builders for the paper's large language models: GPT-3 175B, LLaMA-65B,
//! LLaMA-2 70B, and the hypothetical 1.8T-parameter LLM-MoE (Table II).

use madmax_hw::DType;

use crate::arch::{BatchUnit, LayerClass, LayerGroup, ModelArch};
use crate::layer::{
    FfnKind, LayerKind, MlpSpec, MoeSpec, SeqSource, TokenEmbeddingSpec, TransformerBlockSpec,
};

fn token_embedding(vocab: usize, dim: usize) -> LayerGroup {
    LayerGroup::single(
        "word_embedding",
        LayerClass::Embedding,
        LayerKind::TokenEmbedding(TokenEmbeddingSpec {
            vocab,
            dim,
            dtype: DType::Fp32,
        }),
    )
}

fn block(hidden: usize, heads: usize, kv_dim: usize, ffn_hidden: usize, ffn: FfnKind) -> LayerKind {
    LayerKind::TransformerBlock(TransformerBlockSpec {
        hidden,
        heads,
        kv_dim,
        ffn_hidden,
        ffn,
        seq: SeqSource::ModelContext,
    })
}

#[allow(clippy::too_many_arguments)] // private builder; call sites are tabular
fn llm_arch(
    name: &str,
    vocab: usize,
    hidden: usize,
    heads: usize,
    kv_dim: usize,
    ffn_hidden: usize,
    ffn: FfnKind,
    layers: usize,
    context_length: usize,
    global_batch_sequences: usize,
) -> ModelArch {
    ModelArch {
        name: name.to_owned(),
        groups: vec![
            token_embedding(vocab, hidden),
            LayerGroup::repeated(
                "transformer_blocks",
                LayerClass::Transformer,
                block(hidden, heads, kv_dim, ffn_hidden, ffn),
                layers,
            ),
        ],
        context_length,
        batch_unit: BatchUnit::Tokens,
        global_batch: global_batch_sequences,
        compute_dtype: DType::Bf16,
        param_dtype: DType::Bf16,
    }
}

/// GPT-3 175B [Brown et al. 2020]: 96 layers, hidden 12288, 2K context,
/// 350 GFLOPs/token, ~4M-token global batches.
pub fn gpt3_175b() -> ModelArch {
    llm_arch(
        "GPT-3 175B",
        50_257,
        12_288,
        96,
        12_288,
        4 * 12_288,
        FfnKind::Gelu,
        96,
        2048,
        2048,
    )
}

/// LLaMA-65B [Touvron et al. 2023]: 80 layers, hidden 8192, SwiGLU FFN of
/// 22016, 2K context, 4M-token batches.
pub fn llama_65b() -> ModelArch {
    llm_arch(
        "LLaMA-65B",
        32_000,
        8192,
        64,
        8192,
        22_016,
        FfnKind::SwiGlu,
        80,
        2048,
        2048,
    )
}

/// LLaMA-2 70B [Touvron et al. 2023]: grouped-query attention (8 KV heads),
/// FFN 28672, 4K context, 4M-token batches.
pub fn llama2_70b() -> ModelArch {
    llm_arch(
        "LLaMA2-70B",
        32_000,
        8192,
        64,
        1024,
        28_672,
        FfnKind::SwiGlu,
        80,
        4096,
        1024,
    )
}

/// The hypothetical 1.8T-parameter LLM-MoE of Table II: GPT-3-scale
/// attention with the FFN replaced by 16 experts (2 active), 8K context.
pub fn llm_moe_1_8t() -> ModelArch {
    let hidden = 12_288;
    let layers = 90;
    // An "attention-only" transformer block: FFN width 0 is invalid, so we
    // model the block as attention (kv = hidden, tiny FFN elided) plus an
    // explicit MoE group carrying the expert FFNs.
    let attn_block = LayerKind::TransformerBlock(TransformerBlockSpec {
        hidden,
        heads: 96,
        kv_dim: hidden,
        ffn_hidden: 1, // negligible placeholder; experts replace the FFN
        ffn: FfnKind::Gelu,
        seq: SeqSource::ModelContext,
    });
    let expert = MlpSpec::new([hidden, 4 * hidden, hidden]);
    ModelArch {
        name: "LLM-MoE 1.8T".to_owned(),
        groups: vec![
            token_embedding(50_257, hidden),
            LayerGroup::repeated(
                "attention_blocks",
                LayerClass::Transformer,
                attn_block,
                layers,
            ),
            LayerGroup::repeated(
                "moe_ffn",
                LayerClass::Moe,
                LayerKind::Moe(MoeSpec::new(16, 2, expert)),
                layers,
            ),
        ],
        context_length: 8192,
        batch_unit: BatchUnit::Tokens,
        global_batch: 512,
        compute_dtype: DType::Bf16,
        param_dtype: DType::Bf16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_err(got: f64, want: f64) -> f64 {
        ((got - want) / want).abs() * 100.0
    }

    #[test]
    fn gpt3_matches_table_ii() {
        let s = gpt3_175b().stats();
        assert!(
            pct_err(s.params_total, 175e9) < 1.0,
            "params {}",
            s.params_total
        );
        assert!(
            pct_err(s.flops_fwd_per_token().value(), 350e9) < 3.0,
            "flops/token {}",
            s.flops_fwd_per_token()
        );
        // 12288-dim fp32 word embedding -> 49.2 KB lookup per token.
        assert!(pct_err(s.lookup_bytes_per_token().value(), 49.2e3) < 0.5);
        // Insight 2: word embeddings are ~0.37% of GPT-3 parameters (<2 GB).
        let frac = s.embedding_param_fraction();
        assert!(frac > 0.003 && frac < 0.004, "emb fraction {frac}");
        // 2K sequences x 2048 tokens = ~4M-token batch.
        assert_eq!(s.global_batch, 2048);
        assert_eq!(gpt3_175b().tokens_per_iteration(), 2048.0 * 2048.0);
    }

    #[test]
    fn llama_65b_matches_table_ii() {
        let s = llama_65b().stats();
        assert!(
            pct_err(s.params_total, 65.2e9) < 1.0,
            "params {}",
            s.params_total
        );
        // Paper reports 2*P = 130.4 GF/token; our count adds the attention
        // score term (+~3%), kept deliberately for context-length studies.
        assert!(pct_err(s.flops_fwd_per_token().value(), 130.4e9) < 5.0);
        assert!(pct_err(s.lookup_bytes_per_token().value(), 32.8e3) < 0.5);
    }

    #[test]
    fn llama2_70b_matches_table_ii() {
        let s = llama2_70b().stats();
        assert!(
            pct_err(s.params_total, 70e9) < 3.0,
            "params {}",
            s.params_total
        );
        assert!(pct_err(s.flops_fwd_per_token().value(), 140e9) < 6.0);
        assert_eq!(s.context_length, 4096);
        // Same 4M-token budget as LLaMA-1 at twice the context.
        assert_eq!(llama2_70b().tokens_per_iteration(), 1024.0 * 4096.0);
    }

    #[test]
    fn llm_moe_matches_table_ii() {
        let s = llm_moe_1_8t().stats();
        assert!(
            pct_err(s.params_total, 1.8e12) < 2.0,
            "params {}",
            s.params_total
        );
        assert!(
            pct_err(s.flops_fwd_per_token().value(), 550e9) < 6.0,
            "flops/token {}",
            s.flops_fwd_per_token()
        );
        assert_eq!(s.context_length, 8192);
        // FLOPs per token grow slower than capacity: 1.8T params but only
        // ~550 GF/token vs GPT-3's 175B params at 350 GF/token.
        let gpt3 = gpt3_175b().stats();
        let capacity_ratio = s.params_total / gpt3.params_total;
        let flop_ratio = s.flops_fwd_per_token().value() / gpt3.flops_fwd_per_token().value();
        assert!(capacity_ratio > 5.0 * flop_ratio);
    }

    #[test]
    fn context_doubling_preserves_architecture() {
        let base = llama2_70b();
        let doubled = base.with_context_length(8192);
        assert_eq!(doubled.stats().params_total, base.stats().params_total);
        assert!(
            doubled.stats().flops_fwd_per_token().value()
                > base.stats().flops_fwd_per_token().value()
        );
    }
}
