//! Criterion micro-benchmarks of the MAD-Max pipeline itself: trace
//! construction + scheduling for representative workloads, demonstrating
//! the "agile" (sub-millisecond) exploration cost the paper claims.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_parallel::{Plan, Workload};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_iteration");
    for id in [
        ModelId::DlrmA,
        ModelId::DlrmAMoe,
        ModelId::Gpt3,
        ModelId::LlmMoe,
    ] {
        let model = id.build();
        let sys = if id.is_dlrm() {
            catalog::zionex_dlrm_system()
        } else {
            catalog::llama_llm_system()
        };
        let plan = Plan::fsdp_baseline(&model);
        group.bench_function(id.to_string(), |b| {
            b.iter(|| {
                let r = Scenario::new(black_box(&model), black_box(&sys))
                    .plan(black_box(&plan).clone())
                    .workload(Workload::pretrain())
                    .run()
                    .unwrap();
                black_box(r.iteration_time)
            });
        });
    }
    group.finish();
}

fn bench_trace_vs_schedule(c: &mut Criterion) {
    let model = ModelId::Gpt3.build();
    let sys = catalog::llama_llm_system();
    let plan = Plan::fsdp_baseline(&model);
    let sim = Scenario::new(&model, &sys)
        .plan(plan)
        .workload(Workload::pretrain());
    c.bench_function("gpt3_trace_build", |b| {
        b.iter(|| black_box(sim.build_trace().unwrap()));
    });
    let trace = sim.build_trace().unwrap();
    c.bench_function("gpt3_schedule", |b| {
        b.iter(|| black_box(madmax_core::schedule(black_box(&trace))));
    });
}

criterion_group!(benches, bench_simulate, bench_trace_vs_schedule);
criterion_main!(benches);
