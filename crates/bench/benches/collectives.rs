//! Criterion comparison of the collective cost models (the ablation of
//! DESIGN.md section 8): hierarchical NCCL-style vs flat worst-link, over
//! a spread of payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use madmax_core::{CollectiveModel, FlatWorstLink, HierarchicalNccl};
use madmax_hw::catalog;
use madmax_hw::units::ByteCount;
use madmax_parallel::comm::CommPosition;
use madmax_parallel::{CollectiveKind, CommReq, CommScope, Urgency};

fn req(bytes: f64) -> CommReq {
    CommReq {
        collective: CollectiveKind::AllReduce,
        scope: CommScope::Global,
        group_size: 128,
        payload: ByteCount::new(bytes),
        urgency: Urgency::Deferred,
        position: CommPosition::AfterCompute,
        label: "bench".to_owned(),
    }
}

fn bench_models(c: &mut Criterion) {
    let sys = catalog::zionex_dlrm_system();
    let mut group = c.benchmark_group("collective_models");
    for mb in [1.0, 64.0, 1024.0] {
        let r = req(mb * 1e6);
        group.bench_with_input(BenchmarkId::new("hierarchical", mb as u64), &r, |b, r| {
            b.iter(|| black_box(HierarchicalNccl.time(black_box(r), &sys)));
        });
        group.bench_with_input(
            BenchmarkId::new("flat_worst_link", mb as u64),
            &r,
            |b, r| b.iter(|| black_box(FlatWorstLink.time(black_box(r), &sys))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
