//! Criterion benchmarks of the design-space-exploration layer: the cost of
//! a full Fig. 11 sweep and a joint Fig. 10 search, plus the prefetch and
//! utilization-model ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use madmax_core::UtilizationModel;
use madmax_dse::{sweep_class, Explorer};
use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{Plan, Workload};

fn bench_sweep_and_search(c: &mut Criterion) {
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let base = Plan::fsdp_baseline(&model);
    c.bench_function("fig11_dense_sweep", |b| {
        b.iter(|| {
            black_box(sweep_class(
                black_box(&model),
                &sys,
                &base,
                LayerClass::Dense,
                &Workload::pretrain(),
            ))
        });
    });
    c.bench_function("fig10_joint_search_dlrm_a", |b| {
        b.iter(|| {
            black_box(
                Explorer::new(black_box(&model), &sys)
                    .threads(1)
                    .explore()
                    .unwrap(),
            )
        });
    });
    c.bench_function("fig10_joint_search_dlrm_a_parallel", |b| {
        b.iter(|| black_box(Explorer::new(black_box(&model), &sys).explore().unwrap()));
    });
}

fn bench_ablations(c: &mut Criterion) {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let mut group = c.benchmark_group("ablations");
    for prefetch in [false, true] {
        let mut plan = Plan::fsdp_baseline(&model);
        plan.options.fsdp_prefetch = prefetch;
        group.bench_function(format!("llama_prefetch_{prefetch}"), |b| {
            b.iter(|| {
                black_box(
                    Scenario::new(&model, &sys)
                        .plan(plan.clone())
                        .run()
                        .unwrap(),
                )
            });
        });
    }
    let vit = madmax_model::vit::vit(&madmax_model::vit::VIT_FAMILY[2], 4096);
    let vit_sys = catalog::zionex_dlrm_system();
    let vit_plan = Plan::fsdp_baseline(&vit);
    for (name, util) in [
        ("constant", UtilizationModel::Constant),
        ("workload_dependent", UtilizationModel::vit_default()),
    ] {
        group.bench_function(format!("vit_utilization_{name}"), |b| {
            b.iter(|| {
                black_box(
                    Scenario::new(&vit, &vit_sys)
                        .plan(vit_plan.clone())
                        .utilization(util)
                        .run()
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_and_search, bench_ablations);
criterion_main!(benches);
