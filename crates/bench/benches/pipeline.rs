//! Criterion benchmarks of the pipeline engine's pricing/assembly split:
//! the cost of pricing one joint-search key into a `PipelineCostTable`,
//! the cached per-candidate assembly path it enables (training and
//! serve), and the uncached one-shot path it replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use madmax_engine::{EngineScratch, PipelineCostTable, Scenario};
use madmax_hw::{catalog, DeviceScaling};
use madmax_model::ModelId;
use madmax_parallel::{PipelineConfig, PipelineSchedule, Plan, ServeConfig, Workload};

fn bench_pricing(c: &mut Criterion) {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let plans: Vec<Plan> = [2usize, 4, 8]
        .into_iter()
        .flat_map(|p| {
            [8usize, 16].map(|m| {
                Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(p, m))
            })
        })
        .collect();
    let workload = Workload::pretrain();
    c.bench_function("pipeline_table_price_6_keys", |b| {
        b.iter(|| {
            let scenario = Scenario::new(black_box(&model), &sys).workload_ref(&workload);
            black_box(scenario.price_pipeline_plans(&plans))
        });
    });
}

fn bench_assembly(c: &mut Criterion) {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let slow = catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
    let mut group = c.benchmark_group("pipeline_candidates");

    // Training: cached assembly vs the uncached one-shot path.
    let train = Workload::pretrain();
    let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(8, 32));
    let scenario = Scenario::new(&model, &sys).workload_ref(&train);
    let table = scenario.price_pipeline_plans(std::slice::from_ref(&plan));
    let mut scratch = EngineScratch::new();
    group.bench_function("train_cached", |b| {
        b.iter(|| {
            black_box(
                Scenario::new(black_box(&model), &sys)
                    .workload_ref(&train)
                    .plan_ref(&plan)
                    .pipeline_costs(&table)
                    .run_in(&mut scratch)
                    .unwrap(),
            )
        });
    });
    group.bench_function("train_uncached", |b| {
        b.iter(|| {
            black_box(
                Scenario::new(black_box(&model), &sys)
                    .workload_ref(&train)
                    .plan_ref(&plan)
                    .run()
                    .unwrap(),
            )
        });
    });

    // Serve: two-phase pricing, decode-stream assembly; alternating
    // microbatch counts defeat the scratch memo so the assembly itself is
    // measured.
    let serve = Workload::serve(ServeConfig::new(1024, 64).with_decode_batch(256));
    let serve_plans: Vec<Plan> = [8usize, 16]
        .into_iter()
        .map(|m| {
            Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
                stages: 8,
                microbatches: m,
                schedule: PipelineSchedule::GPipe,
            })
        })
        .collect();
    let serve_scenario = Scenario::new(&model, &slow).workload_ref(&serve);
    let serve_table: PipelineCostTable = serve_scenario.price_pipeline_plans(&serve_plans);
    let mut serve_scratch = EngineScratch::new();
    group.bench_function("serve_cached_pair", |b| {
        b.iter(|| {
            for plan in &serve_plans {
                black_box(
                    Scenario::new(black_box(&model), &slow)
                        .workload_ref(&serve)
                        .plan_ref(plan)
                        .pipeline_costs(&serve_table)
                        .run_in(&mut serve_scratch)
                        .unwrap(),
                );
            }
        });
    });
    // The memoized fast path: identical assembly inputs (the schedule
    // axis of a serve search).
    group.bench_function("serve_memo_hit", |b| {
        b.iter(|| {
            black_box(
                Scenario::new(black_box(&model), &slow)
                    .workload_ref(&serve)
                    .plan_ref(&serve_plans[0])
                    .pipeline_costs(&serve_table)
                    .run_in(&mut serve_scratch)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

/// The closed-form steady-state decode path against full simulation,
/// across decode lengths: analytic cost is dominated by the prefill +
/// transient prefix (near-constant in `decode_len`), full assembly and
/// event scheduling grow linearly with the token axis. The memo is
/// cleared every iteration so the evaluation itself is measured, not a
/// table-level memo hit.
fn bench_steady_decode(c: &mut Criterion) {
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let mut group = c.benchmark_group("steady_decode");
    for decode in [64usize, 256, 1024, 4096] {
        let serve = Workload::serve(ServeConfig::new(512, decode).with_decode_batch(512));
        let plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig::one_f_one_b(4, 8));
        for (label, analytic) in [("analytic", true), ("full", false)] {
            let scenario = Scenario::new(&model, &sys)
                .workload_ref(&serve)
                .analytic_serve(analytic);
            let table = scenario.price_pipeline_plans(std::slice::from_ref(&plan));
            let mut scratch = EngineScratch::new();
            group.bench_function(format!("{label}/dec{decode}"), |b| {
                b.iter(|| {
                    table.clear_memo();
                    black_box(
                        Scenario::new(black_box(&model), &sys)
                            .workload_ref(&serve)
                            .plan_ref(&plan)
                            .pipeline_costs(&table)
                            .run_in(&mut scratch)
                            .unwrap(),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pricing, bench_assembly, bench_steady_decode);
criterion_main!(benches);
