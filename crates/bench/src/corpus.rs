//! The verification corpus: every scenario shape the figure experiments
//! exercise — the full model zoo under the flat engine, GPipe and 1F1B
//! training pipelines, forward-only inference, fine-tuning, flat and
//! pipelined serving, plus the miniature scenarios behind
//! `crates/obs/tests/golden/*.json` — as named
//! (model, system, plan, workload) combinations.
//!
//! `madmax verify` runs the full `madmax-verify` rule set over each
//! scenario's engine-produced trace and schedule (the CI verify job's
//! backbone), and `tests/verify_invariants.rs` asserts the corpus stays
//! diagnostic-clean while mutated schedules are flagged.

use madmax_core::steady::grid_units_round;
use madmax_fault::{FaultSpec, MaintenanceWindow, RetryPolicy};
use madmax_hw::units::Seconds;
use madmax_hw::{catalog, ClusterSpec};
use madmax_model::{LayerClass, ModelArch, ModelId};
use madmax_parallel::{LoadSpec, PipelineConfig, Plan, ServeConfig, Workload};

/// One named scenario of the verification corpus.
#[derive(Debug, Clone)]
pub struct VerifyScenario {
    /// Stable scenario name (`zoo/llama2`, `pipeline/gpipe-llama2`, ...).
    pub name: String,
    /// The model architecture.
    pub model: ModelArch,
    /// The cluster it runs on.
    pub system: ClusterSpec,
    /// The parallelization plan.
    pub plan: Plan,
    /// The workload.
    pub workload: Workload,
}

impl VerifyScenario {
    fn new(
        name: impl Into<String>,
        model: ModelArch,
        system: ClusterSpec,
        plan: Plan,
        workload: Workload,
    ) -> Self {
        Self {
            name: name.into(),
            model,
            system,
            plan,
            workload,
        }
    }
}

/// The cluster each zoo model conventionally runs on in the figures.
fn default_system(id: ModelId) -> ClusterSpec {
    match id {
        ModelId::DlrmA
        | ModelId::DlrmATransformer
        | ModelId::DlrmAMoe
        | ModelId::DlrmB
        | ModelId::DlrmBTransformer
        | ModelId::DlrmBMoe => catalog::zionex_dlrm_system(),
        ModelId::Gpt3 | ModelId::Llama | ModelId::Llama2 | ModelId::LlmMoe => {
            catalog::llama_llm_system()
        }
    }
}

/// Llama2 shrunk to two transformer blocks — the model behind the obs
/// golden traces (`crates/obs/tests/golden/*.json`), reproduced here so
/// the verify corpus covers exactly those schedules.
fn tiny_llama() -> ModelArch {
    let mut model = ModelId::Llama2.build();
    for group in &mut model.groups {
        if group.repeat > 2 {
            group.repeat = 2;
        }
    }
    model
}

/// Builds the full verification corpus. Every scenario is feasible (the
/// engines produce a report, trace, and schedule for it) and covers one
/// distinct trace/schedule shape.
pub fn verify_corpus() -> Vec<VerifyScenario> {
    let mut corpus = Vec::new();

    // The model zoo under the flat engine (pre-training).
    for id in [
        ModelId::DlrmA,
        ModelId::DlrmATransformer,
        ModelId::DlrmAMoe,
        ModelId::DlrmB,
        ModelId::DlrmBTransformer,
        ModelId::DlrmBMoe,
        ModelId::Gpt3,
        ModelId::Llama,
        ModelId::Llama2,
        ModelId::LlmMoe,
    ] {
        let model = id.build();
        let system = default_system(id);
        let plan = Plan::fsdp_baseline(&model);
        corpus.push(VerifyScenario::new(
            format!("zoo/{}", model.name),
            model,
            system,
            plan,
            Workload::pretrain(),
        ));
    }

    // Pipelined training: both schedules, plus a deeper-microbatch GPipe.
    let llama2 = ModelId::Llama2.build();
    let gpt3 = ModelId::Gpt3.build();
    let llm_sys = catalog::llama_llm_system();
    for (name, model, cfg, workload) in [
        (
            "pipeline/gpipe-llama2",
            llama2.clone(),
            PipelineConfig::gpipe(8, 16),
            Workload::pretrain(),
        ),
        (
            "pipeline/1f1b-llama2",
            llama2.clone(),
            PipelineConfig::one_f_one_b(8, 16),
            Workload::pretrain(),
        ),
        (
            "pipeline/gpipe-gpt3",
            gpt3.clone(),
            PipelineConfig::gpipe(8, 32),
            Workload::pretrain(),
        ),
        (
            "pipeline/inference-llama2",
            llama2.clone(),
            PipelineConfig::gpipe(8, 16),
            Workload::inference(),
        ),
    ] {
        let plan = Plan::fsdp_baseline(&model).with_pipeline(cfg);
        corpus.push(VerifyScenario::new(
            name,
            model,
            llm_sys.clone(),
            plan,
            workload,
        ));
    }

    // Fine-tuning (partial backward) under the flat engine.
    let dlrm = ModelId::DlrmA.build();
    corpus.push(VerifyScenario::new(
        "finetune/dlrm-a-dense",
        dlrm.clone(),
        catalog::zionex_dlrm_system(),
        Plan::fsdp_baseline(&dlrm),
        Workload::finetune_only(LayerClass::Dense),
    ));

    // Serving: flat decode, pipelined decode under both schedules.
    corpus.push(VerifyScenario::new(
        "serve/flat-llama2",
        llama2.clone(),
        llm_sys.clone(),
        Plan::fsdp_baseline(&llama2),
        Workload::serve(ServeConfig::new(512, 16)),
    ));
    corpus.push(VerifyScenario::new(
        "serve/gpipe-llama2",
        llama2.clone(),
        llm_sys.clone(),
        Plan::fsdp_baseline(&llama2).with_pipeline(PipelineConfig::gpipe(8, 8)),
        Workload::serve(ServeConfig::new(512, 16).with_decode_batch(512)),
    ));
    corpus.push(VerifyScenario::new(
        "serve/1f1b-llama2",
        llama2.clone(),
        llm_sys.clone(),
        Plan::fsdp_baseline(&llama2).with_pipeline(PipelineConfig::one_f_one_b(8, 8)),
        Workload::serve(ServeConfig::new(512, 16).with_decode_batch(512)),
    ));
    // Long enough decode for the steady-period rule's analysis window
    // (short decodes are all fill/drain transient and skip it).
    corpus.push(VerifyScenario::new(
        "serve/steady-1f1b-llama2",
        llama2.clone(),
        llm_sys.clone(),
        Plan::fsdp_baseline(&llama2).with_pipeline(PipelineConfig::one_f_one_b(4, 8)),
        Workload::serve(ServeConfig::new(512, 64).with_decode_batch(512)),
    ));

    // The scenarios behind the committed obs golden traces.
    let tiny = tiny_llama();
    corpus.push(VerifyScenario::new(
        "golden/flat",
        tiny.clone(),
        llm_sys.clone(),
        Plan::fsdp_baseline(&tiny),
        Workload::pretrain(),
    ));
    corpus.push(VerifyScenario::new(
        "golden/pipeline-1f1b",
        tiny.clone(),
        llm_sys.clone(),
        Plan::fsdp_baseline(&tiny).with_pipeline(PipelineConfig::one_f_one_b(2, 4)),
        Workload::pretrain(),
    ));
    corpus.push(VerifyScenario::new(
        "golden/serve-decode",
        tiny.clone(),
        llm_sys,
        Plan::fsdp_baseline(&tiny).with_pipeline(PipelineConfig::gpipe(2, 4)),
        Workload::serve(ServeConfig::new(512, 16)),
    ));

    corpus
}

/// One fault-injection scenario of the verification corpus: a serve
/// load run with a materialized, seeded fault stream, checked by the
/// `fault-ledger` rule family in `madmax verify`.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Stable scenario name (`fault/fatal-llama2`, ...).
    pub name: String,
    /// The model architecture.
    pub model: ModelArch,
    /// The cluster it runs on.
    pub system: ClusterSpec,
    /// The parallelization plan.
    pub plan: Plan,
    /// The serve workload.
    pub workload: Workload,
    /// The request stream.
    pub load: LoadSpec,
    /// The fault process to materialize.
    pub fault: FaultSpec,
    /// The retry policy applied to interrupted requests.
    pub retry: RetryPolicy,
    /// Fault-materialization horizon, in grid units.
    pub horizon_units: i64,
}

/// Builds the fault-injection corpus swept by `madmax verify`: a fatal
/// fault stream over a Poisson serve load, a transient-slowdown stream
/// over a bursty load, and a maintenance window — every fault kind the
/// simulator traces, each under a different arrival process.
pub fn fault_corpus() -> Vec<FaultScenario> {
    let model = ModelId::Llama2.build();
    let system = catalog::llama_llm_system();
    let plan = Plan::fsdp_baseline(&model);
    let workload = Workload::serve(ServeConfig::new(128, 24).with_decode_batch(4));
    // Every stream is faulted well inside its makespan: the Poisson
    // stream spans ~80 s at 0.2 req/s, so a 400 s horizon with a 60 s
    // MTBF lands several fatal windows inside it.
    let horizon_units = grid_units_round(Seconds::new(400.0)).expect("horizon on grid");
    let scenario =
        |name: &str, load: LoadSpec, fault: FaultSpec, retry: RetryPolicy| FaultScenario {
            name: name.to_owned(),
            model: model.clone(),
            system: system.clone(),
            plan: plan.clone(),
            workload: workload.clone(),
            load,
            fault,
            retry,
            horizon_units,
        };
    vec![
        scenario(
            "fault/fatal-llama2",
            LoadSpec::poisson(0.2, 16, 7),
            FaultSpec::fatal(60.0, 5.0, 3),
            RetryPolicy::retries(3),
        ),
        scenario(
            "fault/transient-bursty-llama2",
            LoadSpec::bursty(0.4, 20.0, 10.0, 16, 7),
            FaultSpec::fatal(90.0, 5.0, 13).with_transients(45.0, 8.0, 150),
            RetryPolicy::retries(2).with_backoff(1.0),
        ),
        scenario(
            "fault/maintenance-llama2",
            LoadSpec::poisson(0.2, 16, 9),
            FaultSpec::none().with_maintenance(MaintenanceWindow {
                start: 30.0,
                duration: 15.0,
                slots_lost: 1,
            }),
            RetryPolicy::retries(3),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_shapes_covered() {
        let corpus = verify_corpus();
        let mut names: Vec<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario names");
        assert!(corpus.len() >= 18, "corpus shrank to {}", corpus.len());
        // Every engine shape is represented.
        assert!(corpus
            .iter()
            .any(|s| s.plan.pipeline_stages() == 1 && s.workload.has_backward()));
        assert!(corpus
            .iter()
            .any(|s| s.plan.pipeline_stages() > 1 && s.workload.has_backward()));
        assert!(corpus
            .iter()
            .any(|s| s.workload.serve_config().is_some() && s.plan.pipeline_stages() == 1));
        assert!(corpus
            .iter()
            .any(|s| s.workload.serve_config().is_some() && s.plan.pipeline_stages() > 1));
    }
}
