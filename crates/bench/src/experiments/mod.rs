//! One module per paper table/figure; each experiment exposes a `run`-style
//! function returning the rendered report.

pub mod ablations;
pub mod characterization;
pub mod fault_figs;
pub mod hardware_figs;
pub mod pipeline_figs;
pub mod serve_figs;
pub mod serve_load_figs;
pub mod strategy_figs;
pub mod tables;
pub mod validation_figs;
