//! Failure-aware goodput scenarios (`fig_fault`): training
//! checkpoint/restart goodput across MTBF and checkpoint-interval
//! grids, the goodput-ranked strategy search demonstrating a
//! plan-choice flip versus the latency ranking, and serving under a
//! materialized fault stream (availability, retries, degraded
//! capacity) on a bursty request process.
//!
//! Where every other figure assumes a fault-free fleet, this experiment
//! prices what failures cost: the closed-form Young/Daly expected
//! goodput (cross-checked against a seeded discrete-event replay), and
//! the continuous-batching simulator with fatal-fault windows dropping
//! in-flight requests.

use madmax_dse::{Explorer, FaultAxes, SearchSpace};
use madmax_engine::{FaultSpec, RetryPolicy, Scenario, SimMode};
use madmax_fault::{expected_goodput, materialize_faults, replay_goodput, young_daly_interval};
use madmax_hw::units::Seconds;
use madmax_hw::{catalog, DeviceScaling};
use madmax_model::ModelId;
use madmax_obs::SearchTelemetry;
use madmax_parallel::{LoadSpec, ServeConfig, Workload};

/// Fleet MTBF ladder, seconds: a day down to five minutes.
const MTBFS: [f64; 5] = [86_400.0, 21_600.0, 3_600.0, 900.0, 300.0];
/// Fixed checkpoint intervals (seconds) swept next to the Young/Daly
/// optimum.
const INTERVALS: [f64; 3] = [60.0, 300.0, 1800.0];
/// Capacity-recovery time per fatal fault, seconds.
const RECOVERY: f64 = 60.0;
/// Replay length for the closed-form cross-check, in checkpoint
/// segments.
const REPLAY_SEGMENTS: usize = 200_000;
/// Documented closed-form vs replay tolerance: the replay measures the
/// goodput fraction over `REPLAY_SEGMENTS` seeded segments, so it
/// carries sampling noise of a few tenths of a percent; 2% (absolute,
/// on the fraction) bounds it with a wide margin.
const REPLAY_TOLERANCE: f64 = 0.02;

/// Renders the fault report: the goodput grids, the plan-flip search,
/// the replay cross-check, and the faulty serve table.
pub fn fig_fault(hooks: &crate::SearchHooks) -> String {
    let mut out = String::new();
    out.push_str("Failure-aware goodput: checkpoint/restart for training, retries for serving\n");
    out.push_str(&"=".repeat(98));
    out.push('\n');

    // ---- Part 1: closed-form goodput vs MTBF x checkpoint interval ----
    let system = catalog::llama_llm_system();
    for id in [ModelId::Llama2, ModelId::Gpt3] {
        let model = id.build();
        let scenario = Scenario::new(&model, &system);
        // One engine run prices the plan; the grid is closed-form.
        let base = match scenario.goodput(&FaultSpec::fatal(MTBFS[0], RECOVERY, 7)) {
            Ok(o) => o,
            Err(e) => {
                out.push_str(&format!("\n{}: [{e}]\n", model.name));
                continue;
            }
        };
        let iter = base.report.iteration_time.as_secs();
        let write = base.ckpt.write.as_secs();
        let restart = base.ckpt.restart.as_secs() + RECOVERY;
        out.push_str(&format!(
            "\n{} on {}: iteration {:.2} s, checkpoint write {:.3} s \
             ({:.2} GB/device), restart {:.2} s\n",
            model.name,
            system.name,
            iter,
            write,
            base.ckpt.state_bytes.as_gb(),
            restart
        ));
        out.push_str(&format!(
            "goodput %        {:>12} {:>12} {:>12} {:>12}\n",
            "Young/Daly", "ckpt@60s", "ckpt@300s", "ckpt@1800s"
        ));
        for mtbf in MTBFS {
            let yd = young_daly_interval(write, mtbf);
            let mut cells = vec![expected_goodput(iter, write, restart, mtbf, yd)];
            cells.extend(
                INTERVALS
                    .iter()
                    .map(|&i| expected_goodput(iter, write, restart, mtbf, i)),
            );
            out.push_str(&format!("MTBF {mtbf:>8.0} s "));
            for g in &cells {
                out.push_str(&format!(" {:>11.2}%", g.goodput_fraction * 100.0));
            }
            out.push('\n');
        }
    }

    // ---- Part 2: closed form vs seeded discrete-event replay ----
    {
        let model = ModelId::Llama2.build();
        let base = Scenario::new(&model, &system)
            .goodput(&FaultSpec::fatal(3600.0, RECOVERY, 7))
            .expect("llama2 goodput prices");
        let g = base.goodput;
        let replayed = replay_goodput(
            g.checkpoint_write,
            g.restart,
            g.mtbf,
            g.interval,
            7,
            REPLAY_SEGMENTS,
        );
        out.push_str(&format!(
            "\n--- replay cross-check: {} at MTBF {:.0} s, Young/Daly interval {:.1} s ---\n\
             closed form {:.3}% | replay {:.3}% over {REPLAY_SEGMENTS} segments | \
             |diff| {:.3}% (tolerance {:.0}%)\n",
            model.name,
            g.mtbf,
            g.interval,
            g.goodput_fraction * 100.0,
            replayed * 100.0,
            (g.goodput_fraction - replayed).abs() * 100.0,
            REPLAY_TOLERANCE * 100.0
        ));
    }

    // ---- Part 3: the plan flip — goodput-ranked strategy search ----
    // On a fabric with a quarter of the inter-node bandwidth, the
    // latency ranking cannot separate the replicated-embedding
    // deployment from the sharded-embedding one (their iteration times
    // tie to the model's precision), so it keeps the fat checkpoint;
    // the goodput ranking flips the choice to the sharded state, with
    // a margin that grows as the MTBF shrinks.
    {
        let model = ModelId::Llama2.build();
        let slow = catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(0.25));
        out.push_str(&format!(
            "\n--- goodput-ranked strategy search: {} on {} (inter-node bw x0.25) ---\n",
            model.name, slow.name
        ));
        out.push_str(&format!(
            "{:>12} {:>44} {:>10} {:>10} {:>9}\n",
            "MTBF s", "goodput-optimal plan", "ckpt s", "margin %", "flip"
        ));
        let explorer = hooks.attach(Explorer::new(&model, &slow).space(SearchSpace::strategies()));
        for mtbf in MTBFS {
            let axes = FaultAxes::new(FaultSpec::fatal(mtbf, RECOVERY, 7));
            match explorer.explore_goodput(&axes) {
                Ok(r) => {
                    hooks.record(&format!("fig_fault/goodput@{mtbf:.0}"), &r.telemetry);
                    let best = r.best();
                    let margin =
                        (r.best_effective_throughput() / r.fault_free().score() - 1.0) * 100.0;
                    out.push_str(&format!(
                        "{mtbf:>12.0} {:>44} {:>10.3} {margin:>10.4} {:>9}\n",
                        best.plan.summary(),
                        best.points.first().map_or(f64::NAN, |p| p.checkpoint_write),
                        if r.plan_flip() { "<- flip" } else { "-" }
                    ));
                    if r.plan_flip() && mtbf == MTBFS[MTBFS.len() - 1] {
                        out.push_str(&format!(
                            "plan flip: latency ranking keeps {} (fat checkpoint); goodput \
                             ranking picks {}\n",
                            r.fault_free().plan.summary(),
                            best.plan.summary()
                        ));
                    }
                }
                Err(e) => out.push_str(&format!("{mtbf:>12.0} [{e}]\n")),
            }
        }
    }

    // ---- Part 4: serving under faults — bursty load, fatal windows ----
    {
        let model = ModelId::Llama2.build();
        let workload = Workload::serve(ServeConfig::new(128, 24).with_decode_batch(4));
        let spec = LoadSpec::bursty(0.4, 20.0, 10.0, 24, 7);
        let scenario = Scenario::new(&model, &system).workload_ref(&workload);
        out.push_str(&format!(
            "\n--- serving under faults: {} on {}, bursty 0.4 req/s (on 20 s / off 10 s), \
             24 requests, retry budget 3 ---\n",
            model.name, system.name
        ));
        out.push_str(&format!(
            "{:>10} {:>8} {:>10} {:>8} {:>8} {:>13} {:>12}\n",
            "MTBF s", "windows", "completed", "retries", "failed", "availability", "TTFT p99"
        ));
        match scenario.price_load(&spec) {
            Ok(costs) => {
                let horizon = madmax_core::steady::grid_units_round(Seconds::new(400.0))
                    .expect("horizon on grid");
                for mtbf in [f64::INFINITY, 240.0, 120.0, 60.0] {
                    let events = if mtbf.is_finite() {
                        materialize_faults(&FaultSpec::fatal(mtbf, 5.0, 3), horizon)
                            .expect("fault stream materializes")
                    } else {
                        Vec::new()
                    };
                    let retry = RetryPolicy::retries(3);
                    match scenario.serve_load_faulty(
                        &spec,
                        &costs,
                        SimMode::Event,
                        &events,
                        &retry,
                        None,
                    ) {
                        Ok(o) => {
                            let t = SearchTelemetry {
                                fault_events: o.trace.faults.len() as u64,
                                ..SearchTelemetry::default()
                            };
                            hooks.record(&format!("fig_fault/serve@{mtbf:.0}"), &t);
                            let r = &o.report;
                            out.push_str(&format!(
                                "{:>10} {:>8} {:>10} {:>8} {:>8} {:>12.1}% {:>10.1} s\n",
                                if mtbf.is_finite() {
                                    format!("{mtbf:.0}")
                                } else {
                                    "none".to_owned()
                                },
                                o.trace.faults.len(),
                                r.completed,
                                r.retries,
                                r.failed,
                                r.availability * 100.0,
                                r.ttft.as_ref().map_or(f64::NAN, |t| t.p99.as_secs())
                            ));
                        }
                        Err(e) => out.push_str(&format!("{mtbf:>10.0} [{e}]\n")),
                    }
                }
            }
            Err(e) => out.push_str(&format!("[{e}]\n")),
        }
    }

    out.push_str(
        "\nReading: goodput falls with the MTBF, and the Young/Daly interval tracks the\n\
         per-plan optimum (too-frequent checkpoints pay the write, too-rare ones replay\n\
         lost work). The latency ranking is blind to checkpoint footprint, so where\n\
         iteration times tie it can keep a replicated (fat-state) deployment; the\n\
         goodput ranking flips the plan to the sharded state, and the margin grows as\n\
         the MTBF shrinks. Under serving faults, availability and tail TTFT degrade\n\
         together: each fatal window drops the in-flight batch, burns retries, and\n\
         stretches the p99 while capacity recovers.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_grids_flip_and_fault_table() {
        let s = fig_fault(&crate::SearchHooks::with_threads(2));
        assert!(s.contains("Young/Daly"), "{s}");
        assert!(s.contains("replay cross-check"), "{s}");
        assert!(s.contains("<- flip"), "{s}");
        assert!(s.contains("plan flip: latency ranking keeps"), "{s}");
        assert!(s.contains("availability"), "{s}");
    }

    #[test]
    fn closed_form_matches_replay_within_tolerance() {
        let model = ModelId::Llama2.build();
        let system = catalog::llama_llm_system();
        let base = Scenario::new(&model, &system)
            .goodput(&FaultSpec::fatal(3600.0, RECOVERY, 7))
            .unwrap();
        let g = base.goodput;
        let replayed = replay_goodput(
            g.checkpoint_write,
            g.restart,
            g.mtbf,
            g.interval,
            7,
            REPLAY_SEGMENTS,
        );
        assert!(
            (g.goodput_fraction - replayed).abs() < REPLAY_TOLERANCE,
            "closed form {} vs replay {replayed}",
            g.goodput_fraction
        );
    }

    #[test]
    fn faults_degrade_the_serve_stream() {
        let model = ModelId::Llama2.build();
        let system = catalog::llama_llm_system();
        let workload = Workload::serve(ServeConfig::new(128, 24).with_decode_batch(4));
        let spec = LoadSpec::bursty(0.4, 20.0, 10.0, 24, 7);
        let scenario = Scenario::new(&model, &system).workload_ref(&workload);
        let costs = scenario.price_load(&spec).unwrap();
        let horizon = madmax_core::steady::grid_units_round(Seconds::new(400.0)).unwrap();
        let events = materialize_faults(&FaultSpec::fatal(60.0, 5.0, 3), horizon).unwrap();
        assert!(!events.is_empty());
        let retry = RetryPolicy::retries(3);
        let faulty = scenario
            .serve_load_faulty(&spec, &costs, SimMode::Event, &events, &retry, None)
            .unwrap();
        let clean = scenario
            .serve_load_faulty(&spec, &costs, SimMode::Event, &[], &retry, None)
            .unwrap();
        assert!(faulty.report.availability < 1.0);
        assert!(faulty.report.retries > 0);
        assert!((clean.report.availability - 1.0).abs() < f64::EPSILON);
        assert!(faulty.report.makespan.as_secs() >= clean.report.makespan.as_secs());
    }
}
