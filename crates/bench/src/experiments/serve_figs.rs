//! Serve-mode scenarios (`fig_serve`): TTFT/TPOT sweeps over prompt and
//! decode lengths for the LLM zoo, flat vs pipelined decode, plus a
//! serve-mode design-space search (pipeline axes x decode batch) on a
//! bandwidth-constrained fabric.
//!
//! This is the inference half of the paper opened up by the `Workload`
//! API: a serve run is a compute-bound prefill followed by
//! bandwidth-bound autoregressive decode steps reading a growing
//! KV-cache, and the pipeline engine treats each decode step as a
//! microbatch unit so pp hides inter-stage latency across the token
//! stream.

use madmax_dse::{Explorer, PipelineAxes, SearchSpace, ServeAxes};
use madmax_engine::Scenario;
use madmax_hw::{catalog, ClusterSpec, DeviceScaling};
use madmax_model::{ModelArch, ModelId};
use madmax_parallel::{PipelineConfig, PipelineSchedule, Plan, ServeConfig, Workload};

const PROMPTS: [usize; 2] = [512, 2048];
const DECODES: [usize; 2] = [64, 256];
const DECODE_BATCH: usize = 256;

fn serve_row(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Result<(f64, f64, f64), String> {
    match Scenario::new(model, system)
        .plan_ref(plan)
        .workload_ref(workload)
        .run()
    {
        Ok(r) => {
            let s = r.serve.as_ref().expect("decode run has serve stats");
            Ok((
                s.ttft.as_ms(),
                s.tpot.as_ms(),
                r.serve_tokens_per_sec().unwrap_or(0.0),
            ))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Renders the serve-mode report: the (prompt x decode) latency sweep for
/// the LLM zoo over the hardware catalog's LLM systems, and the joint
/// (pipeline x decode-batch) search on a bandwidth-constrained fabric.
pub fn fig_serve(hooks: &crate::SearchHooks) -> String {
    let mut out = String::new();
    out.push_str("Serve-mode scenarios: prefill + token-level decode (Workload::serve)\n");
    out.push_str(&"=".repeat(98));
    out.push('\n');

    // ---- Part 1: TTFT/TPOT sweep, flat vs pipelined decode ----
    let systems: Vec<(String, ClusterSpec)> = vec![
        (
            catalog::llama_llm_system().name.clone(),
            catalog::llama_llm_system(),
        ),
        (
            "H100 SuperPod x16".to_owned(),
            catalog::h100_superpod_cluster(16),
        ),
    ];
    for (sys_name, system) in &systems {
        out.push_str(&format!(
            "\n--- {sys_name}: decode batch {DECODE_BATCH}, pp=1 (FSDP baseline) vs pp=8 mb=16 GPipe ---\n"
        ));
        for id in [ModelId::Llama, ModelId::Llama2, ModelId::Gpt3] {
            let model = id.build();
            let flat = Plan::fsdp_baseline(&model);
            let piped = flat.clone().with_pipeline(PipelineConfig::gpipe(8, 16));
            out.push_str(&format!("\n{}:\n", model.name));
            out.push_str(&format!(
                "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}\n",
                "prompt",
                "decode",
                "TTFT pp1",
                "TTFT pp8",
                "TPOT pp1",
                "TPOT pp8",
                "tok/s pp1",
                "tok/s pp8"
            ));
            for prompt in PROMPTS {
                for decode in DECODES {
                    let workload = Workload::serve(
                        ServeConfig::new(prompt, decode).with_decode_batch(DECODE_BATCH),
                    );
                    let a = serve_row(&model, system, &flat, &workload);
                    let b = serve_row(&model, system, &piped, &workload);
                    match (a, b) {
                        (Ok((t1, p1, s1)), Ok((t8, p8, s8))) => {
                            out.push_str(&format!(
                                "{prompt:>8} {decode:>8} {t1:>10.1}ms {t8:>10.1}ms \
                                 {p1:>10.2}ms {p8:>10.2}ms {s1:>14.0} {s8:>14.0}\n"
                            ));
                        }
                        (a, b) => {
                            let msg = a.err().or(b.err()).unwrap_or_default();
                            out.push_str(&format!("{prompt:>8} {decode:>8}  [{msg}]\n"));
                        }
                    }
                }
            }
        }
    }

    // ---- Part 2: serve-mode DSE on a bandwidth-constrained fabric ----
    let model = ModelId::Llama2.build();
    let slow = catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
    out.push_str(&format!(
        "\n--- Serve-mode DSE: {} on {} with 1/8 inter-node bandwidth ---\n",
        model.name, slow.name
    ));
    let workload = Workload::serve(ServeConfig::new(1024, 128));
    // The pp=1 reference is the *best flat mapping* (per-class strategies
    // and decode batch searched), not just the FSDP baseline — FSDP
    // re-gathers its shards every decode step and is a strawman for
    // serving.
    let flat_space = SearchSpace::strategies()
        .with_classes(vec![madmax_model::LayerClass::Transformer])
        .with_serve(ServeAxes::batches([128, 256, 512]));
    let flat = hooks
        .attach(
            Explorer::new(&model, &slow)
                .workload(workload.clone())
                .space(flat_space.clone()),
        )
        .explore()
        .expect("baseline serve mapping is feasible");
    hooks.record("fig_serve/flat", &flat.telemetry);
    let full_space = flat_space.with_pipeline(PipelineAxes {
        stages: vec![1, 2, 4, 8],
        microbatches: vec![8, 16],
        schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
    });
    let r = hooks
        .attach(
            Explorer::new(&model, &slow)
                .workload(workload)
                .space(full_space),
        )
        .explore()
        .expect("baseline serve mapping is feasible");
    hooks.record("fig_serve/joint", &r.telemetry);
    let best_stats = r.best.serve.as_ref().expect("serve winner has stats");
    out.push_str(&format!(
        "evaluated {} (plan x batch) candidates ({} OOM, {} unmappable)\n",
        r.evaluated, r.oom, r.unmappable
    ));
    out.push_str(&format!(
        "best flat (pp=1): {} @ batch {} -> {:.0} tokens/s out\n",
        flat.best_plan.summary(),
        flat.best.serve.as_ref().map_or(0, |s| s.decode_batch),
        flat.best.serve_tokens_per_sec().unwrap_or(0.0),
    ));
    let flat_tps = flat.best.serve_tokens_per_sec().unwrap_or(f64::MIN);
    let best_tps = r.best.serve_tokens_per_sec().unwrap_or(0.0);
    out.push_str(&format!(
        "best overall: {} @ batch {} -> {:.0} tokens/s out ({:.2}x over best flat), \
         TTFT {:.1} ms, TPOT {:.2} ms\n",
        r.best_plan.summary(),
        best_stats.decode_batch,
        best_tps,
        best_tps / flat_tps,
        best_stats.ttft.as_ms(),
        best_stats.tpot.as_ms(),
    ));
    out.push_str(&format!(
        "pipelined decode beats pp=1: {}\n",
        if r.pipeline_won() && best_tps > flat_tps {
            "yes"
        } else {
            "no"
        }
    ));

    out.push_str(
        "\nReading: prefill is compute-bound (TTFT tracks prompt length); decode is\n\
         bandwidth-bound (TPOT grows with the KV position and with parameter traffic).\n\
         The flat engine re-gathers FSDP shards every decode step — sharded weights are\n\
         not resident — while pipeline stages fetch their parameters once and then\n\
         stream decode units through, so on bandwidth-constrained fabrics pipelined\n\
         decode wins by hiding inter-stage latency across the token stream.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_dse_finds_pipelined_decode_on_constrained_fabric() {
        // The acceptance criterion: on a bandwidth-constrained system in
        // the catalog, the serve search's winner is pipelined.
        let model = ModelId::Llama2.build();
        let slow = catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
        let r = Explorer::new(&model, &slow)
            .workload(Workload::serve(ServeConfig::new(1024, 64)))
            .space(
                SearchSpace::default()
                    .with_pipeline(PipelineAxes {
                        stages: vec![1, 8],
                        microbatches: vec![16],
                        schedules: vec![PipelineSchedule::GPipe],
                    })
                    .with_serve(ServeAxes::batches([256])),
            )
            .explore()
            .unwrap();
        assert!(r.pipeline_won(), "winner: {}", r.best_plan.summary());
        assert!(r.speedup() > 1.05, "speedup {:.3}", r.speedup());
    }

    #[test]
    fn report_renders_ttft_tpot_columns() {
        let s = fig_serve(&crate::SearchHooks::with_threads(2));
        assert!(s.contains("TTFT pp1") && s.contains("TPOT pp8"));
        assert!(s.contains("Serve-mode DSE"));
        assert!(s.contains("pipelined decode beats pp=1: yes"));
    }
}
