//! Experiments regenerating the validation figures: Fig. 6 (sample
//! streams), Fig. 7 (DLRM-A serialized/overlapped validation), Fig. 8 (ViT
//! MFU validation), and Fig. 9 (FSDP prefetch overlap).

use madmax_core::validation::{accuracy_pct, reference};
use madmax_core::{StreamId, UtilizationModel};
use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::vit::{vit, VIT_FAMILY};
use madmax_model::{DlrmVariant, ModelId};
use madmax_parallel::{Plan, Workload};
use madmax_report::{heading, render_timeline, stacked_bars, Segment, Table, TimelineOp};

/// Fig. 6's scenario (DLRM-A-Transformer inference on ZionEX under the
/// FSDP baseline) exported as a Chrome trace — the `--emit-trace` payload
/// of the `fig06_sample_streams` bin.
pub fn fig06_chrome_trace() -> madmax_obs::ChromeTrace {
    let model = madmax_model::dlrm::dlrm_a(DlrmVariant::Transformer);
    let sys = catalog::zionex_dlrm_system();
    let (_, trace, sched) = Scenario::new(&model, &sys)
        .plan(Plan::fsdp_baseline(&model))
        .workload(Workload::inference())
        .run_with_trace()
        .expect("baseline mapping is feasible");
    madmax_obs::ChromeTrace::from_schedule(&trace, &sched)
}

/// Fig. 6: generated compute/communication streams for the forward pass of
/// the DLRM-Transformer example, with the exposed All2All visible.
pub fn fig06() -> String {
    let mut out = heading("Fig. 6: Sample generated GPU compute and communication streams");
    let model = madmax_model::dlrm::dlrm_a(DlrmVariant::Transformer);
    let sys = catalog::zionex_dlrm_system();
    let plan = Plan::fsdp_baseline(&model);
    let (report, trace, sched) = Scenario::new(&model, &sys)
        .plan(plan)
        .workload(Workload::inference())
        .run_with_trace()
        .expect("baseline mapping is feasible");

    let ops: Vec<TimelineOp> = trace
        .ops()
        .iter()
        .zip(&sched.windows)
        .map(|(op, w)| TimelineOp {
            name: op.name.to_string(),
            lane: match op.stream {
                StreamId::Compute => "compute".to_owned(),
                StreamId::Comm => "comm".to_owned(),
                StreamId::GradComm => "grad-comm".to_owned(),
                StreamId::StageCompute(s) => format!("stage{s}.compute"),
                StreamId::StageComm(s) => format!("stage{s}.comm"),
                StreamId::StageGradComm(s) => format!("stage{s}.grad-comm"),
            },
            start: w.start.as_ms(),
            finish: w.finish.as_ms(),
        })
        .collect();
    out.push_str(&render_timeline(&ops, 110));
    out.push_str(&format!(
        "\nForward pass on {}: iteration {:.2} ms, exposed communication {:.2} ms\n\
         ({:.1}% of communication time). The embedding All2All overlaps the\n\
         bottom-MLP compute but blocks the transformer interaction, exactly as\n\
         in the paper's Fig. 6.\n",
        sys.name,
        report.iteration_time.as_ms(),
        report.exposed_comm.as_ms(),
        report.exposed_fraction() * 100.0
    ));
    out
}

/// Fig. 7: DLRM-A serialized and overlapped execution for 8- and 128-GPU
/// ZionEX deployments.
pub fn fig07() -> String {
    let mut out = heading("Fig. 7: DLRM-A serialized and overlapped execution validation");
    let model = ModelId::DlrmA.build();

    let mut rows: Vec<(String, Vec<Segment>)> = Vec::new();
    let mut summary = Table::new([
        "Deployment",
        "Serialized (ms)",
        "Overlapped (ms)",
        "% comm exposed",
        "Throughput (MQPS)",
    ]);

    for nodes in [1usize, 16] {
        let gpus = nodes * 8;
        let sys = catalog::zionex_dlrm_system().with_num_nodes(nodes);
        // Keep the per-GPU batch at the production 512 samples so the two
        // deployments isolate network-scaling effects (the 8-GPU point is
        // a single-node study; embedding capacity is waived for it as the
        // full model cannot physically fit on 8 devices).
        let mut scaled = model.clone();
        scaled.global_batch = 512 * gpus;
        let mut plan = Plan::fsdp_baseline(&scaled);
        plan.options.ignore_memory_limits = nodes == 1;
        let r = Scenario::new(&scaled, &sys)
            .plan(plan)
            .run()
            .expect("mapping simulates");

        let label = format!("{gpus}-GPU");
        let mut segs = vec![
            Segment {
                name: "emb-lookup".into(),
                value: r.lookup_time.as_ms(),
            },
            Segment {
                name: "gemm".into(),
                value: r.gemm_time.as_ms(),
            },
        ];
        for (k, t) in &r.comm_by_collective {
            segs.push(Segment {
                name: k.to_string(),
                value: t.as_ms(),
            });
        }
        rows.push((format!("{label} serialized"), segs));
        rows.push((
            format!("{label} overlapped"),
            vec![Segment {
                name: "wall-clock".into(),
                value: r.iteration_time.as_ms(),
            }],
        ));
        summary.row([
            label,
            format!("{:.2}", r.serialized_time.as_ms()),
            format!("{:.2}", r.iteration_time.as_ms()),
            format!("{:.1}%", r.exposed_fraction() * 100.0),
            format!("{:.2}", r.mqps()),
        ]);
    }
    out.push_str(&stacked_bars(&rows, 60, "ms"));
    out.push('\n');
    out.push_str(&summary.render());
    out.push_str(&format!(
        "\nPaper reference (128 GPUs): serialized {:.2} ms measured / {:.2} ms paper model;\n\
         {:.1}% comm exposed measured; {:.1} MQPS measured. The single-node deployment\n\
         shows shorter communication (NVLink-only All2All), the paper's network\n\
         scaling effect.\n",
        reference::DLRM_A_SERIALIZED_MS,
        reference::PAPER_DLRM_A_SERIALIZED_MS,
        reference::DLRM_A_EXPOSED_PCT,
        reference::DLRM_A_MQPS,
    ));
    out
}

/// Fig. 8: ViT training validation across model sizes, global batch sizes,
/// and GPU counts on AWS `p4d.24xlarge`-class clusters, using the
/// workload-dependent SM-utilization (MFU) model.
pub fn fig08() -> String {
    let mut out = heading("Fig. 8: ViT MFU across model scale, batch size, and GPU count");
    let mut t = Table::new(["Model", "Global batch", "GPUs", "Iter (ms)", "MFU"]);
    let util = UtilizationModel::vit_default();

    let mut mfus: Vec<((usize, usize), f64)> = Vec::new();
    for cfg in &VIT_FAMILY {
        for batch in [2048usize, 4096] {
            for gpus in [32usize, 128, 512, 2048] {
                let model = vit(cfg, batch);
                // p4d-class cluster: A100-40GB nodes on a 400 Gbps fabric
                // (4x lower per-GPU inter-node BW than Table III systems).
                let mut sys = catalog::zionex_dlrm_system().with_num_nodes(gpus / 8);
                sys.device.inter_node_bw = madmax_hw::units::BytesPerSec::from_gbps(50.0);
                let plan = Plan::fsdp_baseline(&model);
                let Ok(r) = Scenario::new(&model, &sys)
                    .plan(plan)
                    .utilization(util)
                    .run()
                else {
                    continue; // very large models need more GPUs
                };
                // Useful FLOPs exclude checkpoint recompute (standard MFU).
                let useful = model.stats().flops_fwd_per_sample.value() * batch as f64 * 3.0;
                let peak = sys.device.peak.fp16.value() * gpus as f64;
                let mfu = useful / (r.iteration_time.as_secs() * peak);
                mfus.push(((cfg.hidden, gpus), mfu));
                t.row([
                    cfg.name.to_owned(),
                    batch.to_string(),
                    gpus.to_string(),
                    format!("{:.1}", r.iteration_time.as_ms()),
                    format!("{:.1}%", mfu * 100.0),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe measured side of the paper's Fig. 8 (93.88% average MFU prediction\n\
         accuracy) comes from Meta-internal AWS traces; this reproduction reports\n\
         the model's predicted MFU series. Shape checks: MFU falls as GPU count\n\
         grows at fixed global batch (smaller per-GPU work -> lower SM\n\
         utilization) and rises with model scale at fixed resources.\n",
    );
    out
}

/// Fig. 9: communication overlap of FSDP with and without AllGather
/// prefetching, vs the production LLaMA observation.
pub fn fig09() -> String {
    let mut out = heading("Fig. 9: Optimized FSDP with prefetching");
    let model = ModelId::Llama2.build();
    let sys = catalog::llama_llm_system();
    let mut t = Table::new([
        "Implementation",
        "Iter (s)",
        "Comm overlap",
        "Exposed comm (ms)",
    ]);
    let mut overlaps = [0.0f64; 2];
    for (i, prefetch) in [false, true].into_iter().enumerate() {
        let mut plan = Plan::fsdp_baseline(&model);
        plan.options.fsdp_prefetch = prefetch;
        let r = Scenario::new(&model, &sys).plan(plan).run().unwrap();
        overlaps[i] = r.overlap_fraction() * 100.0;
        t.row([
            if prefetch {
                "FSDP + prefetch".to_owned()
            } else {
                "vanilla FSDP".to_owned()
            },
            format!("{:.2}", r.iteration_time.as_secs()),
            format!("{:.1}%", r.overlap_fraction() * 100.0),
            format!("{:.1}", r.exposed_comm.as_ms()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nProduction LLaMA pre-training with prefetch observed {:.0}% overlap; the\n\
         paper's model predicted {:.0}%. This reproduction predicts {:.1}% with\n\
         prefetch (accuracy {:.1}% vs observation), and {:.1}% without — earlier\n\
         layers' weight AllGathers hide behind later layers' gradient compute\n\
         exactly as in the paper's stream diagram.\n",
        reference::FSDP_PREFETCH_OVERLAP_OBSERVED_PCT,
        reference::PAPER_FSDP_PREFETCH_OVERLAP_PCT,
        overlaps[1],
        accuracy_pct(reference::FSDP_PREFETCH_OVERLAP_OBSERVED_PCT, overlaps[1]),
        overlaps[0],
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_shows_two_streams() {
        let s = fig06();
        assert!(s.contains("compute"));
        assert!(s.contains("comm"));
        assert!(s.contains("a2a"));
    }

    #[test]
    fn fig07_has_both_deployments() {
        let s = fig07();
        assert!(s.contains("8-GPU"));
        assert!(s.contains("128-GPU"));
        assert!(s.contains("emb-lookup"));
    }

    #[test]
    fn fig08_mfu_trends() {
        let s = fig08();
        assert!(s.contains("ViT-L"));
        assert!(s.contains("ViT-120B"));
        assert!(s.contains("MFU"));
    }

    #[test]
    fn fig09_prefetch_increases_overlap() {
        let s = fig09();
        assert!(s.contains("FSDP + prefetch"));
        assert!(s.contains("vanilla FSDP"));
    }
}
