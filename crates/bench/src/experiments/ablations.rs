//! Ablation studies for the design choices called out in DESIGN.md §8:
//! hierarchical vs flat collective models, FSDP prefetching, slowest-link
//! All2All, and constant vs workload-dependent compute utilization.

use madmax_core::{FlatWorstLink, UtilizationModel};
use madmax_engine::Scenario;
use madmax_hw::catalog;
use madmax_model::vit::{vit, VIT_FAMILY};
use madmax_model::ModelId;
use madmax_parallel::Plan;
use madmax_report::{heading, Table};

/// Runs every ablation and renders a combined report.
pub fn run() -> String {
    let mut out = heading("Ablations: modeling design choices");

    // 1. Hierarchical vs flat-worst-link collective model.
    out.push_str("\n(1) Collective cost model: hierarchical NCCL vs flat worst-link\n");
    let mut t = Table::new([
        "Workload",
        "Hierarchical iter (ms)",
        "Flat iter (ms)",
        "Flat overestimates comm by",
    ]);
    for id in [ModelId::DlrmA, ModelId::Gpt3] {
        let model = id.build();
        let sys = if id.is_dlrm() {
            catalog::zionex_dlrm_system()
        } else {
            catalog::llama_llm_system()
        };
        let plan = Plan::fsdp_baseline(&model);
        let hier = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .run()
            .unwrap();
        let flat_model = FlatWorstLink;
        let flat = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .collectives(&flat_model)
            .run()
            .unwrap();
        t.row([
            id.to_string(),
            format!("{:.2}", hier.iteration_time.as_ms()),
            format!("{:.2}", flat.iteration_time.as_ms()),
            format!("{:.2}x", flat.comm_time / hier.comm_time),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Without the hierarchical decomposition, ring collectives on multi-node\n\
         systems are billed entirely at NIC bandwidth; the Table I validation\n\
         would miss by a wide margin.\n",
    );

    // 2. FSDP prefetching (the Fig. 9 optimization) across the LLM suite.
    out.push_str("\n(2) FSDP AllGather prefetching\n");
    let mut t = Table::new([
        "Workload",
        "Overlap w/o prefetch",
        "Overlap w/ prefetch",
        "Iter speedup",
    ]);
    for id in [ModelId::Gpt3, ModelId::Llama, ModelId::Llama2] {
        let model = id.build();
        let sys = catalog::llama_llm_system();
        let mut plan = Plan::fsdp_baseline(&model);
        plan.options.fsdp_prefetch = false;
        let without = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .run()
            .unwrap();
        plan.options.fsdp_prefetch = true;
        let with = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .run()
            .unwrap();
        t.row([
            id.to_string(),
            format!("{:.1}%", without.overlap_fraction() * 100.0),
            format!("{:.1}%", with.overlap_fraction() * 100.0),
            format!("{:.2}x", without.iteration_time / with.iteration_time),
        ]);
    }
    out.push_str(&t.render());

    // 3. Constant vs workload-dependent utilization on ViT scaling.
    out.push_str("\n(3) Compute-utilization model on ViT-G (global batch 4096)\n");
    let mut t = Table::new([
        "GPUs",
        "Constant-util MFU-proxy iter (ms)",
        "Workload-dependent iter (ms)",
    ]);
    let cfg = &VIT_FAMILY[2];
    for gpus in [32usize, 256, 2048] {
        let model = vit(cfg, 4096);
        let sys = catalog::zionex_dlrm_system().with_num_nodes(gpus / 8);
        let plan = Plan::fsdp_baseline(&model);
        let constant = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .utilization(UtilizationModel::Constant)
            .run()
            .unwrap();
        let dependent = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .utilization(UtilizationModel::vit_default())
            .run()
            .unwrap();
        t.row([
            gpus.to_string(),
            format!("{:.1}", constant.iteration_time.as_ms()),
            format!("{:.1}", dependent.iteration_time.as_ms()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "The workload-dependent model penalizes small per-GPU batches — the\n\
         effect the paper needed for its ViT MFU validation (Fig. 8).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_render_all_three_studies() {
        let s = super::run();
        assert!(s.contains("(1) Collective cost model"));
        assert!(s.contains("(2) FSDP AllGather prefetching"));
        assert!(s.contains("(3) Compute-utilization model"));
        assert!(s.contains("GPT-3"));
    }

    #[test]
    fn flat_model_overestimates() {
        let s = super::run();
        // The "overestimates by" column must show factors > 1.
        assert!(s.contains('x'));
        assert!(!s.contains("0.9x"));
    }
}
