//! Experiments regenerating the hardware-exploration figures: Fig. 1
//! (pareto teaser), Fig. 16 (cloud instances), Fig. 17 (GPU generations),
//! Fig. 18 (commodity hardware), Fig. 19 (scaling study), and Fig. 20
//! (execution breakdowns under scaling).

use madmax_cloud::{frontier, sweep as cloud_sweep};
use madmax_core::IterationReport;
use madmax_dse::{scaling_study, Explorer, ScalingAxis};
use madmax_engine::{simulate, Scenario};
use madmax_hw::catalog;
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{HierStrategy, Plan, Strategy, Workload};
use madmax_report::{bar_chart, heading, stacked_bars, Bar, Segment, Table};

/// Figs. 1 and 16: training time vs normalized aggregate GPU-hours across
/// cloud instances, default FSDP vs MAD-Max-optimized mappings.
pub fn fig16(title: &str) -> String {
    let mut out = heading(title);
    let model = ModelId::DlrmA.build();
    let points = cloud_sweep(&model, &[16, 32, 64]);

    let mut t = Table::new([
        "Instance",
        "#",
        "GPUs",
        "Mapping",
        "Elapsed (hr / 1B samples)",
        "Norm. agg. GPU-hours",
    ]);
    for p in &points {
        t.row([
            p.instance.clone(),
            p.instances.to_string(),
            p.gpus.to_string(),
            if p.optimized {
                "MAD-Max".to_owned()
            } else {
                "default FSDP".to_owned()
            },
            format!("{:.3}", p.elapsed_hours),
            format!("{:.1}", p.norm_gpu_hours),
        ]);
    }
    out.push_str(&t.render());

    let default_points: Vec<_> = points.iter().filter(|p| !p.optimized).cloned().collect();
    let all_frontier = frontier(&points);
    let default_frontier = frontier(&default_points);
    out.push_str("\nPareto frontier, default FSDP mappings:\n");
    let mut t = Table::new(["Config", "Elapsed (hr)", "Norm. GPU-hours"]);
    for p in &default_frontier {
        t.row([
            format!("{} x{}", p.payload.instance, p.payload.instances),
            format!("{:.3}", p.payload.elapsed_hours),
            format!("{:.1}", p.payload.norm_gpu_hours),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nPareto frontier with MAD-Max mappings included:\n");
    let mut t = Table::new(["Config", "Mapping", "Elapsed (hr)", "Norm. GPU-hours"]);
    for p in &all_frontier {
        t.row([
            format!("{} x{}", p.payload.instance, p.payload.instances),
            if p.payload.optimized {
                "MAD-Max".to_owned()
            } else {
                "default".to_owned()
            },
            format!("{:.3}", p.payload.elapsed_hours),
            format!("{:.1}", p.payload.norm_gpu_hours),
        ]);
    }
    out.push_str(&t.render());

    // Headline deltas at matched configurations.
    let mut best_time_cut = 0.0f64;
    let mut best_resource_cut = 0.0f64;
    for d in &default_points {
        if let Some(o) = points
            .iter()
            .find(|p| p.optimized && p.instance == d.instance && p.instances == d.instances)
        {
            best_time_cut = best_time_cut.max(1.0 - o.elapsed_hours / d.elapsed_hours);
            best_resource_cut = best_resource_cut.max(1.0 - o.norm_gpu_hours / d.norm_gpu_hours);
        }
    }
    out.push_str(&format!(
        "\nLargest matched-configuration improvement from MAD-Max mappings:\n\
         {:.0}% training time and {:.0}% normalized compute-resource reduction\n\
         (paper reports up to 33% and 21% for this study).\n",
        best_time_cut * 100.0,
        best_resource_cut * 100.0
    ));
    out
}

/// Fig. 17: DLRM-A pre-training on A100 vs H100 vs H100-SuperPOD across
/// parallelization strategies.
pub fn fig17() -> String {
    let mut out = heading("Fig. 17: GPU generations (A100, H100, H100 SuperPOD)");
    let model = ModelId::DlrmA.build();
    let systems = [
        ("A100 ZionEX", catalog::zionex_dlrm_system()),
        ("H100 cluster", catalog::h100_cluster(16)),
        ("H100 SuperPOD", catalog::h100_superpod_cluster(16)),
    ];
    let strategies = [
        HierStrategy::flat(Strategy::Fsdp),
        HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        HierStrategy::two_level(Strategy::Fsdp, Strategy::Ddp),
        HierStrategy::two_level(Strategy::Tp, Strategy::Fsdp),
    ];
    let a100_fsdp = simulate(
        &model,
        &systems[0].1,
        &Plan::fsdp_baseline(&model),
        Workload::pretrain(),
    )
    .unwrap();

    let mut t = Table::new(["Dense strategy", "A100", "H100", "H100 SuperPOD"]);
    let mut best: Vec<f64> = vec![0.0; 3];
    for strat in strategies {
        let mut cells = vec![strat.to_string()];
        for (i, (_, sys)) in systems.iter().enumerate() {
            let plan = Plan::fsdp_baseline(&model).with_strategy(LayerClass::Dense, strat);
            match simulate(&model, sys, &plan, Workload::pretrain()) {
                Ok(r) => {
                    let x = r.samples_per_sec() / a100_fsdp.samples_per_sec();
                    best[i] = best[i].max(x);
                    cells.push(format!("{x:.2}x"));
                }
                Err(_) => cells.push("OOM".to_owned()),
            }
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n(normalized to A100 FSDP) Best per system: A100 {:.2}x, H100 {:.2}x,\n\
         SuperPOD {:.2}x. Upgrading only the scale-out fabric (H100 -> SuperPOD)\n\
         yields {:.2}x because it directly accelerates the blocking All2All\n\
         (paper: ~1.82x).\n",
        best[0],
        best[1],
        best[2],
        best[2] / best[1].max(f64::MIN_POSITIVE)
    ));
    out
}

/// Fig. 18: MAD-Max-identified strategies on commodity accelerators.
/// `hooks` sizes the explorer's worker pool and receives each search's
/// progress events and telemetry.
pub fn fig18(hooks: &crate::SearchHooks) -> String {
    let mut out = heading("Fig. 18: Commodity hardware (MI250X, MI300X, Gaudi2)");
    let model = ModelId::DlrmA.build();
    let clusters = [
        catalog::zionex_dlrm_system(),
        catalog::mi250x_cluster(),
        catalog::mi300x_cluster(),
        catalog::gaudi2_cluster(),
    ];
    let mut bars = Vec::new();
    let mut t = Table::new([
        "Platform",
        "FSDP baseline (MQPS)",
        "MAD-Max (MQPS)",
        "Speedup",
        "Strategies",
    ]);
    for sys in &clusters {
        let r = hooks.attach(Explorer::new(&model, sys)).explore().unwrap();
        hooks.record(&format!("fig18/{}", sys.name), &r.telemetry);
        t.row([
            sys.name.clone(),
            format!("{:.2}", r.baseline.mqps()),
            format!("{:.2}", r.best.mqps()),
            format!("{:.2}x", r.speedup()),
            r.winning_strategies(),
        ]);
        bars.push(Bar::new(sys.name.clone(), r.speedup()));
    }
    out.push_str(&bar_chart(&bars, 40, "x over FSDP"));
    out.push('\n');
    out.push_str(&t.render());
    out.push_str(
        "\nPlatforms with larger HBM (80+ GB) let MAD-Max replicate more dense\n\
         components for higher pre-training throughput (Insight 9).\n",
    );
    out
}

/// Fig. 19: individually vs concurrently scaling hardware capabilities by
/// 10x for DLRM-A and GPT-3, pre-training and inference.
pub fn fig19() -> String {
    let mut out = heading("Fig. 19: Hardware capability scaling study (10x)");
    let cases = [
        ("DLRM-A", ModelId::DlrmA, catalog::zionex_dlrm_system()),
        ("GPT-3", ModelId::Gpt3, catalog::llama_llm_system()),
    ];
    for (name, id, sys) in cases {
        let model = id.build();
        for task in [Workload::pretrain(), Workload::inference()] {
            let points = scaling_study(&model, &sys, &task, 10.0).unwrap();
            out.push_str(&format!("\n{name} {task}:\n"));
            let bars: Vec<Bar> = points
                .iter()
                .map(|p| Bar::new(format!("10x {}", p.axis), p.speedup))
                .collect();
            out.push_str(&bar_chart(&bars, 40, "x speedup"));
            let all = points.iter().find(|p| p.axis == ScalingAxis::All).unwrap();
            let best_single = points
                .iter()
                .filter(|p| p.axis != ScalingAxis::All)
                .map(|p| p.speedup)
                .fold(0.0, f64::max);
            out.push_str(&format!(
                "single-axis best {best_single:.2}x vs all-axes {:.2}x\n",
                all.speedup
            ));
        }
    }
    out.push_str(
        "\nNo single capability upgrade approaches 10x (sub-linear); improving\n\
         everything concurrently compounds overlap and newly-unlocked mappings\n\
         (Insight 10).\n",
    );
    out
}

fn breakdown_rows(label: &str, r: &IterationReport) -> Vec<(String, Vec<Segment>)> {
    let mut serialized = vec![
        Segment {
            name: "emb-lookup".into(),
            value: r.lookup_time.as_ms(),
        },
        Segment {
            name: "gemm".into(),
            value: r.gemm_time.as_ms(),
        },
    ];
    for (k, t) in &r.comm_by_collective {
        serialized.push(Segment {
            name: k.to_string(),
            value: t.as_ms(),
        });
    }
    let mut overlap = Vec::new();
    for (k, t) in &r.comm_by_collective {
        let exposed = r.exposed_by_collective.get(k).copied().unwrap_or_default();
        overlap.push(Segment {
            name: format!("{k}-hidden"),
            value: (*t - exposed).as_ms().max(0.0),
        });
        overlap.push(Segment {
            name: format!("{k}-exposed"),
            value: exposed.as_ms(),
        });
    }
    vec![
        (format!("{label} serialized"), serialized),
        (format!("{label} comm overlap"), overlap),
    ]
}

/// Fig. 20: serialized execution and communication-overlap breakdowns
/// explaining where Fig. 19's speedups come from.
pub fn fig20() -> String {
    let mut out = heading("Fig. 20: Execution breakdowns under hardware scaling");
    let cases = [
        ("DLRM-A", ModelId::DlrmA, catalog::zionex_dlrm_system()),
        ("GPT-3", ModelId::Gpt3, catalog::llama_llm_system()),
    ];
    for (name, id, sys) in cases {
        let model = id.build();
        let plan = Plan::fsdp_baseline(&model);
        out.push_str(&format!("\n{name} pre-training:\n"));
        let mut rows = Vec::new();
        for (label, axis) in [
            ("base", None),
            ("10x compute", Some(ScalingAxis::Compute)),
            ("10x mem BW", Some(ScalingAxis::MemBandwidth)),
            ("10x inter-node BW", Some(ScalingAxis::InterBandwidth)),
            ("10x all", Some(ScalingAxis::All)),
        ] {
            let scaled = match axis {
                Some(a) => sys.scaled(&a.scaling(10.0)),
                None => sys.clone(),
            };
            let r = Scenario::new(&model, &scaled)
                .plan(plan.clone())
                .run()
                .unwrap();
            rows.extend(breakdown_rows(label, &r));
        }
        out.push_str(&stacked_bars(&rows, 60, "ms"));
    }
    out.push_str(
        "\nSpeedups come from shrinking the dominant serialized segment (All2All\n\
         for DLRM-A, GEMM for GPT-3) and from converting exposed communication\n\
         into hidden communication.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_superpod_wins() {
        let s = fig17();
        assert!(s.contains("SuperPOD"));
        assert!(s.contains("normalized to A100 FSDP"));
    }

    #[test]
    fn fig18_covers_all_platforms() {
        let s = fig18(&crate::SearchHooks::with_threads(2));
        for p in ["MI250X", "MI300X", "Gaudi2"] {
            assert!(s.contains(p), "missing {p}");
        }
    }

    #[test]
    fn fig19_has_four_cases() {
        let s = fig19();
        assert_eq!(s.matches("single-axis best").count(), 4);
    }

    #[test]
    fn fig20_breaks_down_both_models() {
        let s = fig20();
        assert!(s.contains("DLRM-A pre-training"));
        assert!(s.contains("GPT-3 pre-training"));
        assert!(s.contains("All2All"));
    }
}
