//! Experiments regenerating Fig. 3 (individual model characterization) and
//! Fig. 4 (fleet-wide communication characterization).

use madmax_fleet::{characterize, default_fleet};
use madmax_hw::units::{human_bytes, human_flops, human_params};
use madmax_model::zoo::characterization_suite;
use madmax_model::BatchUnit;
use madmax_report::{bar_chart, heading, stacked_bars, Bar, Segment, Table};

/// Fig. 3: capacity, compute, and sparse-lookup-bandwidth requirements of
/// six real-world models, spanning orders of magnitude.
pub fn fig03() -> String {
    let mut out = heading("Fig. 3: Model-level system resource requirements");
    let suite = characterization_suite();

    let mut t = Table::new([
        "Model",
        "(a) Capacity (params)",
        "Embedding fraction",
        "(b) FLOPs per sample/token",
        "(c) Lookup bytes per sample/token",
    ]);
    for m in &suite {
        let s = m.stats();
        let (flops, lookup) = match s.batch_unit {
            BatchUnit::Samples => (
                s.flops_fwd_per_sample.value(),
                s.lookup_bytes_per_sample.value(),
            ),
            BatchUnit::Tokens => (
                s.flops_fwd_per_token().value(),
                s.lookup_bytes_per_token().value(),
            ),
        };
        t.row([
            m.name.clone(),
            human_params(s.params_total),
            format!("{:.2}%", s.embedding_param_fraction() * 100.0),
            human_flops(flops),
            human_bytes(lookup),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(a) Parameter capacity (log-scaled bars, billions):\n");
    let bars: Vec<Bar> = suite
        .iter()
        .map(|m| Bar::new(m.name.clone(), (m.stats().params_total / 1e9).log10()))
        .collect();
    out.push_str(&bar_chart(&bars, 40, "log10(B params)"));

    out.push_str(
        "\nO1: recommendation models hold 2-68x more parameters than LLMs and are\n\
         ~100% embeddings; O2: LLMs need orders of magnitude more FLOPs while\n\
         DLRMs need >20x the sparse lookup bandwidth.\n",
    );
    out
}

/// Fig. 4: fleet-wide training characterization over the synthetic fleet.
pub fn fig04() -> String {
    let mut out = heading("Fig. 4: Fleet-wide training characterization");
    let c = characterize(&default_fleet()).expect("default fleet is feasible");

    out.push_str("(a) GPU cycle shares per workload family:\n");
    let rows: Vec<(String, Vec<Segment>)> = c
        .families
        .iter()
        .map(|(fam, agg)| {
            (
                fam.to_string(),
                vec![
                    Segment {
                        name: "compute".into(),
                        value: agg.cycles.compute * 100.0,
                    },
                    Segment {
                        name: "exposed-comm".into(),
                        value: agg.cycles.exposed_comm * 100.0,
                    },
                    Segment {
                        name: "exposed-memcpy".into(),
                        value: agg.cycles.exposed_memcpy * 100.0,
                    },
                    Segment {
                        name: "idle".into(),
                        value: agg.cycles.idle * 100.0,
                    },
                ],
            )
        })
        .collect();
    out.push_str(&stacked_bars(&rows, 50, "% of cycles"));

    out.push_str("\n(b) Fraction of communication overlapped with compute:\n");
    let bars: Vec<Bar> = c
        .families
        .iter()
        .map(|(fam, agg)| Bar::new(fam.to_string(), agg.comm_overlapped * 100.0))
        .collect();
    out.push_str(&bar_chart(&bars, 40, "%"));

    out.push_str("\n(c) Communication-collective mix per family:\n");
    let mut t = Table::new(["Family", "Collective", "Share of comm time"]);
    for (fam, agg) in &c.families {
        for (k, v) in &agg.collective_mix {
            t.row([fam.to_string(), k.to_string(), format!("{:.1}%", v * 100.0)]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nPer-job drill-down:\n");
    let mut t = Table::new(["Job", "Family", "Iter (ms)", "Comm exposed", "Overlap"]);
    for (name, fam, r) in &c.jobs {
        t.row([
            name.clone(),
            fam.to_string(),
            format!("{:.2}", r.iteration_time.as_ms()),
            format!("{:.1}%", r.exposed_fraction() * 100.0),
            format!("{:.1}%", r.overlap_fraction() * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nO3: compute + exposed communication dominate observable cycles.\n\
         O4: LLM jobs overlap more communication than DLRM jobs; DLRM traffic\n\
         is All2All-heavy while LLM traffic is ring-collective-heavy.\n\
         (Fleet composition is synthetic; see DESIGN.md section 3.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_contains_suite_and_observations() {
        let s = fig03();
        assert!(s.contains("DLRM-A"));
        assert!(s.contains("GPT-3"));
        assert!(s.contains("O1"));
    }

    #[test]
    fn fig04_reports_both_families() {
        let s = fig04();
        assert!(s.contains("DLRM"));
        assert!(s.contains("LLM"));
        assert!(s.contains("exposed-comm"));
        assert!(s.contains("All2All"));
    }
}
