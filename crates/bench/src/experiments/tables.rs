//! Experiments regenerating the paper's Tables I-IV.

use madmax_core::validation;
use madmax_hw::catalog;
use madmax_hw::units::{human_bytes, human_flops, human_params};
use madmax_hw::CommLevel;
use madmax_model::{BatchUnit, ModelId};
use madmax_report::{heading, Table};

/// Table I: validation of first-order execution metrics against measured
/// production runs, with both the paper model's and our predictions.
pub fn table1() -> String {
    let mut out = heading("Table I: Validation of first-order execution metrics");
    let mut t = Table::new([
        "Evaluation metric",
        "Measured",
        "Paper model",
        "This repro",
        "Accuracy",
    ]);
    for row in validation::table_i().expect("baseline mappings are feasible") {
        t.row([
            format!("{} ({})", row.metric, row.unit),
            format!("{:.2}", row.measured),
            row.paper_model
                .map_or("-".to_owned(), |v| format!("{v:.2}")),
            format!("{:.2}", row.predicted),
            format!("{:.2}%", row.accuracy()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nMeasured values are the paper's published production measurements;\n\
         accuracy = 1 - |measured - predicted| / measured, as in the paper.\n",
    );
    out
}

/// Table II: the target model suite by key model-level characteristics.
pub fn table2() -> String {
    let mut out = heading("Table II: Target models and key model-level characteristics");
    let mut t = Table::new([
        "Model",
        "# Parameters",
        "FLOPs/sample-or-token",
        "Sparse lookup bytes",
        "Global batch",
        "Context",
    ]);
    for id in ModelId::ALL {
        let m = id.build();
        let s = m.stats();
        let (flops, lookup) = match s.batch_unit {
            BatchUnit::Samples => (
                s.flops_fwd_per_sample.value(),
                s.lookup_bytes_per_sample.value(),
            ),
            BatchUnit::Tokens => (
                s.flops_fwd_per_token().value(),
                s.lookup_bytes_per_token().value(),
            ),
        };
        let batch = match s.batch_unit {
            BatchUnit::Samples => format!("{}K", s.global_batch / 1024),
            BatchUnit::Tokens => format!(
                "{} seqs ({:.1}M tokens)",
                s.global_batch,
                m.tokens_per_iteration() / 1e6
            ),
        };
        let ctx = if s.context_length <= 1 {
            "N/A".to_owned()
        } else {
            s.context_length.to_string()
        };
        t.row([
            id.to_string(),
            human_params(s.params_total),
            human_flops(flops),
            human_bytes(lookup),
            batch,
            ctx,
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nPaper targets: DLRM-A 793B/638M/22.61MB; DLRM-A Transformer 795B/2.6B/13.19MB;\n\
         DLRM-A MoE 957M FLOPs; DLRM-B 332B/60M; DLRM-B Transformer 333B/2.1B;\n\
         DLRM-B MoE 90M FLOPs; GPT-3 175B/350B/49.2KB; LLaMA 65.2B/130.4B/32.8KB;\n\
         LLaMA2 70B/140B; LLM-MoE 1.8T/550B. DLRM-B lookup volumes are calibrated\n\
         against the Table I throughput validation (see DESIGN.md).\n",
    );
    out
}

/// Table III: the two baseline training systems and their aggregates.
pub fn table3() -> String {
    let mut out = heading("Table III: Baseline distributed systems");
    let mut t = Table::new(["", "DLRM training system", "LLM training system"]);
    let dlrm = catalog::zionex_dlrm_system();
    let llm = catalog::llama_llm_system();
    let row = |label: &str, f: &dyn Fn(&madmax_hw::ClusterSpec) -> String| {
        [label.to_owned(), f(&dlrm), f(&llm)]
    };
    t.row(row("Base device", &|c| c.device.name.clone()));
    t.row(row("Devices per node", &|c| c.devices_per_node.to_string()));
    t.row(row("# nodes", &|c| c.num_nodes.to_string()));
    t.row(row("Peak TF32 throughput", &|c| {
        format!("{:.0} PFLOPS", c.aggregate_peak_tf32().as_pflops())
    }));
    t.row(row("HBM capacity", &|c| {
        format!("{:.1} TB", c.aggregate_hbm_capacity().as_tb())
    }));
    t.row(row("HBM bandwidth", &|c| {
        format!("{:.0} TB/s", c.aggregate_hbm_bw().as_tb())
    }));
    t.row(row("Intra-node interconnect BW (unidir)", &|c| {
        format!(
            "{:.1} TB/s",
            c.aggregate_link_bw(CommLevel::IntraNode).as_tb()
        )
    }));
    t.row(row("Inter-node fabric", &|c| c.inter_fabric.to_string()));
    t.row(row("Inter-node interconnect BW (unidir)", &|c| {
        format!(
            "{:.1} Tbps",
            c.aggregate_link_bw(CommLevel::InterNode).as_gbps() / 1000.0
        )
    }));
    out.push_str(&t.render());
    out.push_str(
        "\nPaper values: 20 / 319 PFLOPS, 5 / 164 TB, 199 / 3960 TB/s,\n\
         38.4 / 614.4 TB/s intra, 25.6 / 409.6 Tbps inter.\n",
    );
    out
}

/// Table IV: simulated commodity hardware specifications.
pub fn table4() -> String {
    let mut out = heading("Table IV: Simulated commodity hardware specifications");
    let mut t = Table::new([
        "Device",
        "FP-16/32 FLOPS (datasheet)",
        "HBM capacity, BW",
        "Intra-node BW",
        "Inter-node BW",
        "Model-facing unidir intra/inter",
    ]);
    for (row, dev) in catalog::TABLE_IV.iter().zip(catalog::table_iv_devices()) {
        t.row([
            row.device.to_owned(),
            row.flops.to_owned(),
            row.hbm.to_owned(),
            row.intra.to_owned(),
            row.inter.to_owned(),
            format!(
                "{:.0} / {:.1} GB/s",
                dev.intra_node_bw.as_gb(),
                dev.inter_node_bw.as_gb()
            ),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nDatasheet columns reproduce the paper's Table IV verbatim; the last\n\
         column shows the per-device unidirectional values the cost models use\n\
         (see DESIGN.md for the bandwidth conventions and documented typos).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_nonempty() {
        for (name, s) in [
            ("t1", table1()),
            ("t2", table2()),
            ("t3", table3()),
            ("t4", table4()),
        ] {
            assert!(s.lines().count() > 5, "{name} too short");
        }
    }

    #[test]
    fn table1_reports_all_six_metrics() {
        let s = table1();
        for needle in ["serialized", "exposed", "DLRM-B", "GPU hours", "1.4T"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table2_lists_whole_suite() {
        let s = table2();
        for id in ModelId::ALL {
            assert!(s.contains(&id.to_string()), "missing {id}");
        }
    }

    #[test]
    fn table4_lists_all_devices() {
        let s = table4();
        for d in ["A100", "H100", "MI250X", "MI300X", "Gaudi2"] {
            assert!(s.contains(d));
        }
    }
}
