//! Continuous-batching load scenarios (`fig_serve_load`): arrival-rate
//! sweeps over the LLM zoo — TTFT/TPOT percentile curves as offered
//! load rises from idle to saturation — plus the SLO-constrained
//! goodput search (`Explorer::explore_load`) producing the
//! latency-vs-throughput frontier of the winning deployment.
//!
//! Where `fig_serve` prices one synchronized (prefill, decode) wave,
//! this experiment drives the event-driven request-stream simulator
//! (`madmax-serve`): seeded Poisson arrivals, in-flight batching with
//! requests joining as others finish, and a paged KV budget.

use madmax_dse::{Explorer, LoadAxes, PipelineAxes, SearchSpace};
use madmax_engine::{Scenario, SimMode};
use madmax_hw::units::Seconds;
use madmax_hw::{catalog, ClusterSpec};
use madmax_model::{ModelArch, ModelId};
use madmax_parallel::{LoadSpec, PipelineSchedule, ServeConfig, Workload};
use madmax_serve::LoadReport;

const RATES: [f64; 5] = [0.01, 0.02, 0.05, 0.1, 0.5];
const REQUESTS: usize = 24;
const SEED: u64 = 2024;
const PROMPT: usize = 256;
const DECODE: usize = 64;
const BATCH: usize = 8;
/// p99 time-to-first-token SLO for the goodput search, seconds.
const SLO_TTFT_P99: f64 = 60.0;

fn load_row(model: &ModelArch, system: &ClusterSpec, rate: f64) -> Result<LoadReport, String> {
    let workload = Workload::serve(ServeConfig::new(PROMPT, DECODE).with_decode_batch(BATCH));
    let spec = LoadSpec::poisson(rate, REQUESTS, SEED).with_kv_blocks(4096);
    let scenario = Scenario::new(model, system).workload_ref(&workload);
    let costs = scenario.price_load(&spec).map_err(|e| e.to_string())?;
    scenario
        .serve_load_priced(&spec, &costs, SimMode::Event, None)
        .map(|o| o.report)
        .map_err(|e| e.to_string())
}

/// Renders the load report: per-model arrival-rate sweeps and the
/// SLO-constrained goodput search with its frontier.
pub fn fig_serve_load(hooks: &crate::SearchHooks) -> String {
    let mut out = String::new();
    out.push_str("Continuous-batching load: Poisson request streams through in-flight batching\n");
    out.push_str(&"=".repeat(98));
    out.push('\n');

    // ---- Part 1: arrival-rate sweep over the LLM zoo ----
    let system = catalog::llama_llm_system();
    for id in [ModelId::Llama, ModelId::Llama2, ModelId::Gpt3] {
        let model = id.build();
        out.push_str(&format!(
            "\n{} on {}: prompt {PROMPT}, decode {DECODE}, {BATCH} slots, \
             {REQUESTS} requests, 4096 KV blocks\n",
            model.name, system.name
        ));
        out.push_str(&format!(
            "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}\n",
            "req/s", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99", "tok/s", "max queue"
        ));
        for rate in RATES {
            match load_row(&model, &system, rate) {
                Ok(r) => {
                    let (t, p) = (r.ttft, r.tpot);
                    out.push_str(&format!(
                        "{rate:>10.3} {:>10.1}ms {:>10.1}ms {:>10.2}ms {:>10.2}ms \
                         {:>10.1} {:>10}\n",
                        t.map_or(f64::NAN, |x| x.p50.as_ms()),
                        t.map_or(f64::NAN, |x| x.p99.as_ms()),
                        p.map_or(f64::NAN, |x| x.p50.as_ms()),
                        p.map_or(f64::NAN, |x| x.p99.as_ms()),
                        r.tokens_per_sec,
                        r.max_queue_depth
                    ));
                }
                Err(e) => out.push_str(&format!("{rate:>10.3}  [{e}]\n")),
            }
        }
    }

    // ---- Part 2: SLO-constrained goodput search ----
    let model = ModelId::Llama2.build();
    out.push_str(&format!(
        "\n--- SLO goodput search: {} on {}, p99 TTFT <= {SLO_TTFT_P99:.0} s ---\n",
        model.name, system.name
    ));
    let axes = LoadAxes::new(
        LoadSpec::poisson(RATES[0], REQUESTS, SEED).with_kv_blocks(4096),
        RATES,
    )
    .with_slo_ttft_p99(Seconds::new(SLO_TTFT_P99));
    let explorer = hooks.attach(
        Explorer::new(&model, &system)
            .workload(Workload::serve(
                ServeConfig::new(PROMPT, DECODE).with_decode_batch(BATCH),
            ))
            .space(SearchSpace::default().with_pipeline(PipelineAxes {
                stages: vec![1, 2, 4, 8],
                microbatches: vec![8],
                schedules: vec![PipelineSchedule::GPipe],
            })),
    );
    match explorer.explore_load(&axes) {
        Ok(r) => {
            out.push_str(&format!(
                "{} candidates, {} load simulations\n",
                r.candidates.len(),
                r.evaluated
            ));
            let best = r.best();
            out.push_str(&format!("winner: {}\n", best.plan.summary()));
            match best.best_point {
                Some(i) => {
                    let p = &best.points[i];
                    out.push_str(&format!(
                        "best feasible point: {:.3} req/s -> {:.1} tokens/s goodput\n",
                        p.rate, p.report.tokens_per_sec
                    ));
                }
                None => out.push_str("no rate meets the SLO at any candidate\n"),
            }
            out.push_str("frontier:  req/s     tokens/s   TTFT p99 (s)   feasible\n");
            for point in &best.points {
                out.push_str(&format!(
                    "          {:>6.3} {:>12.1} {:>14.3} {:>10}\n",
                    point.rate,
                    point.report.tokens_per_sec,
                    point.report.ttft.map_or(f64::NAN, |t| t.p99.as_secs()),
                    if point.feasible { "yes" } else { "no" }
                ));
            }
        }
        Err(e) => out.push_str(&format!("[{e}]\n")),
    }

    out.push_str(
        "\nReading: at low offered load TTFT sits at one prefill and throughput scales\n\
         with the arrival rate; past saturation the admission queue grows, tail TTFT\n\
         explodes while tokens/s plateaus, and the SLO cuts the frontier at the last\n\
         rate whose p99 TTFT stays under the bound. Pipelined deployments shift the\n\
         frontier by trading prefill latency against decode throughput.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_sweep_and_frontier() {
        let s = fig_serve_load(&crate::SearchHooks::with_threads(2));
        assert!(s.contains("TTFT p99"), "{s}");
        assert!(s.contains("SLO goodput search"), "{s}");
        assert!(s.contains("frontier:"), "{s}");
        assert!(s.contains("winner:"), "{s}");
    }

    #[test]
    fn saturation_raises_tail_ttft() {
        let model = ModelId::Llama2.build();
        let system = catalog::llama_llm_system();
        let idle = load_row(&model, &system, RATES[0]).unwrap();
        let slam = load_row(&model, &system, *RATES.last().unwrap()).unwrap();
        let (i, s) = (idle.ttft.unwrap(), slam.ttft.unwrap());
        assert!(s.p99 > i.p99, "idle {:?} vs saturated {:?}", i.p99, s.p99);
        assert!(slam.tokens_per_sec >= idle.tokens_per_sec);
    }
}
