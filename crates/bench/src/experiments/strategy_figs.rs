//! Experiments regenerating the parallelization-strategy figures:
//! Figs. 10-15.

use madmax_dse::{
    best_point, pareto_frontier, sweep_class, Explorer, ParetoPoint, SearchSpace, SweepPoint,
};
use madmax_engine::simulate;
use madmax_hw::catalog;
use madmax_model::{DlrmVariant, LayerClass, ModelId};
use madmax_parallel::{memory_per_device, HierStrategy, Plan, Strategy, Workload};
use madmax_report::{bar_chart, heading, Bar, Table};

fn system_for(id: ModelId) -> madmax_hw::ClusterSpec {
    if id.is_dlrm() {
        catalog::zionex_dlrm_system()
    } else {
        catalog::llama_llm_system()
    }
}

/// Fig. 10: pre-training throughput over the FSDP baseline across the full
/// model suite, memory-constrained (blue) and unconstrained (orange).
/// `hooks` sizes the explorer's worker pool and receives each search's
/// progress events and telemetry.
pub fn fig10(hooks: &crate::SearchHooks) -> String {
    let mut out = heading("Fig. 10: Pre-training throughput improvement over FSDP baseline");
    let mut bars = Vec::new();
    let mut t = Table::new([
        "Model",
        "Constrained speedup",
        "Unconstrained speedup",
        "Throughput-optimal strategies",
    ]);
    let mut speedups = Vec::new();
    for id in ModelId::ALL {
        let model = id.build();
        let sys = system_for(id);
        let c = hooks
            .attach(Explorer::new(&model, &sys))
            .explore()
            .expect("baseline feasible");
        let u = hooks
            .attach(Explorer::new(&model, &sys).space(SearchSpace::strategies().unconstrained()))
            .explore()
            .expect("unconstrained search runs");
        hooks.record(&format!("fig10/{id}/constrained"), &c.telemetry);
        hooks.record(&format!("fig10/{id}/unconstrained"), &u.telemetry);
        speedups.push(c.speedup());
        t.row([
            id.to_string(),
            format!("{:.2}x", c.speedup()),
            format!("{:.2}x", u.speedup()),
            c.winning_strategies(),
        ]);
        bars.push(Bar::with_note(
            id.to_string(),
            c.speedup(),
            c.winning_strategies(),
        ));
    }
    out.push_str(&bar_chart(&bars, 40, "x over FSDP"));
    out.push('\n');
    out.push_str(&t.render());
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    out.push_str(&format!(
        "\nAverage pre-training improvement: {:.1}% (paper: 65.9% average, up to\n\
         2.24x constrained / 2.43x unconstrained). LLM baselines are already\n\
         competitive under FSDP (paper's Insight 2); the largest gains come from\n\
         expert-parallel sharding of MoE layers and TP-within-node for DLRM\n\
         dense layers.\n",
        (avg - 1.0) * 100.0
    ));
    out
}

fn render_sweep(points: &[SweepPoint], baseline_tp: f64) -> String {
    let mut bars = Vec::new();
    for p in points {
        match p.throughput() {
            Some(tp) => bars.push(Bar::new(p.strategy.to_string(), tp / baseline_tp)),
            None => bars.push(Bar::with_note(p.strategy.to_string(), 0.0, "OOM")),
        }
    }
    bar_chart(&bars, 40, "x over FSDP")
}

/// Fig. 11: DLRM-A pre-training across dense-layer strategies (embedding
/// tables pinned to model-parallel sharding).
pub fn fig11() -> String {
    let mut out = heading("Fig. 11: DLRM-A pre-training across dense-layer strategies");
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let base = Plan::fsdp_baseline(&model);
    let baseline = simulate(&model, &sys, &base, Workload::pretrain()).unwrap();
    let points = sweep_class(
        &model,
        &sys,
        &base,
        LayerClass::Dense,
        &Workload::pretrain(),
    );
    out.push_str(&render_sweep(&points, baseline.samples_per_sec()));
    let best = best_point(&points).unwrap();
    out.push_str(&format!(
        "\nBest dense strategy: {} at {:.2}x over FSDP (paper: (TP, DDP) at 1.14x;\n\
         range 0.19x-1.14x with ((DDP),(MP)) OOM — reproduced: flat TP {:.2}x, DDP OOM).\n",
        best.strategy,
        best.throughput().unwrap() / baseline.samples_per_sec(),
        points
            .iter()
            .find(|p| p.strategy == HierStrategy::flat(Strategy::Tp))
            .and_then(SweepPoint::throughput)
            .unwrap_or(0.0)
            / baseline.samples_per_sec(),
    ));
    out
}

/// Fig. 12: strategy sweeps for the DLRM-A variants; the optimum moves as
/// transformer layers add compute/overlap and MoE adds blocking All2All.
pub fn fig12() -> String {
    let mut out = heading("Fig. 12: DLRM-A variants: optimal strategy and improvement vary");
    for (id, class) in [
        (ModelId::DlrmA, LayerClass::Dense),
        (ModelId::DlrmATransformer, LayerClass::Transformer),
        (ModelId::DlrmAMoe, LayerClass::Moe),
    ] {
        let model = id.build();
        let sys = catalog::zionex_dlrm_system();
        // DLRM-A's dense optimum (TP, DDP) is held fixed while sweeping the
        // variant-specific layer class, as the paper does.
        let base = Plan::fsdp_baseline(&model).with_strategy(
            LayerClass::Dense,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
        let fsdp = Plan::fsdp_baseline(&model);
        let baseline = simulate(&model, &sys, &fsdp, Workload::pretrain()).unwrap();
        let points = sweep_class(&model, &sys, &base, class, &Workload::pretrain());
        out.push_str(&format!("\n{id} (sweeping {class} layers):\n"));
        out.push_str(&render_sweep(&points, baseline.samples_per_sec()));
        if let Some(best) = best_point(&points) {
            out.push_str(&format!(
                "optimum: {} at {:.2}x over FSDP\n",
                best.strategy,
                best.throughput().unwrap() / baseline.samples_per_sec()
            ));
        }
    }
    out
}

/// Fig. 13: per-device memory vs throughput Pareto curves for the DLRM-A
/// variants, pre-training and inference.
pub fn fig13() -> String {
    let mut out = heading("Fig. 13: Memory/throughput Pareto curves for DLRM-A variants");
    for task in [Workload::pretrain(), Workload::inference()] {
        out.push_str(&format!("\n--- {task} ---\n"));
        for variant in [
            DlrmVariant::Base,
            DlrmVariant::Transformer,
            DlrmVariant::Moe,
        ] {
            let model = madmax_model::dlrm::dlrm_a(variant);
            let sys = catalog::zionex_dlrm_system();
            let base = Plan::fsdp_baseline(&model);
            // Collect every feasible strategy point across the variant's
            // tunable classes.
            let mut points: Vec<ParetoPoint<String>> = Vec::new();
            for class in [LayerClass::Dense, LayerClass::Transformer, LayerClass::Moe] {
                if model.groups_of(class).next().is_none() {
                    continue;
                }
                for p in sweep_class(&model, &sys, &base, class, &task) {
                    if let Ok(r) = &p.outcome {
                        let mem = memory_per_device(&model, &sys, &p.plan, &task);
                        points.push(ParetoPoint::new(
                            mem.total().as_gb(),
                            r.samples_per_sec() / 1e6,
                            format!("{class}={}", p.strategy),
                        ));
                    }
                }
            }
            let frontier = pareto_frontier(&points);
            out.push_str(&format!(
                "\n{} ({} feasible points):\n",
                model.name,
                points.len()
            ));
            let mut t = Table::new(["Memory/GPU (GB)", "Throughput (MQPS)", "Strategy"]);
            for p in &frontier {
                t.row([
                    format!("{:.1}", p.cost),
                    format!("{:.3}", p.value),
                    p.payload.clone(),
                ]);
            }
            out.push_str(&t.render());
        }
    }
    out.push_str(
        "\nHigher memory capacity admits higher-throughput strategies; during\n\
         inference the MoE variant overtakes the transformer variant because\n\
         expert communication is cheaper without the backward pass (Insight 4).\n",
    );
    out
}

/// Fig. 14: task-level diversity — the same strategies ranked differently
/// for pre-training, inference, and the two fine-tuning scenarios.
pub fn fig14() -> String {
    let mut out = heading("Fig. 14: Task-level diversity of DLRM-A strategy performance");
    let model = ModelId::DlrmA.build();
    let sys = catalog::zionex_dlrm_system();
    let tasks: Vec<(&str, Workload)> = vec![
        ("pre-training", Workload::pretrain()),
        ("inference", Workload::inference()),
        ("finetune-MLP", Workload::finetune_only(LayerClass::Dense)),
        (
            "finetune-emb",
            Workload::finetune_only(LayerClass::Embedding),
        ),
    ];
    let strategies = [
        HierStrategy::flat(Strategy::Fsdp),
        HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        HierStrategy::two_level(Strategy::Ddp, Strategy::Tp),
        HierStrategy::flat(Strategy::Ddp),
        HierStrategy::two_level(Strategy::Fsdp, Strategy::Ddp),
    ];
    let mut t = Table::new([
        "Dense strategy",
        "pre-training",
        "inference",
        "finetune-MLP",
        "finetune-emb",
    ]);
    for strat in strategies {
        let mut cells = vec![strat.to_string()];
        for (_, task) in &tasks {
            let base = Plan::fsdp_baseline(&model);
            let baseline = simulate(&model, &sys, &base, task.clone()).unwrap();
            let plan = base.clone().with_strategy(LayerClass::Dense, strat);
            cells.push(match simulate(&model, &sys, &plan, task.clone()) {
                Ok(r) => format!("{:.2}x", r.samples_per_sec() / baseline.samples_per_sec()),
                Err(_) => "OOM".to_owned(),
            });
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nDDP dense layers are infeasible for pre-training (replicated grads +\n\
         optimizer states) but viable for inference and embedding-only\n\
         fine-tuning; fine-tuning only the embeddings behaves like inference\n\
         because frozen MLP gradient work is omitted (Insight 5).\n",
    );
    out
}

/// Fig. 15: gains from strategy tuning diminish as LLM context length
/// grows.
pub fn fig15() -> String {
    let mut out = heading("Fig. 15: Context-length scaling limits strategy-tuning gains");
    let sys = catalog::llama_llm_system();
    let mut t = Table::new([
        "Context",
        "Model",
        "Baseline tokens/s",
        "Best tokens/s",
        "Speedup over FSDP",
        "Best strategies",
    ]);
    let mut speedups = Vec::new();
    let base_model = ModelId::Llama2.build();
    for ctx in [2048usize, 4096, 8192] {
        // 2K ~= LLaMA, 4K = LLaMA2, 8K = LLaMA2 with doubled context and
        // the architecture held constant (the paper's construction).
        let model = if ctx == 4096 {
            base_model.clone()
        } else {
            base_model.with_context_length(ctx)
        };
        let r = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().unconstrained())
            .explore()
            .unwrap();
        speedups.push(r.speedup());
        t.row([
            ctx.to_string(),
            model.name.clone(),
            format!("{:.0}", r.baseline.tokens_per_sec()),
            format!("{:.0}", r.best.tokens_per_sec()),
            format!("{:.3}x", r.speedup()),
            r.winning_strategies(),
        ]);
    }
    out.push_str(&t.render());
    let monotone = speedups.windows(2).all(|w| w[1] <= w[0] + 1e-9);
    out.push_str(&format!(
        "\nSpeedup trend across 2K/4K/8K: {:.3}x -> {:.3}x -> {:.3}x ({}).\n\
         Longer contexts grow both the compute share and TP activation volumes,\n\
         so pure parallelization tuning has diminishing returns; further gains\n\
         require changing the system or the model architecture (Insight 6).\n",
        speedups[0],
        speedups[1],
        speedups[2],
        if monotone {
            "monotone non-increasing"
        } else {
            "not monotone"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_covers_suite() {
        let s = fig10(&crate::SearchHooks::with_threads(2));
        for id in ModelId::ALL {
            assert!(s.contains(&id.to_string()), "missing {id}");
        }
        assert!(s.contains("Average pre-training improvement"));
    }

    #[test]
    fn fig11_shows_oom_and_best() {
        let s = fig11();
        assert!(s.contains("OOM"));
        assert!(s.contains("Best dense strategy"));
    }

    #[test]
    fn fig14_table_shape() {
        let s = fig14();
        assert!(s.contains("finetune-emb"));
        assert!(s.contains("OOM"));
    }
}
