//! Pipeline-schedule comparison (GPipe vs 1F1B across depths and
//! microbatch counts) against the analytic `(p-1)/(m+p-1)` floor.
//!
//! The whole grid is expressed as plain candidate plans and evaluated in
//! one parallel [`Explorer::evaluate`] call through the unified
//! `Scenario` engine — no per-schedule simulator plumbing.

use madmax_dse::Explorer;
use madmax_hw::catalog;
use madmax_model::ModelId;
use madmax_parallel::{PipelineConfig, PipelineSchedule, Plan, Workload};
use madmax_pipeline::gpipe_bubble_fraction;

const SCHEDULES: [PipelineSchedule; 2] = [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB];
const MICROBATCHES: [usize; 5] = [2, 4, 8, 16, 32];

/// Renders the GPipe-vs-1F1B schedule comparison report, evaluating the
/// (model x microbatch x schedule) grid on the hooks' worker pool.
pub fn fig_pipeline_schedules(hooks: &crate::SearchHooks) -> String {
    let system = catalog::llama_llm_system();
    let pp = 8usize;
    let mut out = String::new();
    out.push_str(&format!(
        "Pipeline schedules: GPipe vs 1F1B at pp={pp} on {}\n",
        system.name
    ));
    out.push_str(&"=".repeat(98));
    out.push('\n');

    for id in [ModelId::Llama, ModelId::Llama2, ModelId::Gpt3] {
        let model = id.build();
        let depth: usize = model.groups.iter().map(|g| g.repeat).sum();
        out.push_str(&format!("\n{} ({depth} layers):\n", model.name));
        out.push_str(&format!(
            "{:>6} {:>10} {:>14} {:>14} {:>16} {:>16} {:>12}\n",
            "mb",
            "analytic",
            "GPipe bubble",
            "1F1B bubble",
            "GPipe s/iter",
            "1F1B s/iter",
            "1F1B act-mem"
        ));

        // The full (mb x schedule) grid as candidate plans, evaluated in
        // parallel; results come back in enumeration order.
        let plans: Vec<Plan> = MICROBATCHES
            .iter()
            .flat_map(|&m| {
                SCHEDULES.map(|schedule| {
                    let mut plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
                        stages: pp,
                        microbatches: m,
                        schedule,
                    });
                    plan.options.ignore_memory_limits = true;
                    plan
                })
            })
            .collect();
        let (results, telemetry) = hooks
            .attach(Explorer::new(&model, &system))
            .evaluate_with_telemetry(&Workload::pretrain(), &plans);
        hooks.record(
            &format!("fig_pipeline_schedules/{}", model.name),
            &telemetry,
        );

        for (mi, &m) in MICROBATCHES.iter().enumerate() {
            let mut bubbles = Vec::new();
            let mut iters = Vec::new();
            let mut act_ratio = None;
            let mut gpipe_act = None;
            for (si, schedule) in SCHEDULES.into_iter().enumerate() {
                match &results[mi * SCHEDULES.len() + si] {
                    Ok(r) => {
                        bubbles.push(r.bubble_fraction.unwrap_or(0.0));
                        iters.push(r.iteration_time.as_secs());
                        match schedule {
                            PipelineSchedule::GPipe => {
                                gpipe_act = Some(r.memory.activations);
                            }
                            PipelineSchedule::OneFOneB => {
                                if let Some(g) = gpipe_act {
                                    act_ratio =
                                        Some(r.memory.activations.value() / g.value().max(1.0));
                                }
                            }
                        }
                    }
                    Err(e) => {
                        bubbles.push(f64::NAN);
                        iters.push(f64::NAN);
                        out.push_str(&format!("{m:>6}  [{schedule}: {e}]\n"));
                    }
                }
            }
            let act_col = match act_ratio {
                Some(r) => format!("{:>11.0}%", r * 100.0),
                None => format!("{:>12}", "-"),
            };
            out.push_str(&format!(
                "{m:>6} {:>9.1}% {:>13.1}% {:>13.1}% {:>15.2}s {:>15.2}s {act_col}\n",
                gpipe_bubble_fraction(pp, m) * 100.0,
                bubbles[0] * 100.0,
                bubbles[1] * 100.0,
                iters[0],
                iters[1],
            ));
        }
    }
    out.push_str(
        "\nReading: bubbles shrink as (p-1)/(m+p-1) with more microbatches; both schedules\n\
         track the analytic floor (the excess is exposed parameter-gather and P2P time).\n\
         1F1B trades a sliver of makespan for retaining only p of m microbatches'\n\
         activations — the '1F1B act-mem' column, min(p,m)/m of GPipe's.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn schedule_grid_renders_for_all_models() {
        let s = super::fig_pipeline_schedules(&crate::SearchHooks::with_threads(2));
        for name in ["LLaMA", "GPT-3"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("1F1B act-mem"));
    }
}
