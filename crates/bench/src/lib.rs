//! # madmax-bench
//!
//! The MAD-Max experiment harness: one module (and one runnable binary)
//! per table and figure of the paper's evaluation. Each experiment's
//! `run()` returns the rendered report; binaries print it and persist a
//! copy under `results/`.

#![warn(missing_docs)]

pub mod experiments;

use std::fs;
use std::path::PathBuf;

/// Directory where experiment outputs are persisted.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Prints an experiment's report and saves it to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), content);
    }
}

/// The default worker-pool size for DSE-heavy experiments: all available
/// cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses `--threads N` from the process arguments for the DSE-heavy
/// bench binaries, defaulting to [`default_threads`]. Exits with a usage
/// message on a malformed value.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("usage: --threads <N>  (N >= 1)");
                std::process::exit(2);
            };
            return n.max(1);
        }
    }
    default_threads()
}
