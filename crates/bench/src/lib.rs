//! # madmax-bench
//!
//! The MAD-Max experiment harness: one module (and one runnable binary)
//! per table and figure of the paper's evaluation. Each experiment's
//! `run()` returns the rendered report; binaries print it and persist a
//! copy under `results/`. `run_all` executes everything and ends with a
//! per-experiment elapsed-time summary, so hot-path regressions are
//! visible straight from the tier-1 artifact run.
//!
//! ## Tracking explorer performance: `bench_report`
//!
//! The `bench_report` bin is the repository's perf trajectory: it times
//! `madmax_dse::Explorer::explore()` on every fig10-style joint strategy
//! search (each model, memory-constrained and unconstrained) and writes a
//! `BENCH_PR<n>.json` at the repository root:
//!
//! ```text
//! cargo run --release -p madmax-bench --bin bench_report -- \
//!     --threads 1 --reps 5 --out BENCH_PR3.json [--baseline PRE.json]
//! ```
//!
//! Each record is `{"search", "candidates", "wall_ms", "threads"}`;
//! `wall_ms` is the best of `--reps` runs after a warm-up. Passing
//! `--baseline` (a report produced by the same bin on an older commit)
//! adds `pre_pr_wall_ms` and `speedup` per record, so the committed file
//! is a self-contained before/after comparison. PRs claiming a hot-path
//! win re-run the bin and commit the new `BENCH_PR<n>.json` point; the
//! criterion groups under `benches/` (kept compiling by CI's
//! `cargo bench --no-run`) cover the finer-grained kernels.

#![warn(missing_docs)]

pub mod cli;
pub mod corpus;
pub mod experiments;

pub use cli::{BenchCli, SearchHooks};
pub use corpus::{fault_corpus, verify_corpus, FaultScenario, VerifyScenario};

use std::fs;
use std::path::PathBuf;

/// Directory where experiment outputs are persisted.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Prints an experiment's report and saves it to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), content);
    }
}

/// The default worker-pool size for DSE-heavy experiments: all available
/// cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

// `--threads` parsing used to live here as `threads_from_args`; the
// DSE-heavy binaries now share the richer [`cli::BenchCli`] parser
// (threads, progress, telemetry) instead.
