//! # madmax-bench
//!
//! The MAD-Max experiment harness: one module (and one runnable binary)
//! per table and figure of the paper's evaluation. Each experiment's
//! `run()` returns the rendered report; binaries print it and persist a
//! copy under `results/`.

#![warn(missing_docs)]

pub mod experiments;

use std::fs;
use std::path::PathBuf;

/// Directory where experiment outputs are persisted.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Prints an experiment's report and saves it to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), content);
    }
}
