//! Shared command-line plumbing for the DSE-heavy bench binaries: one
//! flag parser (`--threads`, `--progress`, `--telemetry`, `--emit-trace`)
//! instead of per-bin ad-hoc parsing, and one elapsed-time/telemetry
//! epilogue instead of per-bin `eprintln!` timers.
//!
//! An experiment function takes a [`SearchHooks`] and threads it into
//! every `Explorer` it builds (via [`SearchHooks::attach`]) plus a
//! [`SearchHooks::record`] call per finished search; the binary wraps the
//! function with [`BenchCli::run`], which owns the progress sink and the
//! telemetry spool and handles the flag-driven outputs.

use std::path::PathBuf;

use madmax_dse::Explorer;
use madmax_obs::{ProgressSink, SearchTelemetry, StderrTicker, TelemetrySpool};

/// Borrowed observability context an experiment threads into its
/// explorers. `Copy`, so call sites pass it around freely.
#[derive(Debug, Clone, Copy)]
pub struct SearchHooks<'a> {
    /// Worker-pool size for every search the experiment runs.
    pub threads: usize,
    /// Live progress sink, when the user asked for one.
    pub sink: Option<&'a dyn ProgressSink>,
    /// Telemetry spool collecting every search's counters, when set.
    pub spool: Option<&'a TelemetrySpool>,
    /// Verify each search's winner schedule with `madmax-verify`
    /// (`--verify`); violation counts land in the recorded telemetry.
    pub verify: bool,
}

impl<'a> SearchHooks<'a> {
    /// Hooks with no sink and no spool: plain threaded search.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            sink: None,
            spool: None,
            verify: false,
        }
    }

    /// Applies the hooks to an explorer under construction: sizes its
    /// pool, attaches the progress sink, and enables winner verification
    /// when `--verify` was given.
    #[must_use]
    pub fn attach<'m>(&self, explorer: Explorer<'m>) -> Explorer<'m>
    where
        'a: 'm,
    {
        let explorer = explorer.threads(self.threads).verify_winner(self.verify);
        match self.sink {
            Some(sink) => explorer.progress(sink),
            None => explorer,
        }
    }

    /// Records one finished search's telemetry under `name` (no-op
    /// without a spool).
    pub fn record(&self, name: &str, telemetry: &SearchTelemetry) {
        if let Some(spool) = self.spool {
            spool.record(name, telemetry);
        }
    }
}

/// Parsed common flags of a DSE-heavy bench binary.
#[derive(Debug)]
pub struct BenchCli {
    name: &'static str,
    threads: usize,
    progress: Option<StderrTicker>,
    telemetry_path: Option<PathBuf>,
    spool: TelemetrySpool,
    verify: bool,
}

impl BenchCli {
    /// Parses the process arguments. Exits with a usage message on a
    /// malformed or unknown flag, so binaries stay misuse-proof.
    pub fn from_args(name: &'static str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let usage = || -> ! {
            eprintln!(
                "usage: {name} [--threads N] [--progress N] [--telemetry PATH] [--verify]\n\
                 \x20 --threads N       explorer worker-pool size (default: all cores)\n\
                 \x20 --progress N      print a progress line every N candidates\n\
                 \x20 --telemetry PATH  write per-search telemetry JSON to PATH\n\
                 \x20 --verify          verify each search's winner schedule"
            );
            std::process::exit(2);
        };
        let mut cli = Self {
            name,
            threads: crate::default_threads(),
            progress: None,
            telemetry_path: None,
            spool: TelemetrySpool::new(),
            verify: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--verify" {
                cli.verify = true;
                continue;
            }
            let Some(v) = it.next() else { usage() };
            match a.as_str() {
                "--threads" => match v.parse::<usize>() {
                    Ok(n) => cli.threads = n.max(1),
                    Err(_) => usage(),
                },
                "--progress" => match v.parse::<u64>() {
                    Ok(n) => cli.progress = Some(StderrTicker::every(n)),
                    Err(_) => usage(),
                },
                "--telemetry" => cli.telemetry_path = Some(PathBuf::from(v)),
                _ => usage(),
            }
        }
        cli
    }

    /// The parsed worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The hooks to thread into the experiment's searches.
    pub fn hooks(&self) -> SearchHooks<'_> {
        SearchHooks {
            threads: self.threads,
            sink: self.progress.as_ref().map(|t| t as &dyn ProgressSink),
            spool: Some(&self.spool),
            verify: self.verify,
        }
    }

    /// Runs the experiment with this CLI's hooks, prints the standard
    /// elapsed epilogue to stderr, and writes the telemetry file when
    /// `--telemetry` was given. Returns the experiment's report.
    pub fn run(&self, experiment: impl FnOnce(&SearchHooks) -> String) -> String {
        let started = std::time::Instant::now();
        let report = experiment(&self.hooks());
        eprintln!(
            "{}: {:.1} ms on {} thread(s)",
            self.name,
            started.elapsed().as_secs_f64() * 1e3,
            self.threads
        );
        if let Some(path) = &self.telemetry_path {
            match self.spool.write(path) {
                Ok(()) => eprintln!("{}: telemetry written to {}", self.name, path.display()),
                Err(e) => eprintln!("{}: cannot write telemetry: {e}", self.name),
            }
        }
        report
    }
}
