//! Regenerates the paper's Fig. 6. `--emit-trace PATH` additionally
//! writes the same streams as Chrome trace-event JSON for
//! <https://ui.perfetto.dev>.
fn main() {
    madmax_bench::emit(
        "fig06_sample_streams",
        &madmax_bench::experiments::validation_figs::fig06(),
    );
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--emit-trace" {
            let Some(path) = args.next() else {
                eprintln!("usage: fig06_sample_streams [--emit-trace PATH]");
                std::process::exit(2);
            };
            let trace = madmax_bench::experiments::validation_figs::fig06_chrome_trace();
            match trace.write(&path) {
                Ok(()) => eprintln!("trace written to {path} (open at https://ui.perfetto.dev)"),
                Err(e) => {
                    eprintln!("cannot write trace to {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
