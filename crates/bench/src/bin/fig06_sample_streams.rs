//! Regenerates the paper's Fig. 6.
fn main() {
    madmax_bench::emit(
        "fig06_sample_streams",
        &madmax_bench::experiments::validation_figs::fig06(),
    );
}
