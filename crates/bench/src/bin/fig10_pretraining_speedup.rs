//! Regenerates the paper's Fig. 10. Flags (shared across the DSE-heavy
//! bins): `--threads N`, `--progress N`, `--telemetry PATH`.
fn main() {
    let cli = madmax_bench::BenchCli::from_args("fig10_pretraining_speedup");
    let report = cli.run(madmax_bench::experiments::strategy_figs::fig10);
    madmax_bench::emit("fig10_pretraining_speedup", &report);
}
