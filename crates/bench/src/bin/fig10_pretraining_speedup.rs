//! Regenerates the paper's Fig. 10 (`--threads N` sizes the explorer's
//! worker pool; defaults to all cores).
fn main() {
    let threads = madmax_bench::threads_from_args();
    let started = std::time::Instant::now();
    madmax_bench::emit(
        "fig10_pretraining_speedup",
        &madmax_bench::experiments::strategy_figs::fig10(threads),
    );
    eprintln!(
        "fig10: explored on {threads} thread(s) in {:.2}s",
        started.elapsed().as_secs_f64()
    );
}
