//! Regenerates the paper's Fig. 10.
fn main() {
    madmax_bench::emit(
        "fig10_pretraining_speedup",
        &madmax_bench::experiments::strategy_figs::fig10(),
    );
}
