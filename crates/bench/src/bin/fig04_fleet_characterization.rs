//! Regenerates the paper's Fig. 4.
fn main() {
    madmax_bench::emit(
        "fig04_fleet_characterization",
        &madmax_bench::experiments::characterization::fig04(),
    );
}
