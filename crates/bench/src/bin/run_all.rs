//! Runs every table/figure experiment and persists results under
//! `results/`. DSE-heavy experiments fan out over all available cores, and
//! the telemetry layer's [`ElapsedSummary`] prints a per-figure
//! elapsed-time table at the end so hot-path regressions are visible
//! straight from the tier-1 artifact run. Per-search telemetry (outcome
//! counters, cache hit rates) lands in `results/telemetry.json`.

use madmax_bench::{emit, experiments as e, SearchHooks};
use madmax_obs::{ElapsedSummary, TelemetrySpool};

type Experiment<'a> = (&'static str, Box<dyn Fn() -> String + 'a>);

fn main() {
    let threads = madmax_bench::default_threads();
    let spool = TelemetrySpool::new();
    let hooks = SearchHooks {
        threads,
        sink: None,
        spool: Some(&spool),
        verify: false,
    };
    let h = &hooks;
    let runs: Vec<Experiment> = vec![
        ("table1_validation", Box::new(e::tables::table1)),
        ("table2_model_suite", Box::new(e::tables::table2)),
        ("table3_systems", Box::new(e::tables::table3)),
        ("table4_hw_specs", Box::new(e::tables::table4)),
        (
            "fig01_pareto_frontier",
            Box::new(|| {
                e::hardware_figs::fig16(
                    "Fig. 1: Resource-performance pareto frontier (cloud DLRM-A)",
                )
            }),
        ),
        (
            "fig03_model_characterization",
            Box::new(e::characterization::fig03),
        ),
        (
            "fig04_fleet_characterization",
            Box::new(e::characterization::fig04),
        ),
        ("fig06_sample_streams", Box::new(e::validation_figs::fig06)),
        ("fig07_dlrm_validation", Box::new(e::validation_figs::fig07)),
        ("fig08_vit_validation", Box::new(e::validation_figs::fig08)),
        ("fig09_fsdp_prefetch", Box::new(e::validation_figs::fig09)),
        (
            "fig10_pretraining_speedup",
            Box::new(move || e::strategy_figs::fig10(h)),
        ),
        (
            "fig11_dlrm_strategy_sweep",
            Box::new(e::strategy_figs::fig11),
        ),
        ("fig12_dlrm_variants", Box::new(e::strategy_figs::fig12)),
        ("fig13_variant_pareto", Box::new(e::strategy_figs::fig13)),
        ("fig14_task_diversity", Box::new(e::strategy_figs::fig14)),
        ("fig15_context_length", Box::new(e::strategy_figs::fig15)),
        (
            "fig16_cloud_instances",
            Box::new(|| {
                e::hardware_figs::fig16(
                    "Fig. 16: Cloud instance configurations and workload mappings",
                )
            }),
        ),
        ("fig17_gpu_generations", Box::new(e::hardware_figs::fig17)),
        (
            "fig18_commodity_hardware",
            Box::new(move || e::hardware_figs::fig18(h)),
        ),
        ("fig19_hardware_scaling", Box::new(e::hardware_figs::fig19)),
        (
            "fig20_execution_breakdown",
            Box::new(e::hardware_figs::fig20),
        ),
        (
            "fig_pipeline_schedules",
            Box::new(move || e::pipeline_figs::fig_pipeline_schedules(h)),
        ),
        ("fig_serve", Box::new(move || e::serve_figs::fig_serve(h))),
        (
            "fig_serve_load",
            Box::new(move || e::serve_load_figs::fig_serve_load(h)),
        ),
        ("fig_fault", Box::new(move || e::fault_figs::fig_fault(h))),
        ("ablations", Box::new(e::ablations::run)),
    ];
    let mut summary = ElapsedSummary::new();
    for (name, f) in runs {
        eprintln!(">>> {name}");
        let report = summary.run(name, f);
        emit(name, &report);
    }

    eprintln!("\n=== elapsed per experiment ===");
    eprint!("{}", summary.table());

    let telemetry_path = madmax_bench::results_dir().join("telemetry.json");
    match spool.write(&telemetry_path) {
        Ok(()) => eprintln!("search telemetry written to {}", telemetry_path.display()),
        Err(err) => eprintln!("cannot write search telemetry: {err}"),
    }
}
