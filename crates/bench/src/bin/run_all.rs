//! Runs every table/figure experiment and persists results under
//! `results/`.
use madmax_bench::{emit, experiments as e};

type Experiment = (&'static str, fn() -> String);

fn main() {
    let runs: Vec<Experiment> = vec![
        ("table1_validation", || e::tables::table1()),
        ("table2_model_suite", || e::tables::table2()),
        ("table3_systems", || e::tables::table3()),
        ("table4_hw_specs", || e::tables::table4()),
        ("fig01_pareto_frontier", || {
            e::hardware_figs::fig16("Fig. 1: Resource-performance pareto frontier (cloud DLRM-A)")
        }),
        ("fig03_model_characterization", || {
            e::characterization::fig03()
        }),
        ("fig04_fleet_characterization", || {
            e::characterization::fig04()
        }),
        ("fig06_sample_streams", || e::validation_figs::fig06()),
        ("fig07_dlrm_validation", || e::validation_figs::fig07()),
        ("fig08_vit_validation", || e::validation_figs::fig08()),
        ("fig09_fsdp_prefetch", || e::validation_figs::fig09()),
        ("fig10_pretraining_speedup", || e::strategy_figs::fig10()),
        ("fig11_dlrm_strategy_sweep", || e::strategy_figs::fig11()),
        ("fig12_dlrm_variants", || e::strategy_figs::fig12()),
        ("fig13_variant_pareto", || e::strategy_figs::fig13()),
        ("fig14_task_diversity", || e::strategy_figs::fig14()),
        ("fig15_context_length", || e::strategy_figs::fig15()),
        ("fig16_cloud_instances", || {
            e::hardware_figs::fig16("Fig. 16: Cloud instance configurations and workload mappings")
        }),
        ("fig17_gpu_generations", || e::hardware_figs::fig17()),
        ("fig18_commodity_hardware", || e::hardware_figs::fig18()),
        ("fig19_hardware_scaling", || e::hardware_figs::fig19()),
        ("fig20_execution_breakdown", || e::hardware_figs::fig20()),
        ("fig_pipeline_schedules", || {
            e::pipeline_figs::fig_pipeline_schedules()
        }),
        ("ablations", || e::ablations::run()),
    ];
    for (name, f) in runs {
        eprintln!(">>> {name}");
        emit(name, &f());
    }
}
