//! Regenerates the paper's Fig. 15.
fn main() {
    madmax_bench::emit(
        "fig15_context_length",
        &madmax_bench::experiments::strategy_figs::fig15(),
    );
}
