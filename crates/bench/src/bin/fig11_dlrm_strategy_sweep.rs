//! Regenerates the paper's Fig. 11.
fn main() {
    madmax_bench::emit(
        "fig11_dlrm_strategy_sweep",
        &madmax_bench::experiments::strategy_figs::fig11(),
    );
}
