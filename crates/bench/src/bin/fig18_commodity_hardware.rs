//! Regenerates the paper's Fig. 18.
fn main() {
    madmax_bench::emit(
        "fig18_commodity_hardware",
        &madmax_bench::experiments::hardware_figs::fig18(),
    );
}
