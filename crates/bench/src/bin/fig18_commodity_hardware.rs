//! Regenerates the paper's Fig. 18. Flags (shared across the DSE-heavy
//! bins): `--threads N`, `--progress N`, `--telemetry PATH`.
fn main() {
    let cli = madmax_bench::BenchCli::from_args("fig18_commodity_hardware");
    let report = cli.run(madmax_bench::experiments::hardware_figs::fig18);
    madmax_bench::emit("fig18_commodity_hardware", &report);
}
