//! Regenerates the paper's Fig. 18 (`--threads N` sizes the explorer's
//! worker pool; defaults to all cores).
fn main() {
    let threads = madmax_bench::threads_from_args();
    let started = std::time::Instant::now();
    madmax_bench::emit(
        "fig18_commodity_hardware",
        &madmax_bench::experiments::hardware_figs::fig18(threads),
    );
    eprintln!(
        "fig18: explored on {threads} thread(s) in {:.2}s",
        started.elapsed().as_secs_f64()
    );
}
