//! Regenerates the paper's Fig. 19.
fn main() {
    madmax_bench::emit(
        "fig19_hardware_scaling",
        &madmax_bench::experiments::hardware_figs::fig19(),
    );
}
