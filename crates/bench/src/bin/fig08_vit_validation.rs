//! Regenerates the paper's Fig. 8.
fn main() {
    madmax_bench::emit(
        "fig08_vit_validation",
        &madmax_bench::experiments::validation_figs::fig08(),
    );
}
