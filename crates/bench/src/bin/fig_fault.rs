//! `fig_fault` — failure-aware goodput: training goodput across MTBF and
//! checkpoint-interval grids with a Young/Daly-vs-replay cross-check, the
//! goodput-ranked strategy search (plan flip versus the latency ranking),
//! and serving availability/retries under a materialized fault stream.
//! Flags (shared across the DSE-heavy bins): `--threads N`,
//! `--progress N`, `--telemetry PATH`.
fn main() {
    let cli = madmax_bench::BenchCli::from_args("fig_fault");
    let report = cli.run(madmax_bench::experiments::fault_figs::fig_fault);
    madmax_bench::emit("fig_fault", &report);
}
