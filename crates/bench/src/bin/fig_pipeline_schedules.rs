//! Pipeline-schedule comparison: GPipe vs 1F1B bubble overhead across model
//! depths and microbatch counts, against the analytic `(p-1)/(m+p-1)`
//! floor, plus the activation-memory advantage that motivates 1F1B.
//! Flags (shared across the DSE-heavy bins): `--threads N`,
//! `--progress N`, `--telemetry PATH`.
fn main() {
    let cli = madmax_bench::BenchCli::from_args("fig_pipeline_schedules");
    let report = cli.run(madmax_bench::experiments::pipeline_figs::fig_pipeline_schedules);
    madmax_bench::emit("fig_pipeline_schedules", &report);
}
