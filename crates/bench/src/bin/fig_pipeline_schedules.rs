//! Pipeline-schedule comparison: GPipe vs 1F1B bubble overhead across model
//! depths and microbatch counts, against the analytic `(p-1)/(m+p-1)`
//! floor, plus the activation-memory advantage that motivates 1F1B.
//! `--threads N` sizes the evaluation pool (defaults to all cores).

use madmax_bench::emit;
use madmax_bench::experiments::pipeline_figs;

fn main() {
    let threads = madmax_bench::threads_from_args();
    let started = std::time::Instant::now();
    emit(
        "fig_pipeline_schedules",
        &pipeline_figs::fig_pipeline_schedules(threads),
    );
    eprintln!(
        "fig_pipeline_schedules: evaluated on {threads} thread(s) in {:.2}s",
        started.elapsed().as_secs_f64()
    );
}
