//! Pipeline-schedule comparison: GPipe vs 1F1B bubble overhead across model
//! depths and microbatch counts, against the analytic `(p-1)/(m+p-1)`
//! floor, plus the activation-memory advantage that motivates 1F1B.

use madmax_bench::emit;
use madmax_bench::experiments::pipeline_figs;

fn main() {
    emit(
        "fig_pipeline_schedules",
        &pipeline_figs::fig_pipeline_schedules(),
    );
}
