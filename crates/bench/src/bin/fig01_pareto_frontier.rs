//! Regenerates the paper's Fig. 1.
fn main() {
    madmax_bench::emit(
        "fig01_pareto_frontier",
        &madmax_bench::experiments::hardware_figs::fig16(
            "Fig. 1: Resource-performance pareto frontier (cloud DLRM-A)",
        ),
    );
}
