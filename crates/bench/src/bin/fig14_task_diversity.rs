//! Regenerates the paper's Fig. 14.
fn main() {
    madmax_bench::emit(
        "fig14_task_diversity",
        &madmax_bench::experiments::strategy_figs::fig14(),
    );
}
