//! Regenerates the paper's Fig. 16.
fn main() {
    madmax_bench::emit(
        "fig16_cloud_instances",
        &madmax_bench::experiments::hardware_figs::fig16(
            "Fig. 16: Cloud instance configurations and workload mappings",
        ),
    );
}
