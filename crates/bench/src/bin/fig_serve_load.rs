//! `fig_serve_load` — continuous-batching load scenarios: arrival-rate
//! sweeps over the LLM zoo (TTFT/TPOT percentile curves from idle to
//! saturation) and the SLO-constrained goodput search with its
//! latency-vs-throughput frontier.
//! Flags (shared across the DSE-heavy bins): `--threads N`,
//! `--progress N`, `--telemetry PATH`.
fn main() {
    let cli = madmax_bench::BenchCli::from_args("fig_serve_load");
    let report = cli.run(madmax_bench::experiments::serve_load_figs::fig_serve_load);
    madmax_bench::emit("fig_serve_load", &report);
}
