//! `fig_serve` — serve-mode scenarios: TTFT/TPOT sweeps (flat vs
//! pipelined decode) over the LLM zoo, plus the joint (pipeline x decode
//! batch) search on a bandwidth-constrained fabric.
//! Flags (shared across the DSE-heavy bins): `--threads N`,
//! `--progress N`, `--telemetry PATH`.
fn main() {
    let cli = madmax_bench::BenchCli::from_args("fig_serve");
    let report = cli.run(madmax_bench::experiments::serve_figs::fig_serve);
    madmax_bench::emit("fig_serve", &report);
}
