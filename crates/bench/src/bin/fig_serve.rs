//! `fig_serve` — serve-mode scenarios: TTFT/TPOT sweeps (flat vs
//! pipelined decode) over the LLM zoo, plus the joint (pipeline x decode
//! batch) search on a bandwidth-constrained fabric.
//!
//! Usage: `fig_serve [--threads N]` (default: all cores).

fn main() {
    let threads = madmax_bench::threads_from_args();
    let start = std::time::Instant::now();
    madmax_bench::emit(
        "fig_serve",
        &madmax_bench::experiments::serve_figs::fig_serve(threads),
    );
    eprintln!(
        "fig_serve: {:.1} ms on {threads} thread(s)",
        start.elapsed().as_secs_f64() * 1e3
    );
}
