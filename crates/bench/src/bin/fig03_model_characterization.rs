//! Regenerates the paper's Fig. 3.
fn main() {
    madmax_bench::emit(
        "fig03_model_characterization",
        &madmax_bench::experiments::characterization::fig03(),
    );
}
