//! Regenerates the DESIGN.md section 8 ablation studies.
fn main() {
    madmax_bench::emit("ablations", &madmax_bench::experiments::ablations::run());
}
