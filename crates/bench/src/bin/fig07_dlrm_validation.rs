//! Regenerates the paper's Fig. 7.
fn main() {
    madmax_bench::emit(
        "fig07_dlrm_validation",
        &madmax_bench::experiments::validation_figs::fig07(),
    );
}
