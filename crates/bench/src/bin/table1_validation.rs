//! Regenerates the paper's Table I.
fn main() {
    madmax_bench::emit(
        "table1_validation",
        &madmax_bench::experiments::tables::table1(),
    );
}
