//! Regenerates the paper's Table II.
fn main() {
    madmax_bench::emit(
        "table2_model_suite",
        &madmax_bench::experiments::tables::table2(),
    );
}
