//! Performance-trajectory harness: times `Explorer::explore()` on the
//! fig10-style joint strategy searches, the pipeline-schedule grids and
//! joint strategy x pipeline searches, the serve-mode (`fig_serve`)
//! searches, and the continuous-batching load paths (`serve_load/...`:
//! event-driven vs naive per-token simulation at long decode lengths,
//! plus the SLO goodput search), then writes a machine-readable
//! `BENCH_PR<n>.json` at the repository root. Each PR that claims a hot-path win (or adds a new
//! search family) re-runs this bin and commits the new point, so the perf
//! history is a series of comparable JSON files rather than anecdotes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p madmax-bench --bin bench_report -- \
//!     [--threads N] [--out BENCH_PR6.json] [--reps 5] [--baseline PRE.json] \
//!     [--guard 0.95]
//! ```
//!
//! With `--baseline`, a previously emitted report (e.g. one produced by
//! running this bin against the pre-PR commit) is joined by search name
//! and each record gains `pre_pr_wall_ms` and `speedup` fields, making
//! the committed file a self-contained before/after comparison.
//! `--guard R` additionally fails the run (exit 1) unless the aggregate
//! fig10 suite stayed at least `R`x the baseline's wall-clock — the
//! telemetry layer's overhead guard: searches run with telemetry *off*
//! (no progress sink, no spool), so always-on counters must stay in the
//! noise.
//!
//! Fig. 10 runs each model's joint strategy search twice — memory-
//! constrained (blue bars) and unconstrained (orange bars) — so one record
//! is emitted per (model, constraint) search:
//! `{"search": "fig10/GPT-3/unconstrained", "candidates": 144,
//! "wall_ms": 1.23, "threads": 1}`. `wall_ms` is the best (minimum) of
//! `--reps` timed runs after one warm-up, so allocator and cache warm-up
//! noise does not pollute the trajectory.

use std::time::Instant;

use madmax_dse::{Explorer, FaultAxes, LoadAxes, PipelineAxes, SearchSpace, ServeAxes};
use madmax_engine::{FaultSpec, RetryPolicy, Scenario, SimMode};
use madmax_fault::materialize_faults;
use madmax_hw::units::Seconds;
use madmax_hw::{catalog, DeviceScaling};
use madmax_model::{LayerClass, ModelId};
use madmax_parallel::{LoadSpec, PipelineConfig, PipelineSchedule, Plan, ServeConfig, Workload};
use serde::{Deserialize, Serialize};

/// One timed search, as emitted (and re-read via `--baseline`) by this
/// bin. The comparison fields are `None`/`null` when no baseline is
/// supplied; the cache-hit-rate columns are `None` for aggregate records
/// and when re-reading reports from before the telemetry layer existed.
#[derive(Debug, Serialize, Deserialize)]
struct BenchRecord {
    search: String,
    candidates: usize,
    wall_ms: f64,
    threads: usize,
    pre_pr_wall_ms: Option<f64>,
    speedup: Option<f64>,
    flat_cache_hit_rate: Option<f64>,
    pipeline_cache_hit_rate: Option<f64>,
    report_memo_hit_rate: Option<f64>,
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
    }
    None
}

/// Times one search — one warm-up, then best-of-`reps` — and records it
/// under `search`, joining the pre-PR point from `baseline` when present.
/// `telemetry` (from a representative run) supplies the cache-hit-rate
/// columns.
#[allow(clippy::too_many_arguments)]
fn record(
    records: &mut Vec<BenchRecord>,
    baseline: &[BenchRecord],
    search: String,
    candidates: usize,
    threads: usize,
    reps: usize,
    telemetry: Option<&madmax_obs::SearchTelemetry>,
    mut run: impl FnMut(),
) -> f64 {
    run(); // warm-up
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        run();
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let pre = baseline
        .iter()
        .find(|r| r.search == search)
        .map(|r| r.wall_ms);
    let vs = pre.map_or(String::new(), |p| format!("  {:5.1}x vs pre", p / best_ms));
    let hit =
        |r: Option<f64>| r.map_or_else(|| "    -".to_owned(), |r| format!("{:4.0}%", r * 100.0));
    let flat = telemetry.and_then(|t| t.flat_cache.hit_rate());
    let pipe = telemetry.and_then(|t| t.pipeline_cache.hit_rate());
    let memo = telemetry.and_then(|t| t.report_memo.hit_rate());
    println!(
        "{search:<46} {candidates:>4} candidates  {best_ms:>9.2} ms  \
         cache {}/{}/{}  ({threads} threads){vs}",
        hit(flat),
        hit(pipe),
        hit(memo),
    );
    records.push(BenchRecord {
        search,
        candidates,
        wall_ms: best_ms,
        threads,
        pre_pr_wall_ms: pre,
        speedup: pre.map(|p| p / best_ms),
        flat_cache_hit_rate: flat,
        pipeline_cache_hit_rate: pipe,
        report_memo_hit_rate: memo,
    });
    best_ms
}

fn main() {
    let threads = arg_value("--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(madmax_bench::default_threads, |n| n.max(1));
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_PR6.json".to_owned());
    let guard: Option<f64> = arg_value("--guard").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--guard expects a ratio, got `{v}`"))
    });
    let reps: usize = arg_value("--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .max(1);
    let baseline: Vec<BenchRecord> = match arg_value("--baseline") {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse baseline {path}: {e}"))
        }
        None => Vec::new(),
    };

    let mut records: Vec<BenchRecord> = Vec::new();
    let (mut total_candidates, mut total_ms) = (0usize, 0.0f64);
    for id in ModelId::ALL {
        let model = id.build();
        let system = if id.is_dlrm() {
            catalog::zionex_dlrm_system()
        } else {
            catalog::llama_llm_system()
        };
        for (label, space) in [
            ("", SearchSpace::strategies()),
            ("/unconstrained", SearchSpace::strategies().unconstrained()),
        ] {
            let explorer = Explorer::new(&model, &system).space(space).threads(threads);
            let candidates = explorer.candidates().len();
            let outcome = explorer.explore().expect("baseline feasible");
            let best_ms = record(
                &mut records,
                &baseline,
                format!("fig10/{id}{label}"),
                candidates,
                threads,
                reps,
                Some(&outcome.telemetry),
                || {
                    let o = explorer.explore().expect("baseline feasible");
                    assert_eq!(o.best_plan, outcome.best_plan, "non-deterministic search");
                },
            );
            total_candidates += candidates;
            total_ms += best_ms;
        }
    }

    // Aggregate record: the full fig10 search suite, wall-clock summed.
    // A baseline produced by this bin carries its own aggregate record;
    // exclude it (and the non-fig10 searches) so pre-PR time is not
    // double-counted.
    {
        let search = "fig10/all".to_owned();
        let pre: f64 = baseline
            .iter()
            .filter(|r| r.search != search && r.search.starts_with("fig10/"))
            .map(|r| r.wall_ms)
            .sum();
        let pre = (pre > 0.0).then_some(pre);
        let vs = pre.map_or(String::new(), |p| format!("  {:5.1}x vs pre", p / total_ms));
        println!(
            "{search:<46} {total_candidates:>4} candidates  {total_ms:>9.2} ms  \
             ({threads} threads){vs}"
        );
        records.push(BenchRecord {
            search,
            candidates: total_candidates,
            wall_ms: total_ms,
            threads,
            pre_pr_wall_ms: pre,
            speedup: pre.map(|p| p / total_ms),
            flat_cache_hit_rate: None,
            pipeline_cache_hit_rate: None,
            report_memo_hit_rate: None,
        });
        // Overhead guard: the always-on telemetry counters (relaxed
        // atomics in the cost tables) must not slow the telemetry-off
        // suite below `--guard` x the baseline.
        if let (Some(ratio), Some(p)) = (guard, pre) {
            let speedup = p / total_ms;
            assert!(
                speedup >= ratio,
                "overhead guard failed: fig10 suite at {speedup:.3}x of baseline \
                 (threshold {ratio}x)"
            );
            println!("overhead guard passed: {speedup:.3}x >= {ratio}x");
        }
    }

    // Pipeline-schedule grids (the fig_pipeline_schedules hot loop): the
    // full (microbatch x schedule) plan grid at pp=8, evaluated through
    // the shared-table `Explorer::evaluate` fast path.
    for id in [ModelId::Llama, ModelId::Llama2, ModelId::Gpt3] {
        let model = id.build();
        let system = catalog::llama_llm_system();
        let plans: Vec<Plan> = [2usize, 4, 8, 16, 32]
            .iter()
            .flat_map(|&m| {
                [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB].map(|schedule| {
                    let mut plan = Plan::fsdp_baseline(&model).with_pipeline(PipelineConfig {
                        stages: 8,
                        microbatches: m,
                        schedule,
                    });
                    plan.options.ignore_memory_limits = true;
                    plan
                })
            })
            .collect();
        let explorer = Explorer::new(&model, &system)
            .workload(Workload::pretrain())
            .threads(threads);
        let (_, telemetry) = explorer.evaluate_with_telemetry(&Workload::pretrain(), &plans);
        record(
            &mut records,
            &baseline,
            format!("fig_pipeline_schedules/{id}"),
            plans.len(),
            threads,
            reps,
            Some(&telemetry),
            || {
                for r in explorer.evaluate(&plans) {
                    r.expect("schedule grid is feasible");
                }
            },
        );
    }

    // Joint strategy x pipeline searches (fig10 with pipeline axes): the
    // transformer-class strategy sweep crossed with (depth, microbatch,
    // schedule) on the training workload.
    for id in [ModelId::Llama2, ModelId::Gpt3] {
        let model = id.build();
        let system = catalog::llama_llm_system();
        let space = SearchSpace::strategies()
            .with_classes(vec![LayerClass::Transformer])
            .with_pipeline(PipelineAxes {
                stages: vec![1, 2, 4, 8],
                microbatches: vec![8, 16, 32],
                schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
            });
        let explorer = Explorer::new(&model, &system).space(space).threads(threads);
        let candidates = explorer.candidates().len();
        let outcome = explorer.explore().expect("joint baseline feasible");
        record(
            &mut records,
            &baseline,
            format!("fig10_pp/{id}/joint"),
            candidates,
            threads,
            reps,
            Some(&outcome.telemetry),
            || {
                let o = explorer.explore().expect("joint baseline feasible");
                assert_eq!(o.best_plan, outcome.best_plan, "non-deterministic search");
            },
        );
    }

    // Serve-mode searches (fig_serve): the joint (transformer strategy x
    // pipeline x decode batch) search on the bandwidth-constrained fabric,
    // and its flat (pp=1) half — swept across decode lengths so the
    // trajectory records how per-search cost scales with the token axis.
    // Decode 64 keeps the original bare names so `--baseline` joins
    // pre-grid reports; longer decodes get an `@dec<n>` suffix.
    {
        let model = ModelId::Llama2.build();
        let slow = catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
        for decode in [64usize, 256, 1024] {
            let workload = Workload::serve(ServeConfig::new(1024, decode));
            let suffix = if decode == 64 {
                String::new()
            } else {
                format!("@dec{decode}")
            };
            let flat_space = SearchSpace::strategies()
                .with_classes(vec![LayerClass::Transformer])
                .with_serve(ServeAxes::batches([256, 512]));
            let joint_space = flat_space.clone().with_pipeline(PipelineAxes {
                stages: vec![1, 2, 4, 8],
                microbatches: vec![8, 16],
                schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
            });
            for (label, space) in [("flat", flat_space), ("joint", joint_space)] {
                let explorer = Explorer::new(&model, &slow)
                    .workload(workload.clone())
                    .space(space)
                    .threads(threads);
                let outcome = explorer.explore().expect("serve baseline feasible");
                // (plan x decode-batch) combinations, as tallied by the
                // search itself.
                let candidates = outcome.evaluated;
                record(
                    &mut records,
                    &baseline,
                    format!("fig_serve/{}/{label}{suffix}", ModelId::Llama2),
                    candidates,
                    threads,
                    reps,
                    Some(&outcome.telemetry),
                    || {
                        let o = explorer.explore().expect("serve baseline feasible");
                        assert_eq!(o.best_plan, outcome.best_plan, "non-deterministic search");
                    },
                );
            }
        }
    }

    // Continuous-batching load simulator: event-driven vs the naive
    // per-token reference on long-decode streams. The event mode
    // collapses homogeneous decode runs with the closed-form series
    // re-entry, so its advantage grows with the decode length; both
    // modes must stay byte-identical on the request-visible report.
    {
        let model = ModelId::Llama2.build();
        let system = catalog::llama_llm_system();
        for decode in [256usize, 1024] {
            let workload = Workload::serve(ServeConfig::new(256, decode).with_decode_batch(8));
            let spec = LoadSpec::poisson(0.02, 32, 9).with_kv_blocks(16_384);
            let scenario = Scenario::new(&model, &system).workload_ref(&workload);
            let costs = scenario.price_load(&spec).expect("load prices");
            let event = scenario
                .serve_load_priced(&spec, &costs, SimMode::Event, None)
                .expect("event run");
            let naive = scenario
                .serve_load_priced(&spec, &costs, SimMode::PerToken, None)
                .expect("per-token run");
            assert_eq!(event.report, naive.report, "modes must agree byte-for-byte");
            let mut walls = [0.0f64; 2];
            for (i, (label, mode)) in [("event", SimMode::Event), ("pertoken", SimMode::PerToken)]
                .into_iter()
                .enumerate()
            {
                walls[i] = record(
                    &mut records,
                    &baseline,
                    format!("serve_load/{}/{label}@dec{decode}", ModelId::Llama2),
                    spec.arrivals.count(),
                    1,
                    reps,
                    None,
                    || {
                        scenario
                            .serve_load_priced(&spec, &costs, mode, None)
                            .expect("load run");
                    },
                );
            }
            println!(
                "serve_load event vs per-token @dec{decode}: {:.1}x faster",
                walls[1] / walls[0]
            );
        }

        // The SLO-constrained goodput search end-to-end: candidates
        // priced once, every arrival rate simulated in event mode.
        let axes = LoadAxes::new(
            LoadSpec::poisson(0.02, 16, 9).with_kv_blocks(8192),
            [0.02, 0.1, 0.5],
        )
        .with_slo_ttft_p99(Seconds::new(60.0));
        let explorer = Explorer::new(&model, &system)
            .workload(Workload::serve(
                ServeConfig::new(256, 64).with_decode_batch(8),
            ))
            .space(SearchSpace::default().with_pipeline(PipelineAxes {
                stages: vec![1, 2, 4, 8],
                microbatches: vec![8],
                schedules: vec![PipelineSchedule::GPipe],
            }));
        let outcome = explorer.explore_load(&axes).expect("load search runs");
        record(
            &mut records,
            &baseline,
            format!("serve_load_search/{}", ModelId::Llama2),
            outcome.evaluated,
            1,
            reps,
            None,
            || {
                let o = explorer.explore_load(&axes).expect("load search runs");
                assert_eq!(
                    o.best_candidate, outcome.best_candidate,
                    "non-deterministic load search"
                );
            },
        );
    }

    // Failure-aware paths: the goodput-ranked strategy search (one
    // simulation + closed-form interval sweep per candidate) and the
    // fault-injected continuous-batching simulator (fatal windows
    // dropping in-flight requests, retries, degraded capacity) against
    // its fault-free twin on the same stream.
    {
        let model = ModelId::Llama2.build();
        let system = catalog::llama_llm_system();
        let explorer = Explorer::new(&model, &system)
            .space(SearchSpace::strategies())
            .threads(threads);
        let axes =
            FaultAxes::new(FaultSpec::fatal(3600.0, 60.0, 7)).with_intervals([60.0, 300.0, 1800.0]);
        let outcome = explorer
            .explore_goodput(&axes)
            .expect("goodput search runs");
        record(
            &mut records,
            &baseline,
            format!("goodput_search/{}", ModelId::Llama2),
            outcome.evaluated,
            threads,
            reps,
            Some(&outcome.telemetry),
            || {
                let o = explorer
                    .explore_goodput(&axes)
                    .expect("goodput search runs");
                assert_eq!(
                    o.best_candidate, outcome.best_candidate,
                    "non-deterministic goodput search"
                );
            },
        );

        let workload = Workload::serve(ServeConfig::new(128, 24).with_decode_batch(4));
        let spec = LoadSpec::bursty(0.4, 20.0, 10.0, 32, 7);
        let scenario = Scenario::new(&model, &system).workload_ref(&workload);
        let costs = scenario.price_load(&spec).expect("load prices");
        let horizon =
            madmax_core::steady::grid_units_round(Seconds::new(400.0)).expect("horizon on grid");
        let events = materialize_faults(&FaultSpec::fatal(60.0, 5.0, 3), horizon).expect("faults");
        let retry = RetryPolicy::retries(3);
        for (label, faults) in [("faulty", events.as_slice()), ("clean", &[][..])] {
            record(
                &mut records,
                &baseline,
                format!("serve_load_fault/{}/{label}", ModelId::Llama2),
                spec.arrivals.count(),
                1,
                reps,
                None,
                || {
                    scenario
                        .serve_load_faulty(&spec, &costs, SimMode::Event, faults, &retry, None)
                        .expect("faulty load run");
                },
            );
        }
    }

    let lines: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", serde_json::to_string(r).expect("record serializes")))
        .collect();
    let json = format!("[\n{}\n]\n", lines.join(",\n"));
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join(&out_path), &json).expect("write bench report");
    println!("wrote {out_path}");
}
