//! Regenerates the paper's Fig. 17.
fn main() {
    madmax_bench::emit(
        "fig17_gpu_generations",
        &madmax_bench::experiments::hardware_figs::fig17(),
    );
}
