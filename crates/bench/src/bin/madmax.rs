//! `madmax` — command-line driver for the performance model.
//!
//! ```text
//! madmax list                                # models and systems
//! madmax simulate --model dlrm-a --system zionex \
//!        --task pretraining --dense "(TP, DDP)"
//! madmax simulate --model llama2 --system llama \
//!        --task serve --prompt 1024 --decode 128   # TTFT / TPOT
//! madmax search   --model gpt-3 --system llama --task inference --threads 8
//! madmax search   --model llama2 --system llama --task serve \
//!        --prompt 512 --decode 64                  # serve-mode DSE
//! madmax config   --model dlrm-b --out /tmp/cfgs   # emit the 3 JSON files
//! madmax simulate --config-dir /tmp/cfgs           # run from JSON configs
//! madmax verify [--only pipeline]                  # verify corpus schedules
//! madmax simulate --model llama2 --system llama --task serve \
//!        --prompt 256 --decode 64 --decode-batch 8 \
//!        --arrival-rate 0.1 --arrival-count 64     # continuous batching
//! madmax search   --model llama2 --system llama --task serve \
//!        --prompt 256 --decode 64 --decode-batch 8 \
//!        --arrival-rate 0.05,0.2,1 --slo-ttft-p99 30   # SLO goodput search
//! ```
//!
//! Continuous-batching load flags (simulate and search, serve task):
//!
//! - `--arrival-rate R` — seeded Poisson arrivals at `R` requests/second
//!   (`search` accepts a comma-separated rate ladder and sweeps it);
//!   `--arrival-count N` / `--arrival-seed S` shape the stream.
//! - `--arrival-trace PATH` — JSONL request trace instead of Poisson,
//!   one `{"arrival": s, "prompt_len": n, "decode_len": m}` per line.
//! - `--burst-on S` / `--burst-off S` — modulate the Poisson stream
//!   into an on-off bursty process (exponential on/off phases with the
//!   given means; arrivals pause during off phases).
//! - `--kv-blocks B`, `--queue-cap Q`, `--eviction`, `--horizon S` —
//!   paged KV budget, admission-queue bound, eviction+recompute policy,
//!   and run cutoff.
//! - `--slo-ttft-p99 S` — p99 time-to-first-token SLO in seconds:
//!   `simulate` reports goodput under it, `search` ranks candidates by
//!   throughput subject to it.
//! - With `--progress N`, request completions tick on stderr; with
//!   `--verify`, the load trace runs the `request-lifecycle` and
//!   `paged-kv-residency` rules; with `--emit-trace PATH`, per-request
//!   Perfetto tracks (queue wait, KV residency, engine timeline) are
//!   exported.
//!
//! Fault-injection flags (active with `--mtbf`):
//!
//! - `--mtbf S` — fleet mean time between fatal faults, seconds. On a
//!   `simulate` with an arrival process, fatal faults drop in-flight
//!   requests (retried per `--retry`) and degrade capacity for
//!   `--recovery` seconds; on a plain serve/training `simulate`, the
//!   command reports checkpoint/restart *goodput* (closed-form
//!   Young/Daly, cross-checked against a seeded discrete-event replay);
//!   on `search`, candidates are ranked by goodput-optimal effective
//!   throughput instead of iteration latency.
//! - `--checkpoint-interval S` — seconds of useful work between
//!   checkpoint writes (default: the Young/Daly optimum; `search`
//!   accepts a comma ladder and sweeps it per candidate).
//! - `--recovery S` — capacity-recovery time per fatal fault (default
//!   30); `--slots-lost N` — serving slots lost per fault (default 1).
//! - `--retry N` — fault-retry budget per request (default 3), with
//!   `--retry-backoff S` / `--retry-timeout S`.
//! - `--fault-seed S` — fault-stream PRNG seed (default 7);
//!   `--fault-horizon S` — materialization horizon (default: the load
//!   horizon, else 4 MTBFs).
//!
//! Observability flags:
//!
//! - `--emit-trace PATH` (simulate, search): write the simulated schedule
//!   as Chrome trace-event JSON — open it at <https://ui.perfetto.dev>.
//!   `search` exports its winner's schedule; built with the
//!   `self-profile` feature, the explorer's own price/assemble/report
//!   spans land in the same file as a second process.
//! - `--telemetry PATH` (search): write the search's
//!   [`madmax_obs::SearchTelemetry`] (outcome counters, cache hit rates,
//!   per-worker throughput, latency histogram) as JSON.
//! - `--progress N` (search): print a progress line every N candidates.
//! - `--verify` (simulate, search): run the full `madmax-verify` rule
//!   set on the produced (simulate) or winning (search) schedule; any
//!   error-severity diagnostic fails the command.
//!
//! The `verify` subcommand sweeps the whole built-in corpus
//! ([`madmax_bench::verify_corpus`]: the model zoo, the pipeline and
//! serve shapes, and the obs golden-trace scenarios) and exits non-zero
//! if any scenario draws an error — this is CI's schedule-integrity
//! gate. `--only SUBSTR` restricts it to matching scenario names.

use std::collections::BTreeMap;
use std::process::ExitCode;

use madmax_core::config::{ExperimentSpec, SimulationConfig};
use madmax_core::steady::grid_units_round;
use madmax_dse::{Explorer, FaultAxes, LoadAxes, SearchSpace};
use madmax_engine::{FaultSpec, RetryPolicy, Scenario, SimMode};
use madmax_fault::{materialize_faults, replay_goodput};
use madmax_hw::units::Seconds;
use madmax_hw::{catalog, ClusterSpec};
use madmax_model::{LayerClass, ModelArch, ModelId};
use madmax_obs::{forward_to_sink, ChromeTrace, LoadTelemetry, ProgressSink, StderrTicker};
use madmax_parallel::{HierStrategy, LoadSpec, Plan, ServeConfig, Workload};
use madmax_serve::parse_request_jsonl;

fn models() -> BTreeMap<&'static str, ModelId> {
    BTreeMap::from([
        ("dlrm-a", ModelId::DlrmA),
        ("dlrm-a-transformer", ModelId::DlrmATransformer),
        ("dlrm-a-moe", ModelId::DlrmAMoe),
        ("dlrm-b", ModelId::DlrmB),
        ("dlrm-b-transformer", ModelId::DlrmBTransformer),
        ("dlrm-b-moe", ModelId::DlrmBMoe),
        ("gpt-3", ModelId::Gpt3),
        ("llama", ModelId::Llama),
        ("llama2", ModelId::Llama2),
        ("llm-moe", ModelId::LlmMoe),
    ])
}

fn systems() -> BTreeMap<&'static str, fn() -> ClusterSpec> {
    BTreeMap::from([
        ("zionex", catalog::zionex_dlrm_system as fn() -> ClusterSpec),
        ("llama", catalog::llama_llm_system),
        ("h100", || catalog::h100_cluster(16)),
        ("superpod", || catalog::h100_superpod_cluster(16)),
        ("mi250x", catalog::mi250x_cluster),
        ("mi300x", catalog::mi300x_cluster),
        ("gaudi2", catalog::gaudi2_cluster),
    ])
}

/// Flags that take no value (presence alone means `true`).
const BOOL_FLAGS: &[&str] = &["verify", "eviction"];

struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            if BOOL_FLAGS.contains(&key) {
                flags.insert(key.to_owned(), "true".to_owned());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?
                .clone();
            flags.insert(key.to_owned(), value);
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn is_set(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

/// Parses `--task` (plus the serve flags `--prompt`, `--decode`,
/// `--decode-batch`, `--kv`) into a [`Workload`].
fn parse_workload(args: &Args) -> Result<Workload, String> {
    let parse_flag = |key: &str| -> Result<Option<usize>, String> {
        args.get(key)
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("--{key} expects a number"))
            })
            .transpose()
    };
    match args.get("task").unwrap_or("pretraining") {
        "pretraining" | "pretrain" | "train" => Ok(Workload::pretrain()),
        "inference" | "infer" => Ok(Workload::inference()),
        "finetune-dense" | "finetune-mlp" => Ok(Workload::finetune_only(LayerClass::Dense)),
        "finetune-embedding" | "finetune-emb" => Ok(Workload::finetune_only(LayerClass::Embedding)),
        "serve" => {
            let kv_cache = match args.get("kv") {
                None | Some("true") => true,
                Some("false") => false,
                Some(other) => return Err(format!("--kv expects true or false, got `{other}`")),
            };
            let cfg = ServeConfig {
                prompt_len: parse_flag("prompt")?,
                decode_len: parse_flag("decode")?.unwrap_or(0),
                decode_batch: parse_flag("decode-batch")?,
                kv_cache,
            };
            Ok(Workload::serve(cfg))
        }
        other => Err(format!("unknown task `{other}`")),
    }
}

/// Parses an optional numeric flag.
fn parse_num<T: std::str::FromStr>(args: &Args, key: &str) -> Result<Option<T>, String> {
    args.get(key)
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| format!("--{key} expects a number"))
        })
        .transpose()
}

/// Parses `--arrival-rate`: one rate for `simulate`, a comma-separated
/// ladder for `search` (e.g. `--arrival-rate 0.05,0.2,1`).
fn parse_rates(args: &Args) -> Result<Option<Vec<f64>>, String> {
    args.get("arrival-rate")
        .map(|v| {
            v.split(',')
                .map(|r| {
                    r.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("--arrival-rate: `{r}` is not a number"))
                })
                .collect::<Result<Vec<f64>, String>>()
        })
        .transpose()
}

/// Parses the continuous-batching load flags into a [`LoadSpec`], when
/// any arrival process is requested. `--arrival-rate R` (with
/// `--arrival-count` / `--arrival-seed`) builds a seeded Poisson stream;
/// `--arrival-trace PATH` reads a JSONL request trace (one
/// `{"arrival": s, "prompt_len": n, "decode_len": m}` object per line).
/// `--kv-blocks`, `--queue-cap`, `--eviction`, and `--horizon` shape the
/// paged KV budget and admission queue of either process.
fn parse_load_spec(args: &Args) -> Result<Option<LoadSpec>, String> {
    let rates = parse_rates(args)?;
    let burst = match (
        parse_num::<f64>(args, "burst-on")?,
        parse_num::<f64>(args, "burst-off")?,
    ) {
        (Some(on), Some(off)) => Some((on, off)),
        (None, None) => None,
        _ => return Err("--burst-on and --burst-off must be given together".to_owned()),
    };
    if burst.is_some() && rates.is_none() {
        return Err(
            "--burst-on/--burst-off modulate a Poisson stream; add --arrival-rate".to_owned(),
        );
    }
    let mut spec = match (&rates, args.get("arrival-trace")) {
        (Some(_), Some(_)) => {
            return Err("--arrival-rate and --arrival-trace are mutually exclusive".to_owned());
        }
        (Some(rates), None) => {
            let count = parse_num::<usize>(args, "arrival-count")?.unwrap_or(64);
            let seed = parse_num::<u64>(args, "arrival-seed")?.unwrap_or(42);
            match burst {
                Some((on, off)) => LoadSpec::bursty(rates[0], on, off, count, seed),
                None => LoadSpec::poisson(rates[0], count, seed),
            }
        }
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            LoadSpec::trace(parse_request_jsonl(&text).map_err(|e| e.to_string())?)
        }
        (None, None) => return Ok(None),
    };
    if let Some(blocks) = parse_num::<u64>(args, "kv-blocks")? {
        spec = spec.with_kv_blocks(blocks);
    }
    if let Some(cap) = parse_num::<usize>(args, "queue-cap")? {
        spec = spec.with_queue_capacity(cap);
    }
    if args.is_set("eviction") {
        spec = spec.with_eviction(true);
    }
    if let Some(h) = parse_num::<f64>(args, "horizon")? {
        spec = spec.with_horizon(h);
    }
    Ok(Some(spec))
}

/// Parses `--slo-ttft-p99` (seconds).
fn parse_slo(args: &Args) -> Result<Option<Seconds>, String> {
    Ok(parse_num::<f64>(args, "slo-ttft-p99")?.map(Seconds::new))
}

/// Parses `--checkpoint-interval`: one interval for `simulate`, a
/// comma-separated grid for `search` (e.g.
/// `--checkpoint-interval 60,300,1800`). Empty when the flag is absent.
fn parse_intervals(args: &Args) -> Result<Vec<f64>, String> {
    args.get("checkpoint-interval").map_or(Ok(Vec::new()), |v| {
        v.split(',')
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("--checkpoint-interval: `{s}` is not a number"))
            })
            .collect()
    })
}

/// Parses the fault-injection flags into a [`FaultSpec`], when `--mtbf`
/// requests one. The checkpoint interval is left to the caller
/// (`simulate` applies a single `--checkpoint-interval`; `search`
/// sweeps the comma ladder through [`FaultAxes`]).
fn parse_fault_spec(args: &Args) -> Result<Option<FaultSpec>, String> {
    let Some(mtbf) = parse_num::<f64>(args, "mtbf")? else {
        for flag in [
            "checkpoint-interval",
            "recovery",
            "slots-lost",
            "retry",
            "retry-backoff",
            "retry-timeout",
            "fault-seed",
            "fault-horizon",
        ] {
            if args.get(flag).is_some() {
                return Err(format!("--{flag} needs --mtbf"));
            }
        }
        return Ok(None);
    };
    let recovery = parse_num::<f64>(args, "recovery")?.unwrap_or(30.0);
    let seed = parse_num::<u64>(args, "fault-seed")?.unwrap_or(7);
    let mut spec = FaultSpec::fatal(mtbf, recovery, seed);
    if let Some(n) = parse_num::<usize>(args, "slots-lost")? {
        spec = spec.with_slots_lost(n);
    }
    spec.validate()?;
    Ok(Some(spec))
}

/// Parses the retry flags into a [`RetryPolicy`].
fn parse_retry(args: &Args) -> Result<RetryPolicy, String> {
    let mut policy = match parse_num::<u32>(args, "retry")? {
        Some(n) => RetryPolicy::retries(n),
        None => RetryPolicy::default(),
    };
    if let Some(backoff) = parse_num::<f64>(args, "retry-backoff")? {
        policy = policy.with_backoff(backoff);
    }
    if let Some(timeout) = parse_num::<f64>(args, "retry-timeout")? {
        policy = policy.with_timeout(timeout);
    }
    policy.validate()?;
    Ok(policy)
}

/// `simulate` with an arrival process: run the continuous-batching load
/// simulator instead of the one-wave report. With a [`FaultSpec`]
/// (`--mtbf`), the stream runs through the fault-aware simulator:
/// fatal faults interrupt in-flight requests (requeued per the retry
/// policy) and degrade capacity until recovery.
fn run_load_simulation(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    spec: &LoadSpec,
    fault: Option<&FaultSpec>,
    args: &Args,
) -> Result<(), String> {
    let scenario = Scenario::new(model, system)
        .plan_ref(plan)
        .workload_ref(workload);
    let costs = scenario.price_load(spec).map_err(|e| e.to_string())?;
    let ticker = parse_num::<u64>(args, "progress")?.map(StderrTicker::every);
    let (events, retry) = match fault {
        Some(f) => {
            // Cover the whole run: the load horizon when set, else four
            // MTBFs (capped to the exact grid's ~16384 s range).
            let horizon_secs = match parse_num::<f64>(args, "fault-horizon")? {
                Some(h) => h,
                None => spec
                    .horizon
                    .unwrap_or_else(|| (4.0 * f.mtbf.unwrap_or(f64::INFINITY)).min(16_000.0)),
            };
            let horizon = grid_units_round(Seconds::new(horizon_secs))
                .ok_or_else(|| format!("fault horizon {horizon_secs} s beyond the exact grid"))?;
            let events = materialize_faults(f, horizon).map_err(|e| e.to_string())?;
            (events, parse_retry(args)?)
        }
        None => (Vec::new(), RetryPolicy::default()),
    };
    let started = std::time::Instant::now();
    let outcome = match (fault.is_some(), &ticker) {
        (true, Some(t)) => {
            let mut hook = forward_to_sink(t);
            scenario.serve_load_faulty(
                spec,
                &costs,
                SimMode::Event,
                &events,
                &retry,
                Some(&mut hook),
            )
        }
        (true, None) => {
            scenario.serve_load_faulty(spec, &costs, SimMode::Event, &events, &retry, None)
        }
        (false, Some(t)) => {
            let mut hook = forward_to_sink(t);
            scenario.serve_load_priced(spec, &costs, SimMode::Event, Some(&mut hook))
        }
        (false, None) => scenario.serve_load_priced(spec, &costs, SimMode::Event, None),
    }
    .map_err(|e| e.to_string())?;
    let telemetry = LoadTelemetry::from_outcome(
        &outcome,
        SimMode::Event,
        started.elapsed().as_secs_f64() * 1e3,
    );
    if let Some(t) = &ticker {
        t.load_finished(&telemetry);
    }
    let r = &outcome.report;
    println!("workload:        {} ({workload})", model.name);
    println!("system:          {}", system.name);
    println!("plan:            {}", plan.summary());
    println!(
        "load:            {} arrivals | {} completed | {} rejected | {} evictions",
        r.arrivals, r.completed, r.rejected, r.evictions
    );
    if fault.is_some() {
        println!(
            "faults:          {} windows | availability {:.1}% | {} retries | {} failed",
            outcome.trace.faults.len(),
            r.availability * 100.0,
            r.retries,
            r.failed
        );
    }
    if let Some(t) = &r.ttft {
        println!(
            "ttft:            p50 {:.1} ms | p95 {:.1} ms | p99 {:.1} ms | max {:.1} ms",
            t.p50.as_ms(),
            t.p95.as_ms(),
            t.p99.as_ms(),
            t.max.as_ms()
        );
    }
    if let Some(t) = &r.tpot {
        println!(
            "tpot:            p50 {:.2} ms | p95 {:.2} ms | p99 {:.2} ms",
            t.p50.as_ms(),
            t.p95.as_ms(),
            t.p99.as_ms()
        );
    }
    println!(
        "goodput:         {:.1} tokens/s over a {:.3} s makespan",
        r.tokens_per_sec,
        r.makespan.as_secs()
    );
    if let Some(slo) = parse_slo(args)? {
        let verdict = if r.meets_ttft_slo(slo) {
            "met"
        } else {
            "violated"
        };
        println!(
            "slo:             p99 TTFT <= {:.0} ms {verdict} | {:.1} tokens/s within SLO",
            slo.as_ms(),
            r.goodput_tokens_per_sec(slo)
        );
        if fault.is_some() {
            for (from, to) in r.slo_violation_windows(slo) {
                println!(
                    "slo violation:   arrivals in [{:.1} s, {:.1} s] missed the TTFT bound",
                    from.as_secs(),
                    to.as_secs()
                );
            }
        }
    }
    println!(
        "queue:           max depth {} | mean {:.2}",
        r.max_queue_depth, r.mean_queue_depth
    );
    if let Some(total) = outcome.trace.total_blocks {
        println!("kv blocks:       peak {} of {total}", r.peak_kv_blocks);
    }
    if let Some(path) = args.get("emit-trace") {
        ChromeTrace::from_load_trace(&outcome.trace)
            .write(path)
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("trace written to {path} (open at https://ui.perfetto.dev)");
    }
    if args.is_set("verify") {
        finish_verify(&madmax_verify::verify_load(&outcome.trace))?;
    }
    Ok(())
}

/// `simulate` with `--mtbf` and no arrival process: the training
/// checkpoint/restart goodput evaluation — checkpoint costs priced from
/// the plan's memory breakdown, the closed-form Young/Daly expected
/// goodput, and a seeded discrete-event replay cross-check.
fn run_goodput(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    fault: &FaultSpec,
    args: &Args,
) -> Result<(), String> {
    let intervals = parse_intervals(args)?;
    let fault = match intervals.as_slice() {
        [] => fault.clone(),
        [one] => fault.clone().with_checkpoint_interval(*one),
        _ => {
            return Err(
                "simulate takes a single --checkpoint-interval; pass a comma ladder to search"
                    .to_owned(),
            )
        }
    };
    let outcome = Scenario::new(model, system)
        .plan_ref(plan)
        .workload_ref(workload)
        .goodput(&fault)
        .map_err(|e| e.to_string())?;
    let g = &outcome.goodput;
    println!("workload:        {} ({workload})", model.name);
    println!("system:          {}", system.name);
    println!("plan:            {}", plan.summary());
    println!(
        "iteration:       {:.3} ms | checkpoint state {:.1} GB/device",
        outcome.report.iteration_time.as_ms(),
        outcome.ckpt.state_bytes.as_gb()
    );
    println!(
        "checkpoint:      write {:.2} s | restart {:.2} s | interval {:.1} s{}",
        g.checkpoint_write,
        g.restart,
        g.interval,
        if fault.checkpoint_interval.is_some() {
            ""
        } else {
            " (Young/Daly optimum)"
        }
    );
    println!(
        "goodput:         {:.2}% of {:.4} iter/s fault-free -> {:.4} iter/s at MTBF {:.0} s",
        g.goodput_fraction * 100.0,
        g.fault_free_throughput,
        g.effective_throughput,
        g.mtbf
    );
    const REPLAY_SEGMENTS: usize = 200_000;
    let replayed = replay_goodput(
        g.checkpoint_write,
        g.restart,
        g.mtbf,
        g.interval,
        fault.seed,
        REPLAY_SEGMENTS,
    );
    println!(
        "replay check:    {:.2}% goodput over {REPLAY_SEGMENTS} replayed segments (seed {})",
        replayed * 100.0,
        fault.seed
    );
    if args.is_set("verify") {
        finish_verify(&madmax_verify::verify_goodput(g))?;
    }
    Ok(())
}

fn lookup_model(args: &Args) -> Result<ModelArch, String> {
    let name = args.get("model").ok_or("missing --model")?;
    models()
        .get(name)
        .map(|id| id.build())
        .ok_or_else(|| format!("unknown model `{name}` (see `madmax list`)"))
}

fn lookup_system(args: &Args) -> Result<ClusterSpec, String> {
    let name = args.get("system").ok_or("missing --system")?;
    systems()
        .get(name)
        .map(|f| f())
        .ok_or_else(|| format!("unknown system `{name}` (see `madmax list`)"))
}

fn build_plan(model: &ModelArch, args: &Args) -> Result<Plan, String> {
    let mut plan = Plan::fsdp_baseline(model);
    for (flag, class) in [
        ("embedding", LayerClass::Embedding),
        ("dense", LayerClass::Dense),
        ("transformer", LayerClass::Transformer),
        ("moe", LayerClass::Moe),
    ] {
        if let Some(notation) = args.get(flag) {
            let strategy: HierStrategy = notation.parse().map_err(|e| format!("{e}"))?;
            plan = plan.with_strategy(class, strategy);
        }
    }
    Ok(plan)
}

/// Exports a scenario's schedule (plus any recorded self-profile spans)
/// as Chrome trace-event JSON.
fn emit_trace(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
    path: &str,
) -> Result<(), String> {
    // Idempotent: the search arm switches recording on before exploring
    // so the whole search is profiled; for a bare `simulate` this at
    // least captures the export run itself. No-op without the
    // `self-profile` feature.
    madmax_core::prof::set_recording(true);
    let (_, trace, sched) = Scenario::new(model, system)
        .plan(plan.clone())
        .workload(workload.clone())
        .run_with_trace()
        .map_err(|e| e.to_string())?;
    let mut chrome = ChromeTrace::from_schedule(&trace, &sched);
    chrome.add_spans(&madmax_core::prof::take());
    chrome
        .write(path)
        .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
    eprintln!("trace written to {path} (open at https://ui.perfetto.dev)");
    Ok(())
}

/// Runs the full `madmax-verify` rule set on the scenario's
/// engine-produced trace and schedule.
fn verify_scenario(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Result<madmax_verify::VerifyReport, String> {
    let (_, trace, sched) = Scenario::new(model, system)
        .plan(plan.clone())
        .workload(workload.clone())
        .run_with_trace()
        .map_err(|e| e.to_string())?;
    Ok(madmax_verify::Verifier::for_plan(plan, workload).verify(&trace, &sched))
}

/// Prints a verification report (diagnostics plus the critical-path
/// analysis) and turns error-severity findings into a CLI failure.
fn finish_verify(report: &madmax_verify::VerifyReport) -> Result<(), String> {
    for d in &report.diagnostics {
        println!("  {d}");
    }
    if let Some(cp) = &report.critical_path {
        println!(
            "verify:          critical path {:.3} ms over {} ops",
            cp.lower_bound.as_ms(),
            cp.ops
        );
    }
    if report.is_clean() {
        println!(
            "verify:          clean ({} warnings)",
            report.warning_count()
        );
        Ok(())
    } else {
        Err(format!(
            "schedule verification found {} error(s)",
            report.error_count()
        ))
    }
}

fn print_report(
    model: &ModelArch,
    system: &ClusterSpec,
    plan: &Plan,
    workload: &Workload,
) -> Result<(), String> {
    let report = Scenario::new(model, system)
        .plan(plan.clone())
        .workload(workload.clone())
        .run()
        .map_err(|e| e.to_string())?;
    println!("workload:        {} ({workload})", model.name);
    println!("system:          {}", system.name);
    println!("plan:            {}", plan.summary());
    println!(
        "iteration:       {:.3} ms (serialized {:.3} ms)",
        report.iteration_time.as_ms(),
        report.serialized_time.as_ms()
    );
    match model.batch_unit {
        madmax_model::BatchUnit::Samples => println!("throughput:      {:.3} MQPS", report.mqps()),
        madmax_model::BatchUnit::Tokens => {
            println!("throughput:      {:.0} tokens/s", report.tokens_per_sec());
        }
    }
    println!(
        "comm exposed:    {:.2} ms of {:.2} ms ({:.1}%)",
        report.exposed_comm.as_ms(),
        report.comm_time.as_ms(),
        report.exposed_fraction() * 100.0
    );
    println!("memory/device:   {:.1} GB", report.memory.total().as_gb());
    if report.memory.kv_cache.as_gb() > 0.0 {
        println!("  kv-cache       {:.1} GB", report.memory.kv_cache.as_gb());
    }
    if let Some(s) = &report.serve {
        println!(
            "serve:           TTFT {:.3} ms | TPOT {:.3} ms | {:.0} tokens/s out",
            s.ttft.as_ms(),
            s.tpot.as_ms(),
            report.serve_tokens_per_sec().unwrap_or(0.0)
        );
    }
    for (k, t) in &report.comm_by_collective {
        println!("  {k:<14} {:.3} ms", t.as_ms());
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("usage: madmax <list|simulate|search|verify|config> [flags]".to_owned());
    };
    match cmd.as_str() {
        "list" => {
            println!("models:");
            for (name, id) in models() {
                let s = id.build().stats();
                println!(
                    "  {name:<22} {}",
                    madmax_hw::units::human_params(s.params_total)
                );
            }
            println!("systems:");
            for (name, f) in systems() {
                let c = f();
                println!("  {name:<22} {} x{}", c.device.name, c.total_devices());
            }
            Ok(())
        }
        "simulate" => {
            let args = Args::parse(rest)?;
            if let Some(dir) = args.get("config-dir") {
                let dir = std::path::Path::new(dir);
                let cfg = SimulationConfig::from_json_files(
                    dir.join("model.json"),
                    dir.join("system.json"),
                    dir.join("experiment.json"),
                )
                .map_err(|e| e.to_string())?;
                print_report(
                    &cfg.model,
                    &cfg.system,
                    &cfg.experiment.plan,
                    &cfg.experiment.workload,
                )?;
                if let Some(path) = args.get("emit-trace") {
                    emit_trace(
                        &cfg.model,
                        &cfg.system,
                        &cfg.experiment.plan,
                        &cfg.experiment.workload,
                        path,
                    )?;
                }
                if args.is_set("verify") {
                    let report = verify_scenario(
                        &cfg.model,
                        &cfg.system,
                        &cfg.experiment.plan,
                        &cfg.experiment.workload,
                    )?;
                    finish_verify(&report)?;
                }
                return Ok(());
            }
            let model = lookup_model(&args)?;
            let system = lookup_system(&args)?;
            let workload = parse_workload(&args)?;
            let plan = build_plan(&model, &args)?;
            let fault = parse_fault_spec(&args)?;
            if let Some(spec) = parse_load_spec(&args)? {
                return run_load_simulation(
                    &model,
                    &system,
                    &plan,
                    &workload,
                    &spec,
                    fault.as_ref(),
                    &args,
                );
            }
            if let Some(fault) = &fault {
                return run_goodput(&model, &system, &plan, &workload, fault, &args);
            }
            print_report(&model, &system, &plan, &workload)?;
            if let Some(path) = args.get("emit-trace") {
                emit_trace(&model, &system, &plan, &workload, path)?;
            }
            if args.is_set("verify") {
                let report = verify_scenario(&model, &system, &plan, &workload)?;
                finish_verify(&report)?;
            }
            Ok(())
        }
        "search" => {
            let args = Args::parse(rest)?;
            let model = lookup_model(&args)?;
            let system = lookup_system(&args)?;
            let workload = parse_workload(&args)?;
            let mut space = SearchSpace::strategies();
            space.ignore_memory_limits = args.get("unconstrained") == Some("true");
            let ticker = args
                .get("progress")
                .map(|n| {
                    n.parse::<u64>()
                        .map(StderrTicker::every)
                        .map_err(|_| "--progress expects a number")
                })
                .transpose()?;
            if args.get("emit-trace").is_some() {
                // With the `self-profile` feature compiled in, record the
                // engine's price/assemble/report spans into the trace.
                madmax_core::prof::set_recording(true);
            }
            let mut explorer = Explorer::new(&model, &system)
                .workload(workload)
                .space(space)
                .verify_winner(args.is_set("verify"));
            if let Some(t) = ticker.as_ref() {
                explorer = explorer.progress(t);
            }
            if let Some(n) = args.get("threads") {
                let n: usize = n.parse().map_err(|_| "--threads expects a number")?;
                explorer = explorer.threads(n);
            }
            if let Some(fault) = parse_fault_spec(&args)? {
                if parse_load_spec(&args)?.is_some() {
                    return Err(
                        "goodput search takes no arrival process; drop the load flags or \
                         run `simulate` for a fault-aware load simulation"
                            .to_owned(),
                    );
                }
                let mut axes = FaultAxes::new(fault);
                let intervals = parse_intervals(&args)?;
                if !intervals.is_empty() {
                    axes = axes.with_intervals(intervals);
                }
                let r = explorer.explore_goodput(&axes).map_err(|e| e.to_string())?;
                println!(
                    "goodput search: {} candidates | {} goodput evaluations",
                    r.candidates.len(),
                    r.evaluated
                );
                println!("telemetry: {}", r.telemetry.summary());
                if let Some(path) = args.get("telemetry") {
                    let js = serde_json::to_string_pretty(&r.telemetry)
                        .map_err(|e| format!("telemetry does not serialize: {e}"))?;
                    std::fs::write(path, js)
                        .map_err(|e| format!("cannot write telemetry to {path}: {e}"))?;
                    eprintln!("telemetry written to {path}");
                }
                let best = r.best();
                println!("goodput-best: {}", best.plan.summary());
                if let Some(i) = best.best_point {
                    let p = &best.points[i];
                    println!(
                        "best point:   interval {:.1} s -> {:.2}% goodput, {:.4} iter/s \
                         effective (MTBF {:.0} s)",
                        p.interval,
                        p.goodput_fraction * 100.0,
                        p.effective_throughput,
                        p.mtbf
                    );
                }
                println!("latency-best: {}", r.fault_free().plan.summary());
                if r.plan_flip() {
                    println!(
                        "plan flip: the goodput-optimal plan diverges from the \
                         latency-optimal one at this MTBF"
                    );
                } else {
                    println!("no plan flip: latency-optimal stays goodput-optimal at this MTBF");
                }
                return Ok(());
            }
            if let Some(spec) = parse_load_spec(&args)? {
                let mut axes = LoadAxes::new(spec, parse_rates(&args)?.unwrap_or_default());
                if let Some(slo) = parse_slo(&args)? {
                    axes = axes.with_slo_ttft_p99(slo);
                }
                let r = explorer.explore_load(&axes).map_err(|e| e.to_string())?;
                println!(
                    "load search: {} candidates | {} load simulations",
                    r.candidates.len(),
                    r.evaluated
                );
                let best = r.best();
                println!("best plan: {}", best.plan.summary());
                match best.best_point {
                    Some(i) => {
                        let p = &best.points[i];
                        println!(
                            "best point: {:.3} req/s -> {:.1} tokens/s, p99 TTFT {:.1} ms",
                            p.rate,
                            p.report.tokens_per_sec,
                            p.report.ttft.map_or(f64::NAN, |t| t.p99.as_ms())
                        );
                    }
                    None => {
                        println!(
                            "no rate meets the SLO; showing the lowest-tail-latency candidate"
                        );
                    }
                }
                println!("frontier:  rate req/s   tokens/s   p99 TTFT s");
                for (rate, tput, p99) in r.frontier() {
                    println!("           {rate:>10.3} {tput:>10.1} {p99:>12.3}");
                }
                return Ok(());
            }
            let r = explorer.explore().map_err(|e| e.to_string())?;
            println!("evaluated {} plans ({} OOM)", r.evaluated, r.oom);
            println!("telemetry: {}", r.telemetry.summary());
            if let Some(path) = args.get("telemetry") {
                let js = serde_json::to_string_pretty(&r.telemetry)
                    .map_err(|e| format!("telemetry does not serialize: {e}"))?;
                std::fs::write(path, js)
                    .map_err(|e| format!("cannot write telemetry to {path}: {e}"))?;
                eprintln!("telemetry written to {path}");
            }
            if let Some(path) = args.get("emit-trace") {
                emit_trace(&model, &system, &r.best_plan, &r.best_workload, path)?;
            }
            println!(
                "baseline:  {:.3} ms/iter",
                r.baseline.iteration_time.as_ms()
            );
            println!(
                "best:      {:.3} ms/iter ({:.2}x) with {}",
                r.best.iteration_time.as_ms(),
                r.speedup(),
                r.winning_strategies()
            );
            if let Some(report) = &r.verify {
                finish_verify(report)?;
            }
            Ok(())
        }
        "verify" => {
            let args = Args::parse(rest)?;
            let only = args.get("only");
            let mut failed = 0usize;
            let mut ran = 0usize;
            for sc in madmax_bench::verify_corpus() {
                if only.is_some_and(|pat| !sc.name.contains(pat)) {
                    continue;
                }
                ran += 1;
                let report = verify_scenario(&sc.model, &sc.system, &sc.plan, &sc.workload)?;
                let cp = report.critical_path.as_ref().map_or_else(
                    || "-".to_owned(),
                    |c| format!("{:.3} ms", c.lower_bound.as_ms()),
                );
                println!(
                    "{:<28} {:>2} errors {:>2} warnings  critical path {}",
                    sc.name,
                    report.error_count(),
                    report.warning_count(),
                    cp
                );
                for d in &report.diagnostics {
                    println!("    {d}");
                }
                if !report.is_clean() {
                    failed += 1;
                }
            }
            // The fault-injection corpus: materialized fault streams
            // through the fault-aware load simulator, checked by the
            // fault-ledger rules (plus the rest of the load rule set).
            for fs in madmax_bench::fault_corpus() {
                if only.is_some_and(|pat| !fs.name.contains(pat)) {
                    continue;
                }
                ran += 1;
                let scenario = Scenario::new(&fs.model, &fs.system)
                    .plan_ref(&fs.plan)
                    .workload_ref(&fs.workload);
                let costs = scenario.price_load(&fs.load).map_err(|e| e.to_string())?;
                let events =
                    materialize_faults(&fs.fault, fs.horizon_units).map_err(|e| e.to_string())?;
                let outcome = scenario
                    .serve_load_faulty(&fs.load, &costs, SimMode::Event, &events, &fs.retry, None)
                    .map_err(|e| e.to_string())?;
                let report = madmax_verify::verify_load(&outcome.trace);
                println!(
                    "{:<28} {:>2} errors {:>2} warnings  {} fault windows",
                    fs.name,
                    report.error_count(),
                    report.warning_count(),
                    outcome.trace.faults.len()
                );
                for d in &report.diagnostics {
                    println!("    {d}");
                }
                if !report.is_clean() {
                    failed += 1;
                }
            }
            // Closed-form goodput reports under the goodput-bound rule.
            for (name, mtbf) in [
                ("goodput/llama2@3600", 3600.0),
                ("goodput/llama2@600", 600.0),
            ] {
                if only.is_some_and(|pat| !name.contains(pat)) {
                    continue;
                }
                ran += 1;
                let model = ModelId::Llama2.build();
                let system = catalog::llama_llm_system();
                let plan = Plan::fsdp_baseline(&model);
                let outcome = Scenario::new(&model, &system)
                    .plan_ref(&plan)
                    .workload(Workload::pretrain())
                    .goodput(&FaultSpec::fatal(mtbf, 60.0, 7))
                    .map_err(|e| e.to_string())?;
                let report = madmax_verify::verify_goodput(&outcome.goodput);
                println!(
                    "{:<28} {:>2} errors {:>2} warnings  goodput {:.2}%",
                    name,
                    report.error_count(),
                    report.warning_count(),
                    outcome.goodput.goodput_fraction * 100.0
                );
                for d in &report.diagnostics {
                    println!("    {d}");
                }
                if !report.is_clean() {
                    failed += 1;
                }
            }
            if ran == 0 {
                return Err("no corpus scenario matches --only filter".to_owned());
            }
            if failed > 0 {
                return Err(format!("{failed} of {ran} scenarios failed verification"));
            }
            println!("all {ran} scenarios verified clean");
            Ok(())
        }
        "config" => {
            let args = Args::parse(rest)?;
            let model = lookup_model(&args)?;
            let system = args
                .get("system")
                .map(|_| lookup_system(&args))
                .transpose()?
                .unwrap_or_else(catalog::zionex_dlrm_system);
            let out = args.get("out").ok_or("missing --out <dir>")?;
            let plan = build_plan(&model, &args)?;
            let workload = parse_workload(&args)?;
            SimulationConfig {
                model,
                system,
                experiment: ExperimentSpec { workload, plan },
            }
            .write_split(out)
            .map_err(|e| e.to_string())?;
            println!("wrote model.json / system.json / experiment.json to {out}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
