//! Regenerates the paper's Table IV.
fn main() {
    madmax_bench::emit(
        "table4_hw_specs",
        &madmax_bench::experiments::tables::table4(),
    );
}
