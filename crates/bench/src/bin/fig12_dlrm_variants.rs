//! Regenerates the paper's Fig. 12.
fn main() {
    madmax_bench::emit(
        "fig12_dlrm_variants",
        &madmax_bench::experiments::strategy_figs::fig12(),
    );
}
