//! Regenerates the paper's Table III.
fn main() {
    madmax_bench::emit(
        "table3_systems",
        &madmax_bench::experiments::tables::table3(),
    );
}
