//! Regenerates the paper's Fig. 13.
fn main() {
    madmax_bench::emit(
        "fig13_variant_pareto",
        &madmax_bench::experiments::strategy_figs::fig13(),
    );
}
