//! Regenerates the paper's Fig. 20.
fn main() {
    madmax_bench::emit(
        "fig20_execution_breakdown",
        &madmax_bench::experiments::hardware_figs::fig20(),
    );
}
