//! Regenerates the paper's Fig. 9.
fn main() {
    madmax_bench::emit(
        "fig09_fsdp_prefetch",
        &madmax_bench::experiments::validation_figs::fig09(),
    );
}
