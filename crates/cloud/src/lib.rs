//! # madmax-cloud
//!
//! Public-cloud deployment studies (Insight 7, Figs. 1 and 16): a catalog
//! of GPU cloud instances, aggregate GPU-hour accounting normalized to A100
//! peak FLOPS, and the instance-count x instance-type x strategy sweep that
//! produces the resource/performance Pareto frontiers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};

use madmax_dse::{Explorer, ParetoPoint};
use madmax_engine::{EngineError, Scenario};
use madmax_hw::units::BytesPerSec;
use madmax_hw::{catalog, ClusterSpec, DeviceSpec, FabricKind};
use madmax_model::ModelArch;
use madmax_parallel::{Plan, Workload};

/// A rentable multi-GPU cloud instance type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudInstance {
    /// Instance name, e.g. `"p4d.24xlarge"`.
    pub name: String,
    /// Cloud provider label.
    pub provider: String,
    /// The accelerator installed.
    pub device: DeviceSpec,
    /// GPUs per instance.
    pub gpus: usize,
    /// Scale-out fabric.
    pub fabric: FabricKind,
}

impl CloudInstance {
    fn new(
        name: &str,
        provider: &str,
        mut device: DeviceSpec,
        gpus: usize,
        inter_gbps_per_instance: f64,
        fabric: FabricKind,
    ) -> Self {
        // Instance NICs are shared by all GPUs in the box.
        device.inter_node_bw = BytesPerSec::from_gbps(inter_gbps_per_instance / gpus as f64);
        Self {
            name: name.to_owned(),
            provider: provider.to_owned(),
            device,
            gpus,
            fabric,
        }
    }

    /// A cluster of `instances` boxes of this type.
    pub fn cluster(&self, instances: usize) -> ClusterSpec {
        ClusterSpec::new(
            format!("{} x{}", self.name, instances),
            self.device.clone(),
            self.gpus,
            instances,
            FabricKind::NvLink,
            self.fabric,
        )
    }
}

/// The instance catalog spanning three GPU generations (Fig. 16's legend).
/// Bandwidths follow the public instance specs; the paper notes per-GPU
/// inter-node bandwidth ranging from <1 to 25 GB/s across these types.
pub fn instance_catalog() -> Vec<CloudInstance> {
    vec![
        CloudInstance::new(
            "p3.16xlarge",
            "aws",
            catalog::v100(16.0),
            8,
            25.0,
            FabricKind::RoCE,
        ),
        CloudInstance::new(
            "p3dn.24xlarge",
            "aws",
            catalog::v100(32.0),
            8,
            100.0,
            FabricKind::RoCE,
        ),
        CloudInstance::new(
            "p4d.24xlarge",
            "aws",
            catalog::a100_40gb(),
            8,
            400.0,
            FabricKind::RoCE,
        ),
        CloudInstance::new(
            "p4de.24xlarge",
            "aws",
            catalog::a100_80gb(),
            8,
            400.0,
            FabricKind::RoCE,
        ),
        CloudInstance::new(
            "p5.48xlarge",
            "aws",
            catalog::h100(),
            8,
            3200.0,
            FabricKind::InfiniBand,
        ),
    ]
}

/// Ratio used to normalize GPU-hours across generations: the target
/// accelerator's peak FLOPS over the A100's (Section VI, Insight 7).
pub fn a100_normalization(device: &DeviceSpec) -> f64 {
    let a100 = catalog::a100_40gb();
    device.peak.fp16 / a100.peak.fp16
}

/// One evaluated cloud configuration ("per-1B-samples" metrics).
#[derive(Debug, Clone)]
pub struct CloudPoint {
    /// Instance type name.
    pub instance: String,
    /// Number of instances rented.
    pub instances: usize,
    /// Total GPUs.
    pub gpus: usize,
    /// Whether the mapping was strategy-optimized or default FSDP.
    pub optimized: bool,
    /// Elapsed hours to process one billion samples.
    pub elapsed_hours: f64,
    /// Aggregate GPU-hours normalized to A100 peak FLOPS.
    pub norm_gpu_hours: f64,
    /// Winning plan summary.
    pub plan: String,
}

/// Evaluates `model` training on `instances` boxes of `inst`, with either
/// the default FSDP mapping or a MAD-Max-optimized one.
///
/// # Errors
///
/// Returns [`EngineError`] when no feasible mapping exists on the
/// configuration (small-memory instances at low counts).
pub fn evaluate(
    model: &ModelArch,
    inst: &CloudInstance,
    instances: usize,
    optimized: bool,
) -> Result<CloudPoint, EngineError> {
    let cluster = inst.cluster(instances);
    let (report, plan) = if optimized {
        let r = Explorer::new(model, &cluster)
            .workload(Workload::pretrain())
            .explore()?;
        (r.best.clone(), r.best_plan.summary())
    } else {
        let plan = Plan::fsdp_baseline(model);
        (
            Scenario::new(model, &cluster).plan(plan.clone()).run()?,
            plan.summary(),
        )
    };
    let samples_per_sec = report.samples_per_sec();
    let elapsed_hours = 1e9 / samples_per_sec / 3600.0;
    let gpus = cluster.total_devices();
    let norm_gpu_hours = elapsed_hours * gpus as f64 * a100_normalization(&inst.device);
    Ok(CloudPoint {
        instance: inst.name.clone(),
        instances,
        gpus,
        optimized,
        elapsed_hours,
        norm_gpu_hours,
        plan,
    })
}

/// Sweeps the catalog over instance counts, producing the Fig. 16 scatter
/// (both default-FSDP and optimized mappings). Infeasible configurations
/// are skipped.
pub fn sweep(model: &ModelArch, instance_counts: &[usize]) -> Vec<CloudPoint> {
    let mut out = Vec::new();
    for inst in instance_catalog() {
        for &n in instance_counts {
            for optimized in [false, true] {
                if let Ok(p) = evaluate(model, &inst, n, optimized) {
                    out.push(p);
                }
            }
        }
    }
    out
}

/// Projects cloud points onto (normalized GPU-hours, 1/elapsed-time) and
/// extracts the Pareto frontier.
pub fn frontier(points: &[CloudPoint]) -> Vec<ParetoPoint<CloudPoint>> {
    let projected: Vec<ParetoPoint<CloudPoint>> = points
        .iter()
        .map(|p| ParetoPoint::new(p.norm_gpu_hours, 1.0 / p.elapsed_hours, p.clone()))
        .collect();
    madmax_dse::pareto_frontier(&projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_model::ModelId;

    #[test]
    fn catalog_spans_generations() {
        let cat = instance_catalog();
        assert!(cat.len() >= 5);
        assert!(cat.iter().any(|i| i.device.name.starts_with("V100")));
        assert!(cat.iter().any(|i| i.device.name.starts_with("A100")));
        assert!(cat.iter().any(|i| i.device.name.starts_with("H100")));
        // Per-GPU inter-node bandwidth spans <1 to 25 GB/s as the paper
        // notes.
        let bws: Vec<f64> = cat.iter().map(|i| i.device.inter_node_bw.as_gb()).collect();
        assert!(bws.iter().copied().fold(f64::INFINITY, f64::min) < 1.0);
        assert!(bws.iter().copied().fold(0.0, f64::max) >= 25.0);
    }

    #[test]
    fn normalization_is_relative_to_a100() {
        assert!((a100_normalization(&catalog::a100_40gb()) - 1.0).abs() < 1e-12);
        assert!(a100_normalization(&catalog::h100()) > 2.0);
        assert!(a100_normalization(&catalog::v100(16.0)) < 0.5);
    }

    #[test]
    fn p4d_evaluates_dlrm() {
        let model = ModelId::DlrmA.build();
        let inst = instance_catalog()
            .into_iter()
            .find(|i| i.name == "p4d.24xlarge")
            .unwrap();
        let p = evaluate(&model, &inst, 16, false).unwrap();
        assert_eq!(p.gpus, 128);
        assert!(
            p.elapsed_hours > 0.05 && p.elapsed_hours < 100.0,
            "{}",
            p.elapsed_hours
        );
        // p4d has 4x lower inter-node bandwidth than ZionEX: slower than
        // the production system.
        let zionex_sys = catalog::zionex_dlrm_system();
        let zionex = Scenario::new(&model, &zionex_sys).run().unwrap();
        let zionex_hours = 1e9 / zionex.samples_per_sec() / 3600.0;
        assert!(p.elapsed_hours > zionex_hours);
    }

    #[test]
    fn optimized_dominates_default_on_same_config() {
        let model = ModelId::DlrmA.build();
        let inst = instance_catalog()
            .into_iter()
            .find(|i| i.name == "p4de.24xlarge")
            .unwrap();
        let base = evaluate(&model, &inst, 16, false).unwrap();
        let opt = evaluate(&model, &inst, 16, true).unwrap();
        assert!(opt.elapsed_hours <= base.elapsed_hours);
    }

    #[test]
    fn small_memory_configs_are_infeasible() {
        // DLRM-A needs ~25 GB/GPU of embeddings alone: 16 V100-16GB boxes
        // (128 GPUs x 16 GB) cannot hold it.
        let model = ModelId::DlrmA.build();
        let inst = instance_catalog()
            .into_iter()
            .find(|i| i.name == "p3.16xlarge")
            .unwrap();
        assert!(evaluate(&model, &inst, 16, false).is_err());
    }

    #[test]
    fn frontier_prefers_optimized_points() {
        let model = ModelId::DlrmB.build();
        let points = sweep(&model, &[16, 32]);
        assert!(!points.is_empty());
        let front = frontier(&points);
        assert!(!front.is_empty());
        // Every frontier point must not be dominated by any input point.
        for f in &front {
            for p in &points {
                let candidate = ParetoPoint::new(p.norm_gpu_hours, 1.0 / p.elapsed_hours, ());
                assert!(
                    !(candidate.cost < f.cost && candidate.value > f.value),
                    "frontier point dominated"
                );
            }
        }
    }
}
