//! # madmax-fleet
//!
//! Fleet-wide training characterization substrate (Section III-B, Fig. 4).
//!
//! The paper characterizes Meta's production fleet over an extended period;
//! those traces are internal, so this crate *synthesizes* a fleet: a
//! weighted mix of recommendation- and language-model training jobs, each
//! simulated with the MAD-Max performance model, plus a calibrated
//! host-side overhead model for the two cycle categories the device
//! simulator cannot produce (exposed host-device memcpy and GPU idle from
//! data ingestion / kernel-launch gaps). See DESIGN.md section 3 for why
//! this substitution preserves the figure's derived quantities.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use madmax_core::IterationReport;
use madmax_engine::{EngineError, Scenario};
use madmax_hw::catalog;
use madmax_hw::units::Seconds;
use madmax_model::{LayerClass, ModelArch, ModelId};
use madmax_parallel::{CollectiveKind, HierStrategy, Plan, Strategy, Workload};

/// Which side of Fig. 4 a job aggregates into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadFamily {
    /// Recommendation-model training.
    Dlrm,
    /// Language-model training.
    Llm,
}

impl std::fmt::Display for WorkloadFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkloadFamily::Dlrm => "DLRM",
            WorkloadFamily::Llm => "LLM",
        })
    }
}

/// Host-side overhead fractions of iteration wall time, calibrated to the
/// fleet-level shares the paper reports (compute + exposed communication
/// remain >82% of cycles; the remainder splits between exposed memcpy and
/// idle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostOverhead {
    /// Host-device copies not hidden behind compute (input batches,
    /// checkpoint staging).
    pub exposed_memcpy_frac: f64,
    /// Idle from data ingestion stalls and kernel-launch overhead.
    pub idle_frac: f64,
}

impl HostOverhead {
    /// Calibrated defaults per family: recommendation pipelines move much
    /// larger input batches over PCIe.
    pub fn default_for(family: WorkloadFamily) -> Self {
        match family {
            WorkloadFamily::Dlrm => Self {
                exposed_memcpy_frac: 0.05,
                idle_frac: 0.10,
            },
            WorkloadFamily::Llm => Self {
                exposed_memcpy_frac: 0.02,
                idle_frac: 0.07,
            },
        }
    }
}

/// One training job in the synthetic fleet.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Display name.
    pub name: String,
    /// Workload family for aggregation.
    pub family: WorkloadFamily,
    /// The model being trained.
    pub model: ModelArch,
    /// Its system.
    pub system: madmax_hw::ClusterSpec,
    /// Its production mapping.
    pub plan: Plan,
    /// Share of fleet GPU-hours this job represents.
    pub weight: f64,
    /// Host overhead calibration.
    pub host: HostOverhead,
}

/// Builds a small LLaMA-style dense LLM used for the DDP-trained fleet
/// entries (models small enough to replicate, whose gradient AllReduce
/// dominates their communication mix — the reason fleet LLM communication
/// is AllReduce-heavy in Fig. 4c).
pub fn small_llm(name: &str, hidden: usize, layers: usize, nodes: usize) -> (ModelArch, Plan) {
    use madmax_model::layer::{
        FfnKind, LayerKind, SeqSource, TokenEmbeddingSpec, TransformerBlockSpec,
    };
    use madmax_model::{BatchUnit, LayerGroup};
    let model = ModelArch {
        name: name.to_owned(),
        groups: vec![
            LayerGroup::single(
                "word_embedding",
                LayerClass::Embedding,
                LayerKind::TokenEmbedding(TokenEmbeddingSpec {
                    vocab: 32_000,
                    dim: hidden,
                    dtype: madmax_hw::DType::Fp32,
                }),
            ),
            LayerGroup::repeated(
                "transformer_blocks",
                LayerClass::Transformer,
                LayerKind::TransformerBlock(TransformerBlockSpec {
                    hidden,
                    heads: hidden / 128,
                    kv_dim: hidden,
                    ffn_hidden: hidden * 11 / 4,
                    ffn: FfnKind::SwiGlu,
                    seq: SeqSource::ModelContext,
                }),
                layers,
            ),
        ],
        context_length: 2048,
        batch_unit: BatchUnit::Tokens,
        global_batch: nodes * 8 * 4, // 4 sequences per device
        compute_dtype: madmax_hw::DType::Bf16,
        param_dtype: madmax_hw::DType::Bf16,
    };
    // Replicating every dense parameter with plain DDP does not fit in
    // 80 GB for 7B+ models (gradients + Adam states alone are ~26 B/param);
    // the standard recipe shards within the node and replicates across
    // nodes. Both the TP partial sums and the DDP gradients are AllReduce.
    let plan = Plan::fsdp_baseline(&model)
        .with_strategy(LayerClass::Embedding, HierStrategy::flat(Strategy::Ddp))
        .with_strategy(
            LayerClass::Transformer,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
    (model, plan)
}

/// The default synthetic fleet: production DLRMs on ZionEX plus a mix of
/// large (FSDP) and small (DDP) LLM jobs, weighted by fleet GPU-hour share.
pub fn default_fleet() -> Vec<FleetJob> {
    let mut jobs = Vec::new();

    for (id, weight) in [
        (ModelId::DlrmA, 0.30),
        (ModelId::DlrmB, 0.15),
        (ModelId::DlrmATransformer, 0.10),
    ] {
        let model = id.build();
        let system = catalog::zionex_dlrm_system();
        // Production DLRM mapping: sharded embeddings, TP-within-node +
        // DDP-across-nodes dense layers (Fig. 11's optimum).
        let plan = Plan::fsdp_baseline(&model).with_strategy(
            LayerClass::Dense,
            HierStrategy::two_level(Strategy::Tp, Strategy::Ddp),
        );
        jobs.push(FleetJob {
            name: model.name.clone(),
            family: WorkloadFamily::Dlrm,
            model,
            system,
            plan,
            weight,
            host: HostOverhead::default_for(WorkloadFamily::Dlrm),
        });
    }

    // Large LLMs: FSDP pre-training on the 2048-GPU system.
    for (id, weight) in [(ModelId::Gpt3, 0.15), (ModelId::Llama, 0.10)] {
        let model = id.build();
        let system = catalog::llama_llm_system();
        let plan = Plan::fsdp_baseline(&model);
        jobs.push(FleetJob {
            name: model.name.clone(),
            family: WorkloadFamily::Llm,
            model,
            system,
            plan,
            weight,
            host: HostOverhead::default_for(WorkloadFamily::Llm),
        });
    }

    // Small LLMs: DDP pre-training jobs on a few nodes.
    for (name, hidden, layers, nodes, weight) in [
        ("LLM-7B (DDP)", 4096, 32, 4, 0.12),
        ("LLM-13B (DDP)", 5120, 40, 8, 0.08),
    ] {
        let (model, plan) = small_llm(name, hidden, layers, nodes);
        let system = catalog::llama_llm_system().with_num_nodes(nodes);
        jobs.push(FleetJob {
            name: name.to_owned(),
            family: WorkloadFamily::Llm,
            model,
            system,
            plan,
            weight,
            host: HostOverhead::default_for(WorkloadFamily::Llm),
        });
    }
    jobs
}

/// Fig. 4a cycle categories, as fractions summing to 1.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CycleShares {
    /// Device computation or memory lookups.
    pub compute: f64,
    /// Inter-device communication with no concurrent compute.
    pub exposed_comm: f64,
    /// Exposed host-device memcpy.
    pub exposed_memcpy: f64,
    /// GPU idle.
    pub idle: f64,
}

/// Per-family fleet aggregates (one Fig. 4 column group).
#[derive(Debug, Clone, Default)]
pub struct FamilyCharacterization {
    /// Fig. 4a: cycle shares.
    pub cycles: CycleShares,
    /// Fig. 4b: fraction of communication overlapped with compute.
    pub comm_overlapped: f64,
    /// Fig. 4c: share of communication time per collective.
    pub collective_mix: BTreeMap<CollectiveKind, f64>,
    /// Total weight aggregated.
    pub weight: f64,
}

/// The whole fleet characterization.
#[derive(Debug, Clone, Default)]
pub struct FleetCharacterization {
    /// Per-family aggregates.
    pub families: BTreeMap<WorkloadFamily, FamilyCharacterization>,
    /// Per-job reports for drill-down.
    pub jobs: Vec<(String, WorkloadFamily, IterationReport)>,
}

/// Simulates every job and aggregates the Fig. 4 quantities,
/// weight-averaging within each family.
///
/// # Errors
///
/// Propagates the first infeasible job mapping (none in the default fleet).
pub fn characterize(fleet: &[FleetJob]) -> Result<FleetCharacterization, EngineError> {
    let mut out = FleetCharacterization::default();
    for job in fleet {
        let report = Scenario::new(&job.model, &job.system)
            .plan(job.plan.clone())
            .workload(Workload::pretrain())
            .run()?;

        // Device-side wall time plus calibrated host overheads.
        let device_wall = report.iteration_time;
        let device_frac = 1.0 - job.host.exposed_memcpy_frac - job.host.idle_frac;
        let wall = device_wall / device_frac;
        let busy_compute = report.compute_time();
        let exposed = report.exposed_comm;
        // Idle inside the device schedule (dependency stalls) joins the
        // ingestion idle bucket.
        let sched_idle = (device_wall - busy_compute - exposed).max(Seconds::ZERO);

        let shares = CycleShares {
            compute: busy_compute / wall,
            exposed_comm: exposed / wall,
            exposed_memcpy: job.host.exposed_memcpy_frac,
            idle: job.host.idle_frac + sched_idle / wall,
        };

        let fam = out.families.entry(job.family).or_default();
        let w = job.weight;
        fam.cycles.compute += shares.compute * w;
        fam.cycles.exposed_comm += shares.exposed_comm * w;
        fam.cycles.exposed_memcpy += shares.exposed_memcpy * w;
        fam.cycles.idle += shares.idle * w;
        fam.comm_overlapped += report.overlap_fraction() * w;
        if !report.comm_time.is_zero() {
            for (k, t) in &report.comm_by_collective {
                *fam.collective_mix.entry(*k).or_insert(0.0) += (*t / report.comm_time) * w;
            }
        }
        fam.weight += w;
        out.jobs.push((job.name.clone(), job.family, report));
    }
    // Normalize by family weight.
    for fam in out.families.values_mut() {
        let w = fam.weight.max(f64::MIN_POSITIVE);
        fam.cycles.compute /= w;
        fam.cycles.exposed_comm /= w;
        fam.cycles.exposed_memcpy /= w;
        fam.cycles.idle /= w;
        fam.comm_overlapped /= w;
        for v in fam.collective_mix.values_mut() {
            *v /= w;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fleet_is_weighted_mix() {
        let fleet = default_fleet();
        assert!(fleet.len() >= 6);
        let total: f64 = fleet.iter().map(|j| j.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to 1, got {total}");
        assert!(fleet.iter().any(|j| j.family == WorkloadFamily::Dlrm));
        assert!(fleet.iter().any(|j| j.family == WorkloadFamily::Llm));
    }

    #[test]
    fn observation_3_compute_plus_exposed_comm_dominate() {
        // O3: compute + exposed communication make up >82% of cycles.
        let c = characterize(&default_fleet()).unwrap();
        for (fam, agg) in &c.families {
            let covered = agg.cycles.compute + agg.cycles.exposed_comm;
            assert!(covered > 0.7, "{fam}: compute+exposed = {covered:.2}");
            let total = covered + agg.cycles.exposed_memcpy + agg.cycles.idle;
            assert!(
                (total - 1.0).abs() < 0.05,
                "{fam}: shares sum to {total:.3}"
            );
        }
    }

    #[test]
    fn observation_4_overlap_and_collective_mix() {
        // O4: LLM communication overlaps more than DLRM communication, and
        // the collective mixes differ: DLRM is All2All-heavy, LLM leans on
        // AllReduce/AllGather-family ring collectives.
        let c = characterize(&default_fleet()).unwrap();
        let dlrm = &c.families[&WorkloadFamily::Dlrm];
        let llm = &c.families[&WorkloadFamily::Llm];
        assert!(
            llm.comm_overlapped > dlrm.comm_overlapped,
            "LLM {:.2} vs DLRM {:.2}",
            llm.comm_overlapped,
            dlrm.comm_overlapped
        );
        let a2a_dlrm = dlrm
            .collective_mix
            .get(&CollectiveKind::AllToAll)
            .copied()
            .unwrap_or(0.0);
        let a2a_llm = llm
            .collective_mix
            .get(&CollectiveKind::AllToAll)
            .copied()
            .unwrap_or(0.0);
        assert!(a2a_dlrm > 0.4, "DLRM A2A share {a2a_dlrm:.2}");
        assert!(a2a_dlrm > a2a_llm);
        let ring_llm = llm
            .collective_mix
            .get(&CollectiveKind::AllReduce)
            .copied()
            .unwrap_or(0.0)
            + llm
                .collective_mix
                .get(&CollectiveKind::AllGather)
                .copied()
                .unwrap_or(0.0)
            + llm
                .collective_mix
                .get(&CollectiveKind::ReduceScatter)
                .copied()
                .unwrap_or(0.0);
        assert!(ring_llm > 0.8, "LLM ring-collective share {ring_llm:.2}");
    }

    #[test]
    fn small_llm_jobs_fit_and_are_ddp() {
        let (model, plan) = small_llm("t", 4096, 32, 4);
        let sys = catalog::llama_llm_system().with_num_nodes(4);
        let r = Scenario::new(&model, &sys)
            .plan(plan.clone())
            .workload(Workload::pretrain())
            .run();
        assert!(r.is_ok(), "{:?}", r.err());
        let report = r.unwrap();
        // DDP gradients and TP partial sums are AllReduce: the dominant
        // collective for these jobs.
        let ar = report
            .comm_by_collective
            .get(&CollectiveKind::AllReduce)
            .copied()
            .unwrap_or(madmax_hw::units::Seconds::ZERO);
        assert!(
            ar / report.comm_time > 0.5,
            "AllReduce share {}",
            ar / report.comm_time
        );
    }
}
