//! The unified design-space explorer: one [`SearchSpace`] spanning the
//! per-layer-class strategy axes, the optional pipeline axes
//! `(stages, microbatches, schedule)`, and the optional serve axes
//! (decode batch), and one [`Explorer`] that evaluates every candidate
//! through `madmax_engine::Scenario` — in parallel on a scoped worker
//! pool — and returns a single [`SearchOutcome`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use madmax_core::IterationReport;
use madmax_engine::{EngineError, Scenario};
use madmax_hw::ClusterSpec;
use madmax_model::{LayerClass, ModelArch};
use madmax_parallel::{HierStrategy, PipelineConfig, PipelineSchedule, Plan, Workload};

/// Distinct layer classes present in a model, in first-appearance order.
pub(crate) fn classes_in(model: &ModelArch) -> Vec<LayerClass> {
    let mut v: Vec<LayerClass> = Vec::new();
    for g in &model.groups {
        if !v.contains(&g.class) {
            v.push(g.class);
        }
    }
    v
}

/// Enumerates every per-class strategy assignment: the cartesian product of
/// `HierStrategy::enumerate_for` over `classes` (all classes in the model
/// when `None`), applied on top of `base`. This is the strategy axis of
/// the unified [`SearchSpace`].
pub(crate) fn strategy_combos(
    model: &ModelArch,
    classes: Option<&[LayerClass]>,
    base: &Plan,
) -> Vec<Plan> {
    let classes: Vec<LayerClass> = match classes {
        Some(c) => c.to_vec(),
        None => classes_in(model),
    };
    let per_class: Vec<Vec<HierStrategy>> = classes
        .iter()
        .map(|&c| HierStrategy::enumerate_for(c))
        .collect();
    let total: usize = per_class.iter().map(Vec::len).product();
    let mut plans = Vec::with_capacity(total);
    for mut idx in 0..total {
        let mut plan = base.clone();
        for (ci, choices) in per_class.iter().enumerate() {
            let choice = choices[idx % choices.len()];
            idx /= choices.len();
            plan = plan.with_strategy(classes[ci], choice);
        }
        plans.push(plan);
    }
    plans
}

/// The pipeline dimensions of a [`SearchSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineAxes {
    /// Pipeline depths to try (`1` = no pipelining; always worth including
    /// so the flat baseline is part of the same sweep).
    pub stages: Vec<usize>,
    /// Microbatch counts to try for pipelined configurations.
    pub microbatches: Vec<usize>,
    /// Schedules to try for pipelined configurations.
    pub schedules: Vec<PipelineSchedule>,
}

impl PipelineAxes {
    /// Axes fitted to `cluster`: power-of-two depths the device hierarchy
    /// can actually be split into (exactly the depths
    /// `madmax_pipeline`'s `stage_cluster` accepts), a standard microbatch
    /// ladder, and both schedules.
    pub fn default_for(cluster: &ClusterSpec) -> Self {
        let stages = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&p| p == 1 || madmax_pipeline::cost::stage_cluster(cluster, p).is_ok())
            .collect();
        Self {
            stages,
            microbatches: vec![4, 8, 16, 32],
            schedules: vec![PipelineSchedule::GPipe, PipelineSchedule::OneFOneB],
        }
    }
}

/// The serve dimensions of a [`SearchSpace`]: workload-side axes swept
/// jointly with the plan axes. Only meaningful when the explorer's
/// workload is [`Workload::Serve`]; each decode batch yields one workload
/// variant, and candidates are then compared by output tokens per second
/// (iteration times at different batch sizes are not comparable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeAxes {
    /// Decode (serving) batch sizes to try.
    pub decode_batch: Vec<usize>,
}

impl ServeAxes {
    /// A standard serving-batch ladder.
    pub fn batches(decode_batch: impl IntoIterator<Item = usize>) -> Self {
        Self {
            decode_batch: decode_batch.into_iter().collect(),
        }
    }
}

/// The unified design space: strategy axes x optional pipeline axes x
/// optional serve axes.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    /// Search per-layer-class hierarchical strategies (otherwise the FSDP
    /// baseline assignments are kept).
    pub search_strategies: bool,
    /// Restrict the strategy search to these classes (others keep the
    /// baseline assignment). `None` searches every class in the model.
    pub classes: Option<Vec<LayerClass>>,
    /// Pipeline dimensions to sweep jointly; `None` keeps every candidate
    /// flat.
    pub pipeline: Option<PipelineAxes>,
    /// Serve dimensions to sweep jointly (decode batch); `None` keeps the
    /// workload as configured.
    pub serve: Option<ServeAxes>,
    /// Explore mappings beyond current memory capacities (the orange bars
    /// of Fig. 10).
    pub ignore_memory_limits: bool,
}

impl SearchSpace {
    /// The strategy-only space of the paper's Fig. 10/18 joint search:
    /// every per-class assignment, no pipeline axes.
    pub fn strategies() -> Self {
        Self {
            search_strategies: true,
            ..Self::default()
        }
    }

    /// A pipeline space fitted to `cluster` (depths it can split into,
    /// both schedules), with the per-class strategies held at the
    /// baseline.
    pub fn pipeline_for(cluster: &ClusterSpec) -> Self {
        Self {
            pipeline: Some(PipelineAxes::default_for(cluster)),
            ..Self::default()
        }
    }

    /// Restricts the strategy search to `classes` (enables the strategy
    /// axes).
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<LayerClass>) -> Self {
        self.search_strategies = true;
        self.classes = Some(classes);
        self
    }

    /// Attaches pipeline axes to the space.
    #[must_use]
    pub fn with_pipeline(mut self, axes: PipelineAxes) -> Self {
        self.pipeline = Some(axes);
        self
    }

    /// Attaches serve axes to the space.
    #[must_use]
    pub fn with_serve(mut self, axes: ServeAxes) -> Self {
        self.serve = Some(axes);
        self
    }

    /// Lifts the memory-capacity constraint.
    #[must_use]
    pub fn unconstrained(mut self) -> Self {
        self.ignore_memory_limits = true;
        self
    }

    /// Enables (or disables) the per-class strategy axes.
    #[must_use]
    pub fn with_strategies(mut self, on: bool) -> Self {
        self.search_strategies = on;
        self
    }
}

/// Result of one [`Explorer::explore`] run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The throughput-optimal plan found (pipeline config included when
    /// the space has pipeline axes).
    pub best_plan: Plan,
    /// The workload the best plan ran (differs from the explorer's
    /// workload only when serve axes varied it).
    pub best_workload: Workload,
    /// Its simulation report.
    pub best: IterationReport,
    /// The flat FSDP-baseline report for the same workload (the first
    /// serve-axis variant when serve axes are present).
    pub baseline: IterationReport,
    /// Candidate (plan, workload) combinations accounted for (simulated,
    /// OOM, unmappable, or invalid — nothing is silently dropped).
    pub evaluated: usize,
    /// Candidates rejected for memory infeasibility.
    pub oom: usize,
    /// Candidates rejected as unmappable pipelines (too few layers,
    /// indivisible device counts, ...).
    pub unmappable: usize,
    /// Candidates rejected for any other plan error (e.g. a strategy
    /// invalid for a layer class).
    pub invalid: usize,
}

impl SearchOutcome {
    /// Throughput improvement of the best plan over the FSDP baseline.
    /// For serve searches this compares output tokens/sec (batch sizes
    /// may differ); otherwise it is the iteration-time ratio.
    pub fn speedup(&self) -> f64 {
        match (
            self.best.serve_tokens_per_sec(),
            self.baseline.serve_tokens_per_sec(),
        ) {
            (Some(b), Some(base)) if base > 0.0 => b / base,
            _ => self.best.speedup_over(&self.baseline),
        }
    }

    /// Paper-style summary of the winning per-class strategies.
    pub fn winning_strategies(&self) -> String {
        self.best_plan.summary()
    }

    /// Whether a pipelined plan (rather than a flat mapping) won.
    pub fn pipeline_won(&self) -> bool {
        self.best_plan.pipeline_stages() > 1
    }
}

/// The unified, parallel design-space explorer.
///
/// # Examples
///
/// ```
/// use madmax_dse::{Explorer, SearchSpace};
/// use madmax_hw::catalog;
/// use madmax_model::ModelId;
/// use madmax_parallel::Workload;
///
/// let model = ModelId::DlrmA.build();
/// let system = catalog::zionex_dlrm_system();
/// let outcome = Explorer::new(&model, &system)
///     .workload(Workload::pretrain())
///     .space(SearchSpace::strategies())
///     .explore()
///     .unwrap();
/// assert!(outcome.speedup() >= 1.0);
/// ```
#[derive(Debug)]
pub struct Explorer<'a> {
    model: &'a ModelArch,
    system: &'a ClusterSpec,
    workload: Workload,
    space: SearchSpace,
    threads: Option<NonZeroUsize>,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer over the strategy-only space for the
    /// pre-training workload, evaluating candidates on all available
    /// cores.
    pub fn new(model: &'a ModelArch, system: &'a ClusterSpec) -> Self {
        Self {
            model,
            system,
            workload: Workload::pretrain(),
            space: SearchSpace::strategies(),
            threads: None,
        }
    }

    /// Sets the workload (default: [`Workload::pretrain`]).
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the design space (default: [`SearchSpace::strategies`]).
    #[must_use]
    pub fn space(mut self, space: SearchSpace) -> Self {
        self.space = space;
        self
    }

    /// Caps the worker pool at `n` threads (`1` forces a sequential run;
    /// `0` is treated as `1`). The default is
    /// [`std::thread::available_parallelism`]. Results are deterministic
    /// regardless of the thread count: candidates are reduced in
    /// enumeration order after evaluation.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"));
        self
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let hw = self
            .threads
            .or_else(|| std::thread::available_parallelism().ok())
            .map_or(1, NonZeroUsize::get);
        hw.min(jobs).max(1)
    }

    /// The baseline plan every candidate is measured against.
    fn base_plan(&self) -> Plan {
        let mut plan = Plan::fsdp_baseline(self.model);
        plan.options.ignore_memory_limits = self.space.ignore_memory_limits;
        plan
    }

    /// The workload variants the serve axes induce (the configured
    /// workload alone when no axis applies).
    fn workload_variants(&self) -> Vec<Workload> {
        match (&self.space.serve, self.workload.serve_config()) {
            (Some(axes), Some(cfg)) if !axes.decode_batch.is_empty() => axes
                .decode_batch
                .iter()
                .map(|&b| Workload::serve(cfg.with_decode_batch(b)))
                .collect(),
            _ => vec![self.workload.clone()],
        }
    }

    /// Enumerates every candidate plan of the space: the cartesian product
    /// of the per-class strategy assignments and the pipeline axes.
    pub fn candidates(&self) -> Vec<Plan> {
        let base = self.base_plan();
        let strategy_plans = if self.space.search_strategies {
            strategy_combos(self.model, self.space.classes.as_deref(), &base)
        } else {
            vec![base.clone()]
        };
        let Some(axes) = &self.space.pipeline else {
            return strategy_plans;
        };
        let mut candidates = Vec::new();
        for strat_plan in &strategy_plans {
            for &p in &axes.stages {
                if p <= 1 {
                    candidates.push(strat_plan.clone());
                    continue;
                }
                for &m in &axes.microbatches {
                    for &sched in &axes.schedules {
                        candidates.push(strat_plan.clone().with_pipeline(PipelineConfig {
                            stages: p,
                            microbatches: m,
                            schedule: sched,
                        }));
                    }
                }
            }
        }
        candidates
    }

    /// Evaluates an explicit list of plans through the engine against
    /// this explorer's workload, preserving order. See
    /// [`Explorer::evaluate_with`].
    pub fn evaluate(&self, plans: &[Plan]) -> Vec<Result<IterationReport, EngineError>> {
        self.evaluate_with(&self.workload, plans)
    }

    /// Evaluates an explicit list of plans against one workload, in
    /// order. Plans are distributed over the worker pool; the result at
    /// index `i` is always plan `i`'s, so the output is deterministic
    /// regardless of the thread count.
    ///
    /// This is the search hot path: when every plan shares one set of
    /// options (always true for [`Explorer::candidates`]), one
    /// [`madmax_engine::CostTable`] is priced up front and shared
    /// read-only across the workers, and each worker recycles one
    /// [`madmax_engine::EngineScratch`] (trace arena, schedule, stream
    /// table) across the candidates it evaluates — so per-candidate work
    /// is assembly and simulation, not pricing and allocation.
    pub fn evaluate_with(
        &self,
        workload: &Workload,
        plans: &[Plan],
    ) -> Vec<Result<IterationReport, EngineError>> {
        let workers = self.worker_count(plans.len());
        let scenario = Scenario::new(self.model, self.system).workload_ref(workload);
        // Mixed-option plan lists (e.g. ablating prefetch on/off) cannot
        // share a pricing context; they fall back to per-plan pricing.
        let uniform_options = plans.windows(2).all(|w| w[0].options == w[1].options);
        let table = uniform_options.then(|| scenario.price_plans(plans));
        let has_pipelined = plans
            .iter()
            .any(|p| p.pipeline.is_some_and(|c| c.is_pipelined()));
        let pipeline_table =
            (uniform_options && has_pipelined).then(|| scenario.price_pipeline_plans(plans));
        let run = |plan: &Plan, scratch: &mut madmax_engine::EngineScratch| {
            let mut s = Scenario::new(self.model, self.system)
                .plan_ref(plan)
                .workload_ref(workload);
            if let Some(t) = &table {
                s = s.costs(t);
            }
            if let Some(t) = &pipeline_table {
                s = s.pipeline_costs(t);
            }
            s.run_in(scratch)
        };
        if workers <= 1 {
            let mut scratch = madmax_engine::EngineScratch::new();
            return plans.iter().map(|p| run(p, &mut scratch)).collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let run = &run;
                s.spawn(move || {
                    let mut scratch = madmax_engine::EngineScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= plans.len() {
                            break;
                        }
                        if tx.send((i, run(&plans[i], &mut scratch))).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<Result<IterationReport, EngineError>>> =
            (0..plans.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every plan index was evaluated"))
            .collect()
    }

    /// Exhaustively explores the space for the throughput-optimal
    /// (plan, workload-variant) combination.
    ///
    /// Without serve axes, candidates are ranked by iteration time (one
    /// fixed workload). With serve axes, the decode batch varies across
    /// candidates, so ranking uses output tokens per second.
    ///
    /// The baseline itself is always part of the outcome, so a feasible
    /// baseline guarantees a result and `speedup() >= 1`.
    ///
    /// # Errors
    ///
    /// Returns the baseline's error if even the flat FSDP baseline is
    /// infeasible.
    ///
    /// # Panics
    ///
    /// Panics when the space carries [`ServeAxes`] but the workload is
    /// not [`Workload::Serve`] — the axis would otherwise be silently
    /// ignored.
    pub fn explore(&self) -> Result<SearchOutcome, EngineError> {
        assert!(
            self.space.serve.is_none() || self.workload.serve_config().is_some(),
            "SearchSpace has serve axes but the explorer's workload is `{}`; \
             set Explorer::workload(Workload::serve(..))",
            self.workload
        );
        let base_plan = self.base_plan();
        let variants = self.workload_variants();
        let base_workload = variants[0].clone();
        let baseline = Scenario::new(self.model, self.system)
            .plan_ref(&base_plan)
            .workload_ref(&base_workload)
            .run()?;
        let serve_ranked = variants.len() > 1
            || (self.space.serve.is_some() && self.workload.serve_config().is_some());
        let score = |r: &IterationReport| -> f64 {
            r.serve_tokens_per_sec()
                .unwrap_or_else(|| r.samples_per_sec())
        };

        let mut best_plan = base_plan.clone();
        let mut best_workload = base_workload.clone();
        let mut best = baseline.clone();
        let mut evaluated = 0usize;
        let (mut oom, mut unmappable, mut invalid) = (0usize, 0usize, 0usize);
        for workload in &variants {
            let candidates = self.candidates();
            evaluated += candidates.len();
            // The baseline combo re-appears among the candidates; reuse
            // its report instead of simulating it again. Candidates
            // inherit the baseline's options, so comparing assignments
            // and pipeline suffices.
            let to_run: Vec<Plan> = if *workload == base_workload {
                candidates
                    .into_iter()
                    .filter(|p| {
                        p.assignments != base_plan.assignments || p.pipeline != base_plan.pipeline
                    })
                    .collect()
            } else {
                candidates
            };
            let results = self.evaluate_with(workload, &to_run);
            for (plan, result) in to_run.into_iter().zip(results) {
                match result {
                    Ok(r) => {
                        let better = if serve_ranked {
                            score(&r) > score(&best)
                        } else {
                            r.iteration_time < best.iteration_time
                        };
                        if better {
                            best = r;
                            best_plan = plan;
                            best_workload = workload.clone();
                        }
                    }
                    Err(e) if e.is_oom() => oom += 1,
                    Err(e) if e.is_unmappable_pipeline() => unmappable += 1,
                    Err(_) => invalid += 1,
                }
            }
        }

        Ok(SearchOutcome {
            best_plan,
            best_workload,
            best,
            baseline,
            evaluated,
            oom,
            unmappable,
            invalid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madmax_hw::{catalog, DeviceScaling};
    use madmax_model::ModelId;
    use madmax_parallel::ServeConfig;

    #[test]
    fn strategy_space_beats_baseline_for_dlrm() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = Explorer::new(&model, &sys).explore().unwrap();
        assert!(r.speedup() >= 1.0);
        assert!(r.speedup() < 4.0, "speedup {:.2} suspicious", r.speedup());
        assert!(r.evaluated > 100);
        assert!(r.oom > 0, "some DLRM mappings must be infeasible");
        assert_eq!(r.unmappable, 0, "no pipeline axes in this space");
        assert_eq!(r.best_workload, Workload::pretrain());
    }

    #[test]
    fn unconstrained_space_at_least_matches_constrained() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let constrained = Explorer::new(&model, &sys).explore().unwrap();
        let unconstrained = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().unconstrained())
            .explore()
            .unwrap();
        assert!(unconstrained.best.iteration_time <= constrained.best.iteration_time);
        assert_eq!(unconstrained.oom, 0);
    }

    #[test]
    fn restricted_space_touches_only_listed_classes() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let r = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().with_classes(vec![LayerClass::Dense]))
            .explore()
            .unwrap();
        assert_eq!(
            r.best_plan.strategy_for(LayerClass::Embedding),
            Plan::fsdp_baseline(&model).strategy_for(LayerClass::Embedding)
        );
        assert_eq!(r.evaluated, 12);
    }

    #[test]
    fn joint_pipeline_space_wins_on_constrained_network() {
        let model = ModelId::Gpt3.build();
        let sys = catalog::llama_llm_system().scaled(&DeviceScaling::inter_bw_only(1.0 / 8.0));
        let mut space = SearchSpace::pipeline_for(&sys);
        space.pipeline.as_mut().unwrap().microbatches = vec![16, 32];
        let r = Explorer::new(&model, &sys).space(space).explore().unwrap();
        assert!(r.pipeline_won(), "winner: {}", r.best_plan.summary());
        assert!(
            r.speedup() > 1.05,
            "pipeline should beat the pp=1 baseline, got {:.3}x",
            r.speedup()
        );
        assert!(r.evaluated > 8);
    }

    #[test]
    fn every_candidate_is_tallied() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let space = SearchSpace::strategies()
            .with_classes(vec![LayerClass::Transformer])
            .with_pipeline(PipelineAxes {
                stages: vec![1, 8],
                microbatches: vec![16],
                schedules: vec![PipelineSchedule::GPipe],
            });
        let r = Explorer::new(&model, &sys).space(space).explore().unwrap();
        // 12 transformer strategies x (pp=1 + pp=8x16xGPipe) = 24
        // candidates, each accounted for.
        assert_eq!(r.evaluated, 24);
        assert!(r.oom > 0, "replication-heavy combos must OOM: {r:?}");
        assert!(r.best.iteration_time <= r.baseline.iteration_time);
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let sequential = Explorer::new(&model, &sys).threads(1).explore().unwrap();
        let parallel = Explorer::new(&model, &sys).threads(8).explore().unwrap();
        assert_eq!(sequential.best_plan, parallel.best_plan);
        assert_eq!(sequential.best, parallel.best);
        assert_eq!(sequential.evaluated, parallel.evaluated);
        assert_eq!(sequential.oom, parallel.oom);
        assert_eq!(sequential.invalid, parallel.invalid);
    }

    #[test]
    fn evaluate_preserves_plan_order() {
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let explorer = Explorer::new(&model, &sys).threads(4);
        let plans = explorer.candidates();
        let par = explorer.evaluate(&plans);
        let seq: Vec<_> = plans
            .iter()
            .map(|p| {
                Scenario::new(&model, &sys)
                    .plan(p.clone())
                    .workload(Workload::pretrain())
                    .run()
            })
            .collect();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.is_ok(), b.is_ok());
            if let (Ok(a), Ok(b)) = (a, b) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "serve axes")]
    fn serve_axes_without_a_serve_workload_are_rejected() {
        // A forgotten `.workload(Workload::serve(..))` must not silently
        // drop the requested decode-batch axis.
        let model = ModelId::DlrmA.build();
        let sys = catalog::zionex_dlrm_system();
        let _ = Explorer::new(&model, &sys)
            .space(SearchSpace::strategies().with_serve(ServeAxes::batches([256, 512])))
            .explore();
    }

    #[test]
    fn serve_axes_sweep_the_decode_batch() {
        let model = ModelId::Llama2.build();
        let sys = catalog::llama_llm_system();
        let workload = Workload::serve(ServeConfig::new(512, 16));
        let space = SearchSpace::default()
            .with_serve(ServeAxes::batches([256, 512, 1024]))
            .with_pipeline(PipelineAxes {
                stages: vec![1, 8],
                microbatches: vec![8],
                schedules: vec![PipelineSchedule::GPipe],
            });
        let r = Explorer::new(&model, &sys)
            .workload(workload)
            .space(space)
            .explore()
            .unwrap();
        // (pp=1 + pp=8) x 3 batches = 6 candidates.
        assert_eq!(r.evaluated, 6);
        let cfg = r.best_workload.serve_config().unwrap();
        assert!([256, 512, 1024].contains(&cfg.decode_batch.unwrap()));
        assert!(r.best.serve_tokens_per_sec().unwrap() > 0.0);
        // The winner maximizes output tokens/sec across every variant.
        for &b in &[256usize, 512, 1024] {
            let variant = Workload::serve(ServeConfig::new(512, 16).with_decode_batch(b));
            for plan in Explorer::new(&model, &sys)
                .workload(variant.clone())
                .space(SearchSpace::default().with_pipeline(PipelineAxes {
                    stages: vec![1, 8],
                    microbatches: vec![8],
                    schedules: vec![PipelineSchedule::GPipe],
                }))
                .candidates()
            {
                if let Ok(rep) = Scenario::new(&model, &sys)
                    .plan(plan)
                    .workload(variant.clone())
                    .run()
                {
                    assert!(
                        rep.serve_tokens_per_sec().unwrap()
                            <= r.best.serve_tokens_per_sec().unwrap() + 1e-9
                    );
                }
            }
        }
    }
}
